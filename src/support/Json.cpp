#include "support/Json.h"

#include "support/StringUtils.h"

#include <cctype>
#include <charconv>
#include <cmath>

namespace mha::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
    case '"':
      out += "\\\"";
      break;
    case '\\':
      out += "\\\\";
      break;
    case '\b':
      out += "\\b";
      break;
    case '\f':
      out += "\\f";
      break;
    case '\n':
      out += "\\n";
      break;
    case '\r':
      out += "\\r";
      break;
    case '\t':
      out += "\\t";
      break;
    default:
      if (c < 0x20)
        out += strfmt("\\u%04x", c);
      else
        out += ch;
    }
  }
  return out;
}

std::string number(double value, int precision) {
  if (!std::isfinite(value))
    value = 0;
  std::string out = strfmt("%.*f", precision, value);
  // %f uses LC_NUMERIC's decimal separator; JSON requires '.'.
  for (char &c : out)
    if (c == ',')
      c = '.';
  return out;
}

std::string shortestDouble(double value) {
  if (std::isnan(value))
    return "nan";
  if (std::isinf(value))
    return value < 0 ? "-inf" : "inf";
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec; // 64 bytes always suffice for the shortest double form
  std::string out(buf, ptr);
  // to_chars emits "3" / "1e+20" for integral values; IR lexers key the
  // int/float distinction off the token shape, so force a mantissa dot
  // when neither '.' nor an exponent is present.
  if (out.find('.') == std::string::npos &&
      out.find('e') == std::string::npos &&
      out.find('E') == std::string::npos)
    out += ".0";
  return out;
}

namespace {

/// Minimal recursive-descent checker. Only answers "is this well-formed?"
/// — it builds no values, so it stays a few dozen lines and is safe to run
/// on every trace the tools write.
class Validator {
public:
  explicit Validator(std::string_view text) : text_(text) {}

  bool run(std::string *error) {
    skipWs();
    bool ok = value(0);
    if (ok) {
      skipWs();
      if (pos_ != text_.size())
        ok = fail("trailing characters after value");
    }
    if (!ok && error)
      *error = strfmt("%s at offset %zu", message_.c_str(), errorPos_);
    return ok;
  }

private:
  bool fail(const char *what) {
    if (message_.empty()) {
      message_ = what;
      errorPos_ = pos_;
    }
    return false;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skipWs() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++pos_;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool value(int depth) {
    if (depth > 128)
      return fail("nesting too deep");
    if (eof())
      return fail("unexpected end of input");
    switch (peek()) {
    case '{':
      return object(depth);
    case '[':
      return array(depth);
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return numberToken();
    }
  }

  bool object(int depth) {
    ++pos_; // '{'
    skipWs();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      if (eof() || peek() != '"')
        return fail("expected object key");
      if (!string())
        return false;
      skipWs();
      if (eof() || peek() != ':')
        return fail("expected ':' after object key");
      ++pos_;
      skipWs();
      if (!value(depth + 1))
        return false;
      skipWs();
      if (eof())
        return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool array(int depth) {
    ++pos_; // '['
    skipWs();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      if (!value(depth + 1))
        return false;
      skipWs();
      if (eof())
        return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool string() {
    ++pos_; // opening quote
    while (!eof()) {
      unsigned char c = static_cast<unsigned char>(peek());
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20)
        return fail("unescaped control character in string");
      if (c == '\\') {
        ++pos_;
        if (eof())
          return fail("unterminated escape");
        char esc = peek();
        if (esc == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i, ++pos_)
            if (eof() || !std::isxdigit(static_cast<unsigned char>(peek())))
              return fail("invalid \\u escape");
          continue;
        }
        if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
            esc != 'f' && esc != 'n' && esc != 'r' && esc != 't')
          return fail("invalid escape character");
        ++pos_;
        continue;
      }
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool numberToken() {
    size_t start = pos_;
    if (!eof() && peek() == '-')
      ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      return fail("invalid number");
    if (peek() == '0')
      ++pos_;
    else
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("digit required after decimal point");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-'))
        ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("digit required in exponent");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    return pos_ > start;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string message_;
  size_t errorPos_ = 0;
};

/// Recursive-descent DOM parser. Structurally mirrors the Validator but
/// builds Values; kept separate so the validator stays allocation-free on
/// the trace-writing hot path.
class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run(std::string *error) {
    skipWs();
    std::optional<Value> result = value(0);
    if (result) {
      skipWs();
      if (pos_ != text_.size()) {
        fail("trailing characters after value");
        result.reset();
      }
    }
    if (!result && error)
      *error = strfmt("%s at offset %zu", message_.c_str(), errorPos_);
    return result;
  }

private:
  std::nullopt_t fail(const char *what) {
    if (message_.empty()) {
      message_ = what;
      errorPos_ = pos_;
    }
    return std::nullopt;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skipWs() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++pos_;
  }

  std::optional<Value> literal(std::string_view word, Value result) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("invalid literal");
    pos_ += word.size();
    return result;
  }

  std::optional<Value> value(int depth) {
    if (depth > 128)
      return fail("nesting too deep");
    if (eof())
      return fail("unexpected end of input");
    switch (peek()) {
    case '{':
      return object(depth);
    case '[':
      return array(depth);
    case '"':
      return string();
    case 't':
      return literal("true", Value::makeBool(true));
    case 'f':
      return literal("false", Value::makeBool(false));
    case 'n':
      return literal("null", Value::makeNull());
    default:
      return numberToken();
    }
  }

  std::optional<Value> object(int depth) {
    ++pos_; // '{'
    std::vector<std::pair<std::string, Value>> members;
    skipWs();
    if (!eof() && peek() == '}') {
      ++pos_;
      return Value::makeObject(std::move(members));
    }
    while (true) {
      skipWs();
      if (eof() || peek() != '"')
        return fail("expected object key");
      std::optional<Value> key = string();
      if (!key)
        return std::nullopt;
      skipWs();
      if (eof() || peek() != ':')
        return fail("expected ':' after object key");
      ++pos_;
      skipWs();
      std::optional<Value> member = value(depth + 1);
      if (!member)
        return std::nullopt;
      members.emplace_back(key->asString(), std::move(*member));
      skipWs();
      if (eof())
        return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return Value::makeObject(std::move(members));
      }
      return fail("expected ',' or '}' in object");
    }
  }

  std::optional<Value> array(int depth) {
    ++pos_; // '['
    std::vector<Value> elements;
    skipWs();
    if (!eof() && peek() == ']') {
      ++pos_;
      return Value::makeArray(std::move(elements));
    }
    while (true) {
      skipWs();
      std::optional<Value> element = value(depth + 1);
      if (!element)
        return std::nullopt;
      elements.push_back(std::move(*element));
      skipWs();
      if (eof())
        return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return Value::makeArray(std::move(elements));
      }
      return fail("expected ',' or ']' in array");
    }
  }

  void appendUtf8(std::string &out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xc0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      out += static_cast<char>(0xe0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    }
  }

  std::optional<Value> string() {
    ++pos_; // opening quote
    std::string out;
    while (!eof()) {
      unsigned char c = static_cast<unsigned char>(peek());
      if (c == '"') {
        ++pos_;
        return Value::makeString(std::move(out));
      }
      if (c < 0x20)
        return fail("unescaped control character in string");
      if (c == '\\') {
        ++pos_;
        if (eof())
          return fail("unterminated escape");
        char esc = peek();
        ++pos_;
        switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i, ++pos_) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(peek())))
              return fail("invalid \\u escape");
            char h = peek();
            code = code * 16 +
                   (h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
          }
          appendUtf8(out, code);
          break;
        }
        default:
          --pos_;
          return fail("invalid escape character");
        }
        continue;
      }
      out += static_cast<char>(c);
      ++pos_;
    }
    return fail("unterminated string");
  }

  std::optional<Value> numberToken() {
    size_t start = pos_;
    // Scan loosely, then reuse the validator for the exact grammar.
    if (!eof() && peek() == '-')
      ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      return fail("invalid number");
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                      peek() == '.' || peek() == 'e' || peek() == 'E' ||
                      peek() == '+' || peek() == '-'))
      ++pos_;
    std::string token(text_.substr(start, pos_ - start));
    std::string tokenError;
    if (!validate(token, &tokenError)) {
      pos_ = start;
      return fail("invalid number");
    }
    // from_chars, unlike strtod, ignores LC_NUMERIC.
    double parsed = 0;
    auto [ptr, ec] = std::from_chars(token.data(),
                                     token.data() + token.size(), parsed);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      pos_ = start;
      return fail("invalid number");
    }
    return Value::makeNumber(parsed);
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string message_;
  size_t errorPos_ = 0;
};

} // namespace

const Value *Value::get(std::string_view key) const {
  if (!isObject())
    return nullptr;
  for (const auto &[name, value] : members_)
    if (name == key)
      return &value;
  return nullptr;
}

Value Value::makeBool(bool b) {
  Value v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

Value Value::makeNumber(double n) {
  Value v;
  v.kind_ = Kind::Number;
  v.number_ = n;
  return v;
}

Value Value::makeString(std::string s) {
  Value v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}

Value Value::makeArray(std::vector<Value> elements) {
  Value v;
  v.kind_ = Kind::Array;
  v.elements_ = std::move(elements);
  return v;
}

Value Value::makeObject(std::vector<std::pair<std::string, Value>> members) {
  Value v;
  v.kind_ = Kind::Object;
  v.members_ = std::move(members);
  return v;
}

bool validate(std::string_view text, std::string *error) {
  return Validator(text).run(error);
}

std::optional<Value> parse(std::string_view text, std::string *error) {
  return Parser(text).run(error);
}

std::string compact(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool inString = false;
  bool escaped = false;
  for (char c : text) {
    if (inString) {
      out += c;
      if (escaped)
        escaped = false;
      else if (c == '\\')
        escaped = true;
      else if (c == '"')
        inString = false;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
      continue;
    out += c;
    if (c == '"')
      inString = true;
  }
  return out;
}

} // namespace mha::json
