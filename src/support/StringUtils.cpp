#include "support/StringUtils.h"

#include <cctype>
#include <charconv>
#include <cstring>

namespace mha {

std::string strfmt(const char *fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list argsCopy;
  va_copy(argsCopy, args);
  int len = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (len < 0) {
    // vsnprintf reports encoding errors (e.g. a malformed multibyte
    // sequence under a UTF-8 locale) as a negative length. Returning an
    // empty string here would silently drop diagnostics, so surface the
    // failure in-band instead of propagating garbage.
    va_end(argsCopy);
    return std::string("<strfmt-error:") + fmt + ">";
  }
  if (len > 0) {
    out.resize(static_cast<size_t>(len));
    std::vsnprintf(out.data(), out.size() + 1, fmt, argsCopy);
  }
  va_end(argsCopy);
  return out;
}

std::vector<std::string> splitString(std::string_view text, char sep,
                                     bool keepEmpty) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos)
      pos = text.size();
    std::string_view piece = text.substr(start, pos - start);
    if (keepEmpty || !piece.empty())
      out.emplace_back(piece);
    if (pos == text.size())
      break;
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  size_t b = 0, e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b])))
    ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])))
    --e;
  return text.substr(b, e - b);
}

bool startsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool endsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string joinStrings(const std::vector<std::string> &parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i)
      out += sep;
    out += parts[i];
  }
  return out;
}

std::optional<int64_t> parseInt(std::string_view text) {
  int64_t value = 0;
  const char *first = text.data();
  const char *last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value, 10);
  if (ec != std::errc() || ptr != last)
    return std::nullopt;
  return value;
}

std::optional<double> parseDouble(std::string_view text) {
  // from_chars accepts "inf"/"nan" spellings; the IR grammars never emit
  // them, so reject any input containing a letter other than the exponent
  // marker before handing off.
  for (char c : text)
    if (std::isalpha(static_cast<unsigned char>(c)) && c != 'e' && c != 'E')
      return std::nullopt;
  double value = 0;
  const char *first = text.data();
  const char *last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value,
                                   std::chars_format::general);
  if (ec != std::errc() || ptr != last)
    return std::nullopt;
  return value;
}

bool isValidIdentifier(std::string_view name) {
  if (name.empty())
    return false;
  auto isHead = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  auto isBody = [&](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
  };
  if (!isHead(name[0]))
    return false;
  for (char c : name.substr(1))
    if (!isBody(c))
      return false;
  return true;
}

} // namespace mha
