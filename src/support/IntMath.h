// IntMath.h - canonical-form arithmetic for arbitrary-width integers.
//
// The compiler stores every iN value sign-extended into an int64_t (the
// "canonical form": lir::LContext::constInt normalizes constants this way,
// and interp::Interpreter keeps runtime values in the same form). These
// helpers convert between the canonical form and the low-N-bit pattern so
// that the interpreter, the constant folders and the fuzzer's host
// reference all agree bit-for-bit on wrap-around semantics.
#pragma once

#include <cstdint>

namespace mha {

/// The low `width` bits of an iN value (its two's-complement bit pattern).
inline uint64_t truncBits(int64_t v, unsigned width) {
  if (width >= 64)
    return static_cast<uint64_t>(v);
  return static_cast<uint64_t>(v) & ((uint64_t(1) << width) - 1);
}

/// Sign-extends the low `width` bits into the canonical int64 form.
inline int64_t canonicalInt(uint64_t bits, unsigned width) {
  if (width >= 64)
    return static_cast<int64_t>(bits);
  uint64_t mask = (uint64_t(1) << width) - 1;
  uint64_t sign = uint64_t(1) << (width - 1);
  return static_cast<int64_t>(((bits & mask) ^ sign) - sign);
}

/// Smallest signed value representable in iN (canonical form).
inline int64_t minSignedInt(unsigned width) {
  if (width >= 64)
    return INT64_MIN;
  return -(int64_t(1) << (width - 1));
}

/// Largest signed value representable in iN.
inline int64_t maxSignedInt(unsigned width) {
  if (width >= 64)
    return INT64_MAX;
  return (int64_t(1) << (width - 1)) - 1;
}

} // namespace mha
