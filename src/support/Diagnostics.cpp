#include "support/Diagnostics.h"

#include "support/StringUtils.h"

namespace mha {

std::string SrcLoc::str() const {
  if (!isValid())
    return "<unknown>";
  return strfmt("%d:%d", line, col);
}

std::string Diagnostic::str() const {
  const char *sev = severity == DiagSeverity::Error     ? "error"
                    : severity == DiagSeverity::Warning ? "warning"
                                                        : "note";
  if (loc.isValid())
    return strfmt("%s: %s: %s", loc.str().c_str(), sev, message.c_str());
  return strfmt("%s: %s", sev, message.c_str());
}

void DiagnosticEngine::error(std::string message, SrcLoc loc) {
  diags_.push_back({DiagSeverity::Error, loc, std::move(message)});
  ++numErrors_;
}

void DiagnosticEngine::warning(std::string message, SrcLoc loc) {
  diags_.push_back({DiagSeverity::Warning, loc, std::move(message)});
}

void DiagnosticEngine::note(std::string message, SrcLoc loc) {
  diags_.push_back({DiagSeverity::Note, loc, std::move(message)});
}

std::string DiagnosticEngine::str() const {
  std::string out;
  for (const Diagnostic &d : diags_) {
    out += d.str();
    out += '\n';
  }
  return out;
}

} // namespace mha
