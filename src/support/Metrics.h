// Metrics.h - process-wide metrics: counters, gauges, log2 histograms.
//
// The quantitative sibling of Telemetry's event stream: where a trace
// answers "what happened when", the metrics registry answers "how many,
// how fast, at which percentile" — the signals a long-running compile
// service needs for admission control and SLO reporting.
//
// Three metric kinds, all registered by name (plus optional Prometheus-
// style labels) in a process-wide Registry:
//
//  * Counter   - monotonically increasing int64 (tasks executed, bytes
//                stored). Sharded: each recording thread owns one of
//                kShards cache-line-padded relaxed atomics; value() sums.
//  * Gauge     - a settable level (queue depth, cached bytes). One atomic;
//                set/add are unconditional so paired add(+1)/add(-1)
//                callers stay balanced across enable/disable flips.
//  * Histogram - fixed log2 buckets over non-negative int64 samples
//                (microseconds by convention). Per-thread shards with
//                relaxed atomics on the hot path; shards are merged only
//                at snapshot time, so record() never takes a lock.
//
// Recording is gated on a single process-wide relaxed atomic
// (metrics::enabled()): with metrics off, Counter::add and
// Histogram::record are one relaxed load and a branch, and Timer skips
// its clock reads entirely — the ≤2% overhead budget
// (bench/metrics_overhead) is measured with the gate *on*.
//
// Snapshots merge every shard and additionally walk the
// telemetry::Statistic registry, so `--stats` and `--metrics-out` are two
// views of one set of numbers and can never diverge. Two exporters render
// a snapshot: json() (schema "mha.metrics.v1", validated via support/Json
// before any write) and prometheus() (text exposition format). Exporter
// runs a background thread that rewrites the JSON snapshot every
// interval (--metrics-out=<path> --metrics-interval=<ms> on the tools).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace mha::metrics {

/// Label set rendered Prometheus-style: {pipeline="lir",pass="dce"}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Process-wide recording gate (relaxed atomic). Off by default: cold
/// binaries pay one load+branch per record site and nothing else.
bool enabled();
void setEnabled(bool on);

/// Shard count for counters and histograms (power of two). Each thread
/// hashes to a stable shard; false sharing is avoided by cache-line
/// padding, and contention only appears when > kShards threads record
/// into the same metric simultaneously.
inline constexpr int kShards = 16;

/// Histogram bucket count. Bucket 0 holds value == 0; bucket i >= 1 holds
/// [2^(i-1), 2^i). 40 buckets cover up to 2^38 us ≈ 76 hours of latency.
inline constexpr int kBuckets = 40;

/// Maps a sample to its bucket. Negative samples clamp to bucket 0;
/// samples beyond the last bucket's range clamp to the last bucket.
int bucketIndex(int64_t value);

/// Inclusive lower bound of `bucket` (0 for bucket 0, else 2^(bucket-1)).
int64_t bucketLowerBound(int bucket);

/// Exclusive upper bound of `bucket` (1 for bucket 0, else 2^bucket).
int64_t bucketUpperBound(int bucket);

namespace detail {
/// The calling thread's stable shard index in [0, kShards).
int shardIndex();

struct alignas(64) CounterShard {
  std::atomic<int64_t> value{0};
};

struct alignas(64) HistogramShard {
  std::atomic<int64_t> count{0};
  std::atomic<int64_t> sum{0};
  std::atomic<int64_t> min{INT64_MAX};
  std::atomic<int64_t> max{INT64_MIN};
  std::atomic<int64_t> buckets[kBuckets]{};
};
} // namespace detail

/// Monotonically increasing sharded counter.
class Counter {
public:
  void add(int64_t n) {
    if (!enabled())
      return;
    shards_[detail::shardIndex()].value.fetch_add(n,
                                                  std::memory_order_relaxed);
  }
  Counter &operator++() {
    add(1);
    return *this;
  }

  /// Sum across shards (snapshot-consistent enough for reporting; each
  /// shard is read with a relaxed load).
  int64_t value() const;

  /// Zeroes every shard (tests only; concurrent adds may survive).
  void reset();

  Counter() = default;
  Counter(const Counter &) = delete;
  Counter &operator=(const Counter &) = delete;

private:
  detail::CounterShard shards_[kShards];
};

/// A settable level. Unconditional (not gated on enabled()): paired
/// add(+1)/add(-1) call sites must stay balanced even if the recording
/// gate flips between the two calls.
class Gauge {
public:
  void set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0); }

  Gauge() = default;
  Gauge(const Gauge &) = delete;
  Gauge &operator=(const Gauge &) = delete;

private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket log2 histogram with per-thread shards.
class Histogram {
public:
  void record(int64_t value) {
    if (!enabled())
      return;
    recordAlways(value);
  }

  /// Records regardless of the process gate (tests and call sites that
  /// manage their own gating).
  void recordAlways(int64_t value);

  /// Zeroes every shard (tests only).
  void reset();

  /// Merged view of one histogram (also the per-histogram slice of a
  /// Registry snapshot).
  struct Merged {
    int64_t count = 0;
    int64_t sum = 0;
    int64_t min = 0; // 0 when count == 0
    int64_t max = 0;
    int64_t buckets[kBuckets] = {};

    double mean() const { return count ? double(sum) / double(count) : 0.0; }

    /// Nearest-rank percentile with linear interpolation inside the
    /// containing bucket, clamped to [min, max] so degenerate
    /// distributions (all samples equal) report exactly. p in [0, 100].
    /// Formula: rank = ceil(p/100 * count); find the first bucket whose
    /// cumulative count reaches rank; interpolate
    ///   lo + (hi - lo) * (rank - cumulativeBefore) / bucketCount
    /// with [lo, hi) the bucket's bounds.
    double percentile(double p) const;
  };
  Merged merged() const;

  Histogram() = default;
  Histogram(const Histogram &) = delete;
  Histogram &operator=(const Histogram &) = delete;

private:
  detail::HistogramShard shards_[kShards];
};

/// RAII timer feeding a histogram in microseconds. Reads the clock only
/// when metrics are enabled at construction; stop() records once and
/// returns the measured microseconds (0 when unarmed).
class Timer {
public:
  using Clock = std::chrono::steady_clock;

  explicit Timer(Histogram &hist) : hist_(hist), armed_(enabled()) {
    if (armed_)
      start_ = Clock::now();
  }
  ~Timer() { stop(); }

  Timer(const Timer &) = delete;
  Timer &operator=(const Timer &) = delete;

  int64_t stop() {
    if (!armed_)
      return us_;
    armed_ = false;
    us_ = std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                start_)
              .count();
    hist_.recordAlways(us_);
    return us_;
  }

private:
  Histogram &hist_;
  bool armed_;
  int64_t us_ = 0;
  Clock::time_point start_;
};

/// One metric's identity and merged value inside a snapshot.
struct CounterSnapshot {
  std::string name;
  Labels labels;
  std::string help;
  int64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  Labels labels;
  std::string help;
  int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  Labels labels;
  std::string help;
  Histogram::Merged merged;
};

/// A telemetry::Statistic value mirrored into the snapshot (satellite of
/// the counter-world unification: one walk feeds both reports).
struct StatSnapshot {
  std::string group;
  std::string name;
  int64_t value = 0;
};

/// Point-in-time merged view of every registered metric, ordered by
/// (name, rendered labels) so exports are deterministic.
struct Snapshot {
  double uptimeMs = 0;
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::vector<StatSnapshot> stats;

  /// Schema "mha.metrics.v1". Histograms carry count/sum/min/max/mean,
  /// p50/p90/p99, and the non-empty buckets as {le, count} pairs
  /// (le = exclusive upper bound).
  std::string json() const;

  /// Prometheus text exposition format: counters/gauges as single
  /// samples, histograms as cumulative _bucket{le=...}/_sum/_count
  /// series, telemetry statistics as mha_stat{group=,name=} samples.
  std::string prometheus() const;
};

/// The process-wide metric registry. Metric objects are created on first
/// use, never destroyed, and safe to cache by reference — hot paths
/// resolve their metrics once (static local) and record lock-free.
class Registry {
public:
  static Registry &global();

  /// Create-or-get by (name, labels). The help string is recorded on
  /// first creation; later lookups may pass "".
  Counter &counter(std::string_view name, std::string_view help = "",
                   Labels labels = {});
  Gauge &gauge(std::string_view name, std::string_view help = "",
               Labels labels = {});
  Histogram &histogram(std::string_view name, std::string_view help = "",
                       Labels labels = {});

  /// Merges every shard of every metric and mirrors the telemetry
  /// statistic registry (non-zero counters, same set `--stats` prints).
  Snapshot snapshot() const;

  /// Validates and writes snapshot().json() to `path`. Returns false and
  /// fills `*error` on malformed JSON (internal bug) or I/O failure.
  bool writeJsonFile(const std::string &path,
                     std::string *error = nullptr) const;

  /// Validates nothing (text format); writes snapshot().prometheus().
  bool writePrometheusFile(const std::string &path,
                           std::string *error = nullptr) const;

  /// Zeroes every registered metric and restarts the uptime epoch. Metric
  /// references stay valid (objects are zeroed, not destroyed) — tests
  /// only.
  void resetForTest();

private:
  Registry();
  struct Impl;
  Impl &impl() const;
};

/// Records one pass run into the per-pass duration histogram
/// `mha_pass_duration_us{pipeline=...,pass=...}`. No-op when metrics are
/// disabled (checked before the registry lookup, so the disabled cost is
/// one relaxed load).
void recordPassDuration(std::string_view pipeline, std::string_view pass,
                        int64_t us);

/// Background exporter: rewrites the JSON snapshot every `intervalMs`
/// until stop(). start/stop are serialized and idempotent — concurrent
/// callers race safely (second start() fails, second stop() no-ops), and
/// the destructor stops. stop() writes one final snapshot so the file
/// always reflects the complete run.
class Exporter {
public:
  Exporter() = default;
  ~Exporter();

  Exporter(const Exporter &) = delete;
  Exporter &operator=(const Exporter &) = delete;

  /// Spawns the exporter thread. Fails (returns false, fills *error) when
  /// already running or intervalMs < 1.
  bool start(std::string path, int64_t intervalMs,
             std::string *error = nullptr);

  /// Stops the thread (no-op when not running) and writes a final
  /// snapshot. Returns false if the final write failed.
  bool stop(std::string *error = nullptr);

  bool running() const;

  /// Snapshots written so far (periodic + final).
  int64_t writeCount() const;

private:
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::thread thread_;
  bool running_ = false;
  bool stopRequested_ = false;
  std::string path_;
  int64_t intervalMs_ = 0;
  std::atomic<int64_t> writeCount_{0};
};

} // namespace mha::metrics
