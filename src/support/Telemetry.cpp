#include "support/Telemetry.h"

#include "support/Json.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <tuple>

namespace mha::telemetry {

namespace {

// The calling thread's lane. -1 = not yet assigned; an auto lane is
// claimed on first use so unnamed threads still get a stable id.
thread_local int tlsLane = -1;

// --- Span-id tracking -------------------------------------------------

std::atomic<bool> gSpanTracking{false};
std::atomic<uint64_t> gNextSpanId{1};
thread_local uint64_t tlsCurrentSpan = 0;

struct SpanObserverSlot {
  std::mutex mutex;
  std::function<void(const SpanRecord &)> observer;

  static SpanObserverSlot &get() {
    static SpanObserverSlot slot;
    return slot;
  }
};

} // namespace

uint64_t currentSpanId() { return tlsCurrentSpan; }

bool spanTrackingEnabled() {
  return gSpanTracking.load(std::memory_order_relaxed);
}

void setSpanTracking(bool on) {
  gSpanTracking.store(on, std::memory_order_relaxed);
}

void setSpanObserver(std::function<void(const SpanRecord &)> observer) {
  SpanObserverSlot &slot = SpanObserverSlot::get();
  std::lock_guard<std::mutex> lock(slot.mutex);
  slot.observer = std::move(observer);
}

namespace detail {

uint64_t beginSpan(uint64_t &parentOut) {
  uint64_t id = gNextSpanId.fetch_add(1, std::memory_order_relaxed);
  parentOut = tlsCurrentSpan;
  tlsCurrentSpan = id;
  return id;
}

void endSpan(uint64_t id, uint64_t parent, std::string_view name,
             std::string_view category, double ms) {
  // Spans are RAII so per-thread ends are LIFO; an early finish() with a
  // live inner span briefly rewinds past it, which the inner span's own
  // end repairs. Correlation is best-effort, not a parent ledger.
  tlsCurrentSpan = parent;
  // Copy under the lock so close() cannot destroy the callable mid-call.
  std::function<void(const SpanRecord &)> observer;
  {
    SpanObserverSlot &slot = SpanObserverSlot::get();
    std::lock_guard<std::mutex> lock(slot.mutex);
    observer = slot.observer;
  }
  if (observer)
    observer(SpanRecord{id, parent, name, category, ms});
}

} // namespace detail

Tracer &Tracer::global() {
  static Tracer tracer;
  return tracer;
}

int Tracer::currentLane() {
  if (tlsLane < 0)
    tlsLane = nextAutoLane_.fetch_add(1, std::memory_order_relaxed);
  return tlsLane;
}

void Tracer::setThreadLane(int lane, std::string name) {
  tlsLane = lane;
  if (name.empty())
    return;
  Tracer &tracer = global();
  std::lock_guard<std::mutex> lock(tracer.mutex_);
  for (auto &entry : tracer.laneNames_)
    if (entry.first == lane) {
      entry.second = std::move(name);
      return;
    }
  tracer.laneNames_.emplace_back(lane, std::move(name));
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  laneNames_.clear();
  passTimes_.clear();
  epoch_ = Clock::now();
}

void Tracer::recordSpan(std::string name, std::string category,
                        Clock::time_point start, Clock::time_point end,
                        SpanArgs args) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'X';
  event.lane = currentLane();
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(mutex_);
  event.startUs = usSinceEpoch(start);
  event.durUs =
      std::chrono::duration<double, std::micro>(end - start).count();
  events_.push_back(std::move(event));
}

void Tracer::instant(std::string name, std::string category) {
  if (!enabled())
    return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'i';
  event.lane = currentLane();
  std::lock_guard<std::mutex> lock(mutex_);
  event.startUs = usSinceEpoch(Clock::now());
  events_.push_back(std::move(event));
}

void Tracer::recordPassTime(std::string_view pipeline, std::string_view pass,
                            double ms, bool changed) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (PassTime &entry : passTimes_)
    if (entry.pipeline == pipeline && entry.pass == pass) {
      ++entry.runs;
      entry.changed += changed ? 1 : 0;
      entry.totalMs += ms;
      return;
    }
  PassTime entry;
  entry.pipeline = std::string(pipeline);
  entry.pass = std::string(pass);
  entry.runs = 1;
  entry.changed = changed ? 1 : 0;
  entry.totalMs = ms;
  passTimes_.push_back(std::move(entry));
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::vector<PassTime> Tracer::passTimes() const {
  std::vector<PassTime> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = passTimes_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const PassTime &a, const PassTime &b) {
                     return a.totalMs > b.totalMs;
                   });
  return out;
}

std::string Tracer::passTimesTable() const {
  std::vector<PassTime> times = passTimes();
  if (times.empty())
    return "";
  double grand = 0;
  for (const PassTime &entry : times)
    grand += entry.totalMs;
  std::ostringstream os;
  os << "=== pass execution timing (aggregated over "
     << strfmt("%zu", times.size()) << " passes) ===\n";
  os << strfmt("%-10s %-28s %6s %8s %10s %7s\n", "pipeline", "pass", "runs",
               "changed", "total-ms", "%");
  for (const PassTime &entry : times)
    os << strfmt("%-10s %-28s %6lld %8lld %10.3f %6.1f%%\n",
                 entry.pipeline.c_str(), entry.pass.c_str(),
                 static_cast<long long>(entry.runs),
                 static_cast<long long>(entry.changed), entry.totalMs,
                 grand > 0 ? 100.0 * entry.totalMs / grand : 0.0);
  os << strfmt("%-10s %-28s %6s %8s %10.3f %6.1f%%\n", "total", "", "", "",
               grand, 100.0);
  return os.str();
}

std::string Tracer::chromeTraceJson() const {
  std::vector<TraceEvent> events;
  std::vector<std::pair<int, std::string>> laneNames;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
    laneNames = laneNames_;
  }
  std::ostringstream os;
  os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;
  auto comma = [&] {
    if (!first)
      os << ",\n";
    first = false;
  };
  for (const auto &[lane, name] : laneNames) {
    comma();
    os << "{\"ph\": \"M\", \"pid\": 1, \"tid\": " << lane
       << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
       << json::escape(name) << "\"}}";
  }
  for (const TraceEvent &event : events) {
    comma();
    os << "{\"ph\": \"" << event.phase << "\", \"pid\": 1, \"tid\": "
       << event.lane << ", \"ts\": " << json::number(event.startUs, 3);
    if (event.phase == 'X')
      os << ", \"dur\": " << json::number(event.durUs, 3);
    if (event.phase == 'i')
      os << ", \"s\": \"t\"";
    os << ", \"name\": \"" << json::escape(event.name) << "\", \"cat\": \""
       << json::escape(event.category) << "\"";
    if (!event.args.empty()) {
      os << ", \"args\": {";
      for (size_t i = 0; i < event.args.size(); ++i)
        os << (i ? ", " : "") << "\"" << json::escape(event.args[i].first)
           << "\": \"" << json::escape(event.args[i].second) << "\"";
      os << "}";
    }
    os << "}";
  }
  os << "\n]\n}\n";
  return os.str();
}

bool Tracer::writeChromeTrace(const std::string &path,
                              std::string *error) const {
  std::string rendered = chromeTraceJson();
  std::string validateError;
  if (!json::validate(rendered, &validateError)) {
    if (error)
      *error = "chrome trace is not well-formed JSON: " + validateError;
    return false;
  }
  std::ofstream out(path);
  if (!out) {
    if (error)
      *error = "cannot open " + path;
    return false;
  }
  out << rendered;
  if (!out.good()) {
    if (error)
      *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

namespace {

struct StatisticRegistry {
  std::mutex mutex;
  std::vector<Statistic *> entries;

  static StatisticRegistry &get() {
    static StatisticRegistry registry;
    return registry;
  }
};

} // namespace

Statistic::Statistic(const char *group, const char *name,
                     const char *description)
    : group_(group), name_(name), description_(description) {
  StatisticRegistry &registry = StatisticRegistry::get();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.entries.push_back(this);
}

std::vector<StatisticValue> statisticValues(bool includeZero) {
  StatisticRegistry &registry = StatisticRegistry::get();
  std::vector<StatisticValue> out;
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    for (const Statistic *stat : registry.entries) {
      int64_t value = stat->value();
      if (value == 0 && !includeZero)
        continue;
      out.push_back({stat->group(), stat->name(), stat->description(), value});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const StatisticValue &a, const StatisticValue &b) {
              return std::tie(a.group, a.name) < std::tie(b.group, b.name);
            });
  return out;
}

std::string statisticsReport() {
  std::vector<StatisticValue> values = statisticValues();
  if (values.empty())
    return "";
  std::ostringstream os;
  os << "=== statistics ===\n";
  for (const StatisticValue &value : values)
    os << strfmt("%10lld %s.%s - %s\n", static_cast<long long>(value.value),
                 value.group.c_str(), value.name.c_str(),
                 value.description.c_str());
  return os.str();
}

void resetStatistics() {
  StatisticRegistry &registry = StatisticRegistry::get();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (Statistic *stat : registry.entries)
    stat->reset();
}

} // namespace mha::telemetry
