// Arena.h - bump-pointer allocation and string interning.
//
// The IR contexts unique types/attrs/constants for the lifetime of the
// context; individually heap-allocated nodes waste a malloc header and a
// pointer chase per node and make teardown O(nodes) frees. A BumpAllocator
// hands out pointers from large slabs and frees them all at once; nodes
// with non-trivial members (std::string, std::vector) register a
// destructor so the arena can still run them at teardown.
//
// StringInterner stores each distinct string once in the arena and hands
// out stable string_views, so uniquing maps can key on views into the
// interned storage instead of owning copies.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <string_view>
#include <type_traits>
#include <unordered_set>
#include <vector>

namespace mha {

class BumpAllocator {
public:
  BumpAllocator() = default;
  BumpAllocator(const BumpAllocator &) = delete;
  BumpAllocator &operator=(const BumpAllocator &) = delete;
  ~BumpAllocator() { reset(); }

  /// Raw aligned allocation. Never returns null (new[] throws on OOM).
  void *allocate(size_t size, size_t align) {
    size_t cur = reinterpret_cast<uintptr_t>(ptr_);
    size_t aligned = (cur + align - 1) & ~(align - 1);
    size_t padding = aligned - cur;
    if (size + padding > static_cast<size_t>(end_ - ptr_)) {
      newSlab(size + align);
      cur = reinterpret_cast<uintptr_t>(ptr_);
      aligned = (cur + align - 1) & ~(align - 1);
      padding = aligned - cur;
    }
    ptr_ += padding + size;
    bytesAllocated_ += padding + size;
    return reinterpret_cast<void *>(aligned);
  }

  /// Constructs a T in the arena. Trivially-destructible Ts cost only the
  /// bump; others are queued for destruction at reset()/teardown.
  template <typename T, typename... Args> T *create(Args &&...args) {
    T *obj = new (allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
    registerDestructor(obj);
    return obj;
  }

  /// Records `obj` (already placement-constructed in this arena) for
  /// destruction at teardown. No-op for trivially-destructible types.
  template <typename T> void registerDestructor(T *obj) {
    if constexpr (!std::is_trivially_destructible_v<T>)
      destructors_.push_back({obj, [](void *p) { static_cast<T *>(p)->~T(); }});
  }

  /// Copies `s` into the arena; the result stays valid until reset().
  std::string_view copyString(std::string_view s) {
    if (s.empty())
      return {};
    char *mem = static_cast<char *>(allocate(s.size(), 1));
    std::memcpy(mem, s.data(), s.size());
    return std::string_view(mem, s.size());
  }

  /// Destroys registered objects (newest first) and frees every slab.
  void reset() {
    for (auto it = destructors_.rbegin(); it != destructors_.rend(); ++it)
      it->destroy(it->object);
    destructors_.clear();
    for (char *slab : slabs_)
      delete[] slab;
    slabs_.clear();
    ptr_ = end_ = nullptr;
    bytesAllocated_ = 0;
  }

  size_t bytesAllocated() const { return bytesAllocated_; }
  size_t numSlabs() const { return slabs_.size(); }

private:
  void newSlab(size_t minSize) {
    // Start at 16 KiB and double up to 1 MiB so small contexts stay small
    // while parser-heavy ones amortise the allocations.
    size_t size = slabs_.empty() ? kInitialSlab
                                 : std::min(kMaxSlab, slabSize_ * 2);
    if (size < minSize)
      size = minSize;
    slabSize_ = size;
    char *slab = new char[size];
    slabs_.push_back(slab);
    ptr_ = slab;
    end_ = slab + size;
  }

  static constexpr size_t kInitialSlab = 16 * 1024;
  static constexpr size_t kMaxSlab = 1024 * 1024;

  struct Destructor {
    void *object;
    void (*destroy)(void *);
  };

  std::vector<char *> slabs_;
  std::vector<Destructor> destructors_;
  char *ptr_ = nullptr;
  char *end_ = nullptr;
  size_t slabSize_ = kInitialSlab;
  size_t bytesAllocated_ = 0;
};

/// Uniques strings into a BumpAllocator. intern() returns a stable view;
/// interning the same contents twice returns the identical view (pointer
/// equality holds), so interned strings can be compared and hashed by
/// address where profitable.
class StringInterner {
public:
  explicit StringInterner(BumpAllocator &arena) : arena_(arena) {}

  std::string_view intern(std::string_view s) {
    auto it = strings_.find(s);
    if (it != strings_.end())
      return *it;
    std::string_view stored = arena_.copyString(s);
    strings_.insert(stored);
    return stored;
  }

  size_t size() const { return strings_.size(); }

private:
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>()(s);
    }
  };
  BumpAllocator &arena_;
  std::unordered_set<std::string_view, Hash, std::equal_to<>> strings_;
};

} // namespace mha
