// Telemetry.h - process-wide tracing, pass timing, and statistics.
//
// Three coordinated facilities behind one global `Tracer`:
//
//  * Hierarchical spans. A `Span` is an RAII timer for a named region on
//    the calling thread. It *always* measures (two steady_clock reads, the
//    same cost as the hand-rolled timing it replaces — finish() returns
//    the elapsed milliseconds so callers can feed StageTimings etc.), but
//    it only *records* an event when tracing is enabled: one relaxed
//    atomic load decides, so a disabled tracer is near-zero overhead and
//    produces zero allocations or locking on the hot path. Recorded spans
//    become Chrome trace-event "complete" ('X') events; nesting is
//    expressed by time containment within a lane, which RAII scoping
//    guarantees, so chrome://tracing and Perfetto render the span stack
//    with no parent bookkeeping here.
//
//  * Lanes. Every thread records into a lane (the Chrome "tid"). Pool
//    workers claim lane = worker index with a display name ("worker 3");
//    unclaimed threads get stable auto-assigned lanes starting at 1000.
//
//  * Statistics. `Statistic` is an LLVM-style named atomic counter,
//    registered at construction into a global registry and dumped by
//    `--stats`. Counters are process-wide and thread-safe; passes keep
//    their per-run `PassStats` maps for per-job attribution and bump the
//    global counters for whole-process totals.
//
// Pass timing (`--time-passes`) is a separate aggregation keyed by
// (pipeline, pass): both pass managers report each pass run's wall time
// when the flag is on, and `passTimesTable()` renders the classic
// aggregated table.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mha::telemetry {

using Clock = std::chrono::steady_clock;
using SpanArgs = std::vector<std::pair<std::string, std::string>>;

// --- Span-id tracking -------------------------------------------------
//
// When enabled (the structured event log turns it on), every Span claims
// a process-unique id and pushes itself onto a per-thread stack, so any
// code running inside the span can stamp its output with
// currentSpanId() — the correlation key between event-log lines and the
// span that produced them. Off by default: a disabled process pays one
// relaxed load per Span construction and nothing else.

/// The innermost live tracked span on the calling thread (0 = none or
/// tracking disabled).
uint64_t currentSpanId();

bool spanTrackingEnabled();
void setSpanTracking(bool on);

/// A finished tracked span, delivered to the registered observer.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent = 0; // 0 = top-level on its thread
  std::string_view name;
  std::string_view category;
  double ms = 0;
};

/// Registers the (single) observer called on every tracked span finish,
/// from the finishing thread. Pass nullptr to clear. The observer must be
/// thread-safe; the event log uses this to journal span history.
void setSpanObserver(std::function<void(const SpanRecord &)> observer);

namespace detail {
/// Claims a fresh span id, records the previous innermost id in
/// `parentOut` and makes the new id current. Returns the id.
uint64_t beginSpan(uint64_t &parentOut);
/// Restores `parent` as the thread's current span and notifies the
/// observer (when one is registered).
void endSpan(uint64_t id, uint64_t parent, std::string_view name,
             std::string_view category, double ms);
} // namespace detail

/// One recorded trace event (Chrome trace-event model).
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X'; // 'X' complete span, 'i' instant
  int lane = 0;     // Chrome "tid"
  double startUs = 0; // microseconds since the tracer epoch
  double durUs = 0;   // 'X' only
  SpanArgs args;
};

/// Aggregated wall time for one pass across every run (--time-passes).
struct PassTime {
  std::string pipeline; // "lir" | "mir"
  std::string pass;
  int64_t runs = 0;
  int64_t changed = 0; // runs that reported IR changes
  double totalMs = 0;
};

class Tracer {
public:
  /// The process-wide tracer used by Span, the pass managers, the flow
  /// drivers and the tools.
  static Tracer &global();

  void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void setTimePasses(bool on) {
    timePasses_.store(on, std::memory_order_relaxed);
  }
  bool timePassesEnabled() const {
    return timePasses_.load(std::memory_order_relaxed);
  }

  /// Drops all recorded events, lane names and pass times and restarts
  /// the epoch. Enable/time-passes flags are left as they are.
  void reset();

  /// Records a finished span in the calling thread's lane. Normally
  /// reached through Span, not called directly.
  void recordSpan(std::string name, std::string category,
                  Clock::time_point start, Clock::time_point end,
                  SpanArgs args = {});

  /// Records an instant event in the calling thread's lane (a zero-width
  /// marker, e.g. a job failure).
  void instant(std::string name, std::string category);

  /// Claims lane `lane` for the calling thread and, when `name` is
  /// non-empty, sets the lane's display name in the exported trace.
  /// Idempotent; cheap enough to call per task.
  static void setThreadLane(int lane, std::string name = "");

  /// Aggregates one pass run into the --time-passes table. Gated by the
  /// caller on timePassesEnabled().
  void recordPassTime(std::string_view pipeline, std::string_view pass,
                      double ms, bool changed);

  std::vector<TraceEvent> events() const;
  /// Sorted by total time, descending.
  std::vector<PassTime> passTimes() const;
  /// Human-readable aggregated pass-timing table (empty string when no
  /// pass times were recorded).
  std::string passTimesTable() const;

  /// Renders every recorded event as Chrome trace-event JSON:
  /// {"displayTimeUnit":"ms","traceEvents":[...]} with one thread_name
  /// metadata record per named lane. Loadable in chrome://tracing and
  /// Perfetto.
  std::string chromeTraceJson() const;

  /// Validates and writes the Chrome trace to `path`. Returns false (and
  /// fills `*error`) on I/O failure or if the rendered JSON is somehow
  /// malformed — a trace file should never be silently unloadable.
  bool writeChromeTrace(const std::string &path,
                        std::string *error = nullptr) const;

private:
  Tracer() : epoch_(Clock::now()) {}

  double usSinceEpoch(Clock::time_point t) const {
    return std::chrono::duration<double, std::micro>(t - epoch_).count();
  }
  int currentLane();

  std::atomic<bool> enabled_{false};
  std::atomic<bool> timePasses_{false};

  mutable std::mutex mutex_;
  Clock::time_point epoch_;
  std::vector<TraceEvent> events_;
  std::vector<std::pair<int, std::string>> laneNames_;
  std::vector<PassTime> passTimes_;
  std::atomic<int> nextAutoLane_{1000};
};

/// RAII span. Measures from construction to finish()/destruction and
/// records into the global tracer when tracing is enabled.
class Span {
public:
  explicit Span(std::string name, std::string category = "default",
                SpanArgs args = {})
      : name_(std::move(name)), category_(std::move(category)),
        args_(std::move(args)) {
    if (spanTrackingEnabled())
      id_ = detail::beginSpan(parent_);
    start_ = Clock::now();
  }
  ~Span() { finish(); }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Milliseconds since construction (span still running).
  double elapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Ends the span, records it (when tracing is enabled) and returns the
  /// measured duration in milliseconds. Idempotent: later calls (and the
  /// destructor) return the first measurement.
  double finish() {
    if (done_)
      return ms_;
    done_ = true;
    Clock::time_point end = Clock::now();
    ms_ = std::chrono::duration<double, std::milli>(end - start_).count();
    if (id_)
      detail::endSpan(id_, parent_, name_, category_, ms_);
    Tracer &tracer = Tracer::global();
    if (tracer.enabled())
      tracer.recordSpan(std::move(name_), std::move(category_), start_, end,
                        std::move(args_));
    return ms_;
  }

  /// This span's tracked id (0 when span tracking was off at
  /// construction).
  uint64_t id() const { return id_; }

private:
  std::string name_;
  std::string category_;
  SpanArgs args_;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  Clock::time_point start_;
  double ms_ = 0;
  bool done_ = false;
};

/// LLVM-style named statistic: a process-wide atomic counter registered
/// into the global registry at construction. Define one per counted event
/// at file scope in the pass that owns it:
///
///   static telemetry::Statistic numRemoved("dce", "removed",
///                                          "instructions removed");
///   ...
///   ++numRemoved;
class Statistic {
public:
  Statistic(const char *group, const char *name, const char *description);

  void add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  Statistic &operator++() {
    add(1);
    return *this;
  }
  Statistic &operator+=(int64_t n) {
    add(n);
    return *this;
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

  const char *group() const { return group_; }
  const char *name() const { return name_; }
  const char *description() const { return description_; }

private:
  const char *group_;
  const char *name_;
  const char *description_;
  std::atomic<int64_t> value_{0};
};

struct StatisticValue {
  std::string group;
  std::string name;
  std::string description;
  int64_t value = 0;
};

/// Snapshot of registered statistics, sorted by (group, name). By default
/// only counters that actually fired are included.
std::vector<StatisticValue> statisticValues(bool includeZero = false);

/// Human-readable counter dump for --stats (empty string when nothing
/// fired).
std::string statisticsReport();

/// Zeroes every registered counter (tests and long-lived tools).
void resetStatistics();

} // namespace mha::telemetry
