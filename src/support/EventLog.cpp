#include "support/EventLog.h"

#include "support/Json.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <chrono>
#include <fstream>
#include <mutex>

namespace mha::elog {

const char *levelName(Level level) {
  switch (level) {
  case Level::Debug:
    return "debug";
  case Level::Info:
    return "info";
  case Level::Warn:
    return "warn";
  case Level::Error:
    return "error";
  }
  return "?";
}

std::optional<Level> parseLevel(std::string_view text) {
  if (text == "debug")
    return Level::Debug;
  if (text == "info")
    return Level::Info;
  if (text == "warn")
    return Level::Warn;
  if (text == "error")
    return Level::Error;
  return std::nullopt;
}

struct EventLog::Impl {
  std::mutex mutex;
  std::ofstream out;
  int64_t linesWritten = 0;
  int64_t linesDropped = 0;
  // Whether this log turned span tracking on (and so must turn it off):
  // a test or tool that enabled tracking independently keeps it.
  bool ownsSpanTracking = false;
};

EventLog::Impl &EventLog::impl() const {
  static Impl instance;
  return instance;
}

EventLog &EventLog::global() {
  static EventLog instance;
  return instance;
}

namespace {

int64_t unixMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

} // namespace

bool EventLog::open(const std::string &path, Level minLevel,
                    std::string *error) {
  Impl &i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  if (enabled()) {
    if (error)
      *error = "event log already open";
    return false;
  }
  i.out.open(path, std::ios::binary | std::ios::trunc);
  if (!i.out) {
    if (error)
      *error = "cannot open " + path + " for writing";
    return false;
  }
  i.linesWritten = 0;
  i.linesDropped = 0;
  minLevel_.store(static_cast<int>(minLevel), std::memory_order_relaxed);
  i.ownsSpanTracking = !telemetry::spanTrackingEnabled();
  if (i.ownsSpanTracking)
    telemetry::setSpanTracking(true);
  telemetry::setSpanObserver([](const telemetry::SpanRecord &record) {
    EventLog::global().log(
        Level::Debug, "span", record.name, record.id,
        {{"category", std::string(record.category)},
         {"ms", strfmt("%.3f", record.ms)},
         {"parent", strfmt("%llu",
                           static_cast<unsigned long long>(record.parent))}});
  });
  enabled_.store(true, std::memory_order_relaxed);
  return true;
}

void EventLog::close() {
  Impl &i = impl();
  // Disable before taking the lock so concurrent log() calls drain fast;
  // the observer is cleared under telemetry's own lock, which waits out
  // any in-flight observer call.
  enabled_.store(false, std::memory_order_relaxed);
  telemetry::setSpanObserver(nullptr);
  std::lock_guard<std::mutex> lock(i.mutex);
  if (i.ownsSpanTracking) {
    telemetry::setSpanTracking(false);
    i.ownsSpanTracking = false;
  }
  if (i.out.is_open()) {
    i.out.flush();
    i.out.close();
  }
}

void EventLog::log(Level level, std::string_view subsystem,
                   std::string_view message, const Fields &fields) {
  log(level, subsystem, message, telemetry::currentSpanId(), fields);
}

void EventLog::log(Level level, std::string_view subsystem,
                   std::string_view message, uint64_t spanId,
                   const Fields &fields) {
  if (!enabled() || static_cast<int>(level) <
                        minLevel_.load(std::memory_order_relaxed))
    return;
  std::string line;
  line.reserve(128);
  line += strfmt("{\"ts_us\": %lld, \"level\": \"%s\", \"subsys\": \"",
                 static_cast<long long>(unixMicros()), levelName(level));
  line += json::escape(subsystem);
  line += "\", \"msg\": \"";
  line += json::escape(message);
  line += strfmt("\", \"span\": %llu", static_cast<unsigned long long>(spanId));
  for (const auto &[key, value] : fields) {
    line += ", \"";
    line += json::escape(key);
    line += "\": \"";
    line += json::escape(value);
    line += "\"";
  }
  line += "}";

  Impl &i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  if (!i.out.is_open())
    return; // raced with close()
  if (!json::validate(line)) {
    ++i.linesDropped; // would corrupt the JSONL stream; drop and count
    return;
  }
  i.out << line << "\n";
  i.out.flush(); // greppable history must survive a crash
  ++i.linesWritten;
}

int64_t EventLog::linesWritten() const {
  Impl &i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  return i.linesWritten;
}

int64_t EventLog::linesDropped() const {
  Impl &i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  return i.linesDropped;
}

} // namespace mha::elog
