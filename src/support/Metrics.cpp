#include "support/Metrics.h"

#include "support/Json.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

namespace mha::metrics {

namespace {

std::atomic<bool> gEnabled{false};

/// Renders "name{k1=\"v1\",k2=\"v2\"}" — the registry key and the
/// Prometheus sample name in one.
std::string renderKey(std::string_view name, const Labels &labels) {
  std::string out(name);
  if (labels.empty())
    return out;
  out += "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i)
      out += ",";
    out += labels[i].first;
    out += "=\"";
    out += json::escape(labels[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

} // namespace

bool enabled() { return gEnabled.load(std::memory_order_relaxed); }
void setEnabled(bool on) { gEnabled.store(on, std::memory_order_relaxed); }

int bucketIndex(int64_t value) {
  if (value <= 0)
    return 0;
  int bucket = 64 - std::countl_zero(static_cast<uint64_t>(value));
  return bucket < kBuckets ? bucket : kBuckets - 1;
}

int64_t bucketLowerBound(int bucket) {
  return bucket <= 0 ? 0 : int64_t(1) << (bucket - 1);
}

int64_t bucketUpperBound(int bucket) {
  return bucket <= 0 ? 1 : int64_t(1) << bucket;
}

namespace detail {

int shardIndex() {
  static std::atomic<int> nextShard{0};
  thread_local int tlShard =
      nextShard.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return tlShard;
}

} // namespace detail

// --- Counter ----------------------------------------------------------

int64_t Counter::value() const {
  int64_t total = 0;
  for (const detail::CounterShard &shard : shards_)
    total += shard.value.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() {
  for (detail::CounterShard &shard : shards_)
    shard.value.store(0, std::memory_order_relaxed);
}

// --- Histogram --------------------------------------------------------

void Histogram::recordAlways(int64_t value) {
  if (value < 0)
    value = 0;
  detail::HistogramShard &shard = shards_[detail::shardIndex()];
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  shard.buckets[bucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  int64_t seen = shard.min.load(std::memory_order_relaxed);
  while (value < seen &&
         !shard.min.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed))
    ;
  seen = shard.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !shard.max.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed))
    ;
}

void Histogram::reset() {
  for (detail::HistogramShard &shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
    shard.min.store(INT64_MAX, std::memory_order_relaxed);
    shard.max.store(INT64_MIN, std::memory_order_relaxed);
    for (std::atomic<int64_t> &bucket : shard.buckets)
      bucket.store(0, std::memory_order_relaxed);
  }
}

Histogram::Merged Histogram::merged() const {
  Merged out;
  int64_t minSeen = INT64_MAX, maxSeen = INT64_MIN;
  for (const detail::HistogramShard &shard : shards_) {
    out.count += shard.count.load(std::memory_order_relaxed);
    out.sum += shard.sum.load(std::memory_order_relaxed);
    minSeen = std::min(minSeen, shard.min.load(std::memory_order_relaxed));
    maxSeen = std::max(maxSeen, shard.max.load(std::memory_order_relaxed));
    for (int b = 0; b < kBuckets; ++b)
      out.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
  }
  out.min = out.count ? minSeen : 0;
  out.max = out.count ? maxSeen : 0;
  return out;
}

double Histogram::Merged::percentile(double p) const {
  if (count == 0)
    return 0;
  p = std::clamp(p, 0.0, 100.0);
  int64_t rank = static_cast<int64_t>(std::ceil(p / 100.0 * double(count)));
  if (rank < 1)
    rank = 1;
  int64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0)
      continue;
    if (cumulative + buckets[b] >= rank) {
      double lo = double(bucketLowerBound(b));
      double hi = double(bucketUpperBound(b));
      double within = double(rank - cumulative) / double(buckets[b]);
      double value = lo + (hi - lo) * within;
      return std::clamp(value, double(min), double(max));
    }
    cumulative += buckets[b];
  }
  return double(max);
}

// --- Registry ---------------------------------------------------------

namespace {

template <typename Metric> struct Registered {
  std::string name;
  Labels labels;
  std::string help;
  // Metrics are heap-allocated once and never freed: references handed to
  // call sites must outlive any resetForTest()/registry growth.
  std::unique_ptr<Metric> metric;
};

} // namespace

struct Registry::Impl {
  mutable std::mutex mutex;
  telemetry::Clock::time_point epoch = telemetry::Clock::now();
  // Keyed by renderKey(name, labels); std::map keeps exports sorted.
  std::map<std::string, Registered<Counter>> counters;
  std::map<std::string, Registered<Gauge>> gauges;
  std::map<std::string, Registered<Histogram>> histograms;
};

Registry::Registry() = default;

Registry::Impl &Registry::impl() const {
  static Impl instance;
  return instance;
}

Registry &Registry::global() {
  static Registry instance;
  return instance;
}

namespace {

template <typename Metric>
Metric &createOrGet(std::map<std::string, Registered<Metric>> &map,
                    std::string_view name, std::string_view help,
                    Labels labels) {
  std::string key = renderKey(name, labels);
  auto it = map.find(key);
  if (it == map.end()) {
    Registered<Metric> entry;
    entry.name = std::string(name);
    entry.labels = std::move(labels);
    entry.help = std::string(help);
    entry.metric = std::unique_ptr<Metric>(new Metric());
    it = map.emplace(std::move(key), std::move(entry)).first;
  } else if (it->second.help.empty() && !help.empty()) {
    it->second.help = std::string(help);
  }
  return *it->second.metric;
}

} // namespace

Counter &Registry::counter(std::string_view name, std::string_view help,
                           Labels labels) {
  Impl &i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  return createOrGet(i.counters, name, help, std::move(labels));
}

Gauge &Registry::gauge(std::string_view name, std::string_view help,
                       Labels labels) {
  Impl &i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  return createOrGet(i.gauges, name, help, std::move(labels));
}

Histogram &Registry::histogram(std::string_view name, std::string_view help,
                               Labels labels) {
  Impl &i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  return createOrGet(i.histograms, name, help, std::move(labels));
}

Snapshot Registry::snapshot() const {
  Impl &i = impl();
  Snapshot out;
  {
    std::lock_guard<std::mutex> lock(i.mutex);
    out.uptimeMs = std::chrono::duration<double, std::milli>(
                       telemetry::Clock::now() - i.epoch)
                       .count();
    for (const auto &[key, entry] : i.counters)
      out.counters.push_back(
          {entry.name, entry.labels, entry.help, entry.metric->value()});
    for (const auto &[key, entry] : i.gauges)
      out.gauges.push_back(
          {entry.name, entry.labels, entry.help, entry.metric->value()});
    for (const auto &[key, entry] : i.histograms)
      out.histograms.push_back(
          {entry.name, entry.labels, entry.help, entry.metric->merged()});
  }
  // One walk of the telemetry registry feeds both this snapshot and
  // --stats (same non-zero filter), so the two reports cannot diverge.
  for (const telemetry::StatisticValue &stat : telemetry::statisticValues())
    out.stats.push_back({stat.group, stat.name, stat.value});
  return out;
}

void Registry::resetForTest() {
  Impl &i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  i.epoch = telemetry::Clock::now();
  for (auto &[key, entry] : i.counters)
    entry.metric->reset();
  for (auto &[key, entry] : i.gauges)
    entry.metric->reset();
  for (auto &[key, entry] : i.histograms)
    entry.metric->reset();
}

// --- Exporters --------------------------------------------------------

namespace {

void appendLabelsJson(std::ostringstream &os, const Labels &labels) {
  os << "\"labels\": {";
  for (size_t i = 0; i < labels.size(); ++i)
    os << (i ? ", " : "") << "\"" << json::escape(labels[i].first)
       << "\": \"" << json::escape(labels[i].second) << "\"";
  os << "}";
}

} // namespace

std::string Snapshot::json() const {
  std::ostringstream os;
  os << "{\n  \"schema\": \"mha.metrics.v1\",\n";
  os << "  \"uptime_ms\": " << json::number(uptimeMs) << ",\n";
  os << "  \"counters\": [";
  for (size_t i = 0; i < counters.size(); ++i) {
    const CounterSnapshot &c = counters[i];
    os << (i ? ",\n    " : "\n    ") << "{\"name\": \""
       << json::escape(c.name) << "\", ";
    appendLabelsJson(os, c.labels);
    os << ", \"value\": " << c.value << "}";
  }
  os << "\n  ],\n  \"gauges\": [";
  for (size_t i = 0; i < gauges.size(); ++i) {
    const GaugeSnapshot &g = gauges[i];
    os << (i ? ",\n    " : "\n    ") << "{\"name\": \""
       << json::escape(g.name) << "\", ";
    appendLabelsJson(os, g.labels);
    os << ", \"value\": " << g.value << "}";
  }
  os << "\n  ],\n  \"histograms\": [";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot &h = histograms[i];
    const Histogram::Merged &m = h.merged;
    os << (i ? ",\n    " : "\n    ") << "{\"name\": \""
       << json::escape(h.name) << "\", ";
    appendLabelsJson(os, h.labels);
    os << ", \"count\": " << m.count << ", \"sum\": " << m.sum
       << ", \"min\": " << m.min << ", \"max\": " << m.max
       << ", \"mean\": " << json::number(m.mean())
       << ", \"p50\": " << json::number(m.percentile(50))
       << ", \"p90\": " << json::number(m.percentile(90))
       << ", \"p99\": " << json::number(m.percentile(99))
       << ", \"buckets\": [";
    bool first = true;
    for (int b = 0; b < kBuckets; ++b) {
      if (m.buckets[b] == 0)
        continue;
      os << (first ? "" : ", ") << "{\"le\": " << bucketUpperBound(b)
         << ", \"count\": " << m.buckets[b] << "}";
      first = false;
    }
    os << "]}";
  }
  os << "\n  ],\n  \"stats\": [";
  for (size_t i = 0; i < stats.size(); ++i) {
    const StatSnapshot &s = stats[i];
    os << (i ? ",\n    " : "\n    ") << "{\"group\": \""
       << json::escape(s.group) << "\", \"name\": \"" << json::escape(s.name)
       << "\", \"value\": " << s.value << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string Snapshot::prometheus() const {
  std::ostringstream os;
  auto sampleName = [](const std::string &name, const Labels &labels,
                       const char *suffix = "",
                       const Labels &extra = {}) {
    std::string out = name;
    out += suffix;
    Labels all = labels;
    all.insert(all.end(), extra.begin(), extra.end());
    out += all.empty() ? "" : renderKey("", all);
    return out;
  };
  std::string lastTyped;
  auto typeLine = [&](const std::string &name, const char *type,
                      const std::string &help) {
    if (name == lastTyped)
      return; // one TYPE/HELP line per metric family
    lastTyped = name;
    if (!help.empty())
      os << "# HELP " << name << " " << help << "\n";
    os << "# TYPE " << name << " " << type << "\n";
  };
  for (const CounterSnapshot &c : counters) {
    typeLine(c.name, "counter", c.help);
    os << sampleName(c.name, c.labels) << " " << c.value << "\n";
  }
  lastTyped.clear();
  for (const GaugeSnapshot &g : gauges) {
    typeLine(g.name, "gauge", g.help);
    os << sampleName(g.name, g.labels) << " " << g.value << "\n";
  }
  lastTyped.clear();
  for (const HistogramSnapshot &h : histograms) {
    typeLine(h.name, "histogram", h.help);
    const Histogram::Merged &m = h.merged;
    int64_t cumulative = 0;
    for (int b = 0; b < kBuckets; ++b) {
      if (m.buckets[b] == 0)
        continue;
      cumulative += m.buckets[b];
      os << sampleName(h.name, h.labels, "_bucket",
                       {{"le", strfmt("%lld", static_cast<long long>(
                                                  bucketUpperBound(b)))}})
         << " " << cumulative << "\n";
    }
    os << sampleName(h.name, h.labels, "_bucket", {{"le", "+Inf"}}) << " "
       << m.count << "\n";
    os << sampleName(h.name, h.labels, "_sum") << " " << m.sum << "\n";
    os << sampleName(h.name, h.labels, "_count") << " " << m.count << "\n";
  }
  if (!stats.empty()) {
    os << "# TYPE mha_stat counter\n";
    for (const StatSnapshot &s : stats)
      os << "mha_stat{group=\"" << json::escape(s.group) << "\",name=\""
         << json::escape(s.name) << "\"} " << s.value << "\n";
  }
  return os.str();
}

namespace {

bool writeTextFile(const std::string &path, const std::string &text,
                   std::string *error) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    if (error)
      *error = "cannot open " + path + " for writing";
    return false;
  }
  out << text;
  out.close();
  if (!out) {
    if (error)
      *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

} // namespace

bool Registry::writeJsonFile(const std::string &path,
                             std::string *error) const {
  std::string rendered = snapshot().json();
  std::string validateError;
  if (!json::validate(rendered, &validateError)) {
    if (error)
      *error = "metrics snapshot is not well-formed JSON: " + validateError;
    return false;
  }
  return writeTextFile(path, rendered, error);
}

bool Registry::writePrometheusFile(const std::string &path,
                                   std::string *error) const {
  return writeTextFile(path, snapshot().prometheus(), error);
}

void recordPassDuration(std::string_view pipeline, std::string_view pass,
                        int64_t us) {
  if (!enabled())
    return;
  Registry::global()
      .histogram("mha_pass_duration_us", "per-pass execution time",
                 {{"pipeline", std::string(pipeline)},
                  {"pass", std::string(pass)}})
      .recordAlways(us);
}

// --- Exporter ---------------------------------------------------------

Exporter::~Exporter() { stop(); }

bool Exporter::start(std::string path, int64_t intervalMs,
                     std::string *error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) {
    if (error)
      *error = "exporter already running";
    return false;
  }
  if (intervalMs < 1) {
    if (error)
      *error = "exporter interval must be >= 1 ms";
    return false;
  }
  // A previous stop() may have left a joined-out thread object behind.
  if (thread_.joinable())
    thread_.join();
  path_ = std::move(path);
  intervalMs_ = intervalMs;
  stopRequested_ = false;
  running_ = true;
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopRequested_) {
      if (wake_.wait_for(lock, std::chrono::milliseconds(intervalMs_),
                         [this] { return stopRequested_; }))
        break;
      std::string path = path_;
      lock.unlock();
      // Best-effort: a periodic write failure (e.g. disk full) is not
      // fatal; the final stop() write surfaces the error.
      if (Registry::global().writeJsonFile(path))
        writeCount_.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
    }
  });
  return true;
}

bool Exporter::stop(std::string *error) {
  std::thread worker;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) {
      // Reap a thread a concurrent stop() already signalled but did not
      // own; harmless when there is none.
      if (thread_.joinable())
        thread_.join();
      return true;
    }
    stopRequested_ = true;
    running_ = false;
    worker = std::move(thread_);
    path = path_;
  }
  wake_.notify_all();
  if (worker.joinable())
    worker.join();
  if (!Registry::global().writeJsonFile(path, error))
    return false;
  writeCount_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Exporter::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

int64_t Exporter::writeCount() const {
  return writeCount_.load(std::memory_order_relaxed);
}

} // namespace mha::metrics
