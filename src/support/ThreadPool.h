// ThreadPool.h - a small fixed-size worker pool.
//
// Used by the design-space-exploration example and the flow driver to
// evaluate independent HLS configurations in parallel. Tasks are plain
// std::function<void()>; completion is observed via wait().
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mha {

class ThreadPool {
public:
  /// Creates `numThreads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(unsigned numThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues a task. Safe to call from any thread, including workers.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait();

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wakeWorker_;
  std::condition_variable idle_;
  size_t inFlight_ = 0;
  bool shutdown_ = false;
};

/// Runs `fn(i)` for i in [0, count) across the pool and waits.
void parallelFor(ThreadPool &pool, size_t count,
                 const std::function<void(size_t)> &fn);

} // namespace mha
