// ThreadPool.h - a small fixed-size worker pool.
//
// Used by the batch flow driver, the design-space-exploration example and
// the benches to evaluate independent HLS configurations in parallel.
// Tasks are plain std::function<void()>; completion is observed via wait().
//
// Exception safety: a task that throws does not take its worker thread
// down and cannot deadlock wait() — the first exception is captured and
// rethrown from the matching wait() (pool-wide for loose submit()s, per
// group for TaskGroup submissions). Later exceptions from the same wait
// window are dropped.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mha {

class ThreadPool {
public:
  /// Creates `numThreads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(unsigned numThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues a task. Safe to call from any thread, including workers.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished (including tasks
  /// submitted through TaskGroups). If a loose-submitted task threw, the
  /// first captured exception is rethrown; the error state is cleared so
  /// the pool stays usable.
  void wait();

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Index of the calling pool worker in [0, size()), or -1 when the
  /// caller is not a pool worker. Lets instrumented tasks (e.g. the batch
  /// flow tracer) attribute work to workers.
  static int currentWorkerIndex();

  /// Number of queued-but-not-yet-started tasks (instrumentation only;
  /// the value is stale the moment it is returned).
  size_t queueDepth() const;

private:
  friend class TaskGroup;

  /// A queued task plus its enqueue timestamp. The timestamp is taken
  /// only when metrics were enabled at submit time (`timed`), feeding the
  /// mha_pool_task_wait_us histogram when the task is dequeued.
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
    bool timed = false;
  };

  void workerLoop(unsigned index);

  std::vector<std::thread> workers_;
  std::deque<QueuedTask> queue_;
  mutable std::mutex mutex_;
  std::condition_variable wakeWorker_;
  std::condition_variable idle_;
  size_t inFlight_ = 0;
  bool shutdown_ = false;
  std::exception_ptr firstError_;
};

/// A completion token for a subset of a pool's tasks. Tasks run on the
/// shared pool, but wait() blocks only on this group's tasks — concurrent
/// groups (and loose pool.submit() work) are independent, so two
/// parallelFor calls on one pool each return exactly when their own work
/// is done. Exceptions thrown by group tasks are confined to the group:
/// the first one is rethrown from the group's wait(), never from the
/// pool's.
class TaskGroup {
public:
  explicit TaskGroup(ThreadPool &pool) : pool_(pool) {}
  /// Blocks until the group is drained; swallows any unretrieved error.
  ~TaskGroup();

  TaskGroup(const TaskGroup &) = delete;
  TaskGroup &operator=(const TaskGroup &) = delete;

  void submit(std::function<void()> task);

  /// Blocks until every task submitted through this group has finished;
  /// rethrows the group's first captured exception (then clears it).
  void wait();

private:
  ThreadPool &pool_;
  std::mutex mutex_;
  std::condition_variable done_;
  size_t pending_ = 0;
  std::exception_ptr firstError_;
};

/// Runs `fn(i)` for i in [0, count) across the pool and waits for exactly
/// those iterations (not for unrelated in-flight work). Rethrows the first
/// exception any iteration threw.
void parallelFor(ThreadPool &pool, size_t count,
                 const std::function<void(size_t)> &fn);

} // namespace mha
