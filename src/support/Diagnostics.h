// Diagnostics.h - error reporting shared by IR verifiers, parsers and flows.
//
// Diagnostics are collected in a DiagnosticEngine rather than thrown, so a
// verifier can report every problem in one pass and tests can assert on the
// exact set of messages.
#pragma once

#include <string>
#include <vector>

namespace mha {

/// A source position inside a textual IR buffer (1-based line/column).
struct SrcLoc {
  int line = 0;
  int col = 0;
  bool isValid() const { return line > 0; }
  std::string str() const;
};

enum class DiagSeverity { Note, Warning, Error };

/// A single reported problem.
struct Diagnostic {
  DiagSeverity severity = DiagSeverity::Error;
  SrcLoc loc;
  std::string message;

  std::string str() const;
};

/// Accumulates diagnostics; the owning driver decides how to surface them.
class DiagnosticEngine {
public:
  void error(std::string message, SrcLoc loc = {});
  void warning(std::string message, SrcLoc loc = {});
  void note(std::string message, SrcLoc loc = {});

  bool hadError() const { return numErrors_ > 0; }
  size_t errorCount() const { return numErrors_; }
  const std::vector<Diagnostic> &diagnostics() const { return diags_; }

  /// All diagnostics rendered one per line, for test assertions and logs.
  std::string str() const;

  void clear() {
    diags_.clear();
    numErrors_ = 0;
  }

private:
  std::vector<Diagnostic> diags_;
  size_t numErrors_ = 0;
};

} // namespace mha
