// EventLog.h - structured JSONL event log with levels and span
// correlation.
//
// Where Chrome traces need a post-processing UI and stdout scraping needs
// luck, the event log is greppable history: one JSON object per line,
// appended to a file as events happen, so a daemon-style run can be
// tailed, filtered with jq, and correlated with the metrics snapshot.
//
// Each line carries:
//   {"ts_us": <int, microseconds since unix epoch>, "level": "info",
//    "subsys": "flow", "msg": "...", "span": <id>, <extra fields...>}
//
// `span` is the innermost live telemetry::Span's process-unique id on the
// logging thread (0 when none): opening the log turns on span-id tracking
// in support/Telemetry, and every Span finish is itself logged at debug
// level (subsys "span", with category/ms/parent fields), so
// `--event-log-level=debug` yields the full span history inline with the
// explicit events that happened inside each span.
//
// The log is process-global (EventLog::global()), thread-safe (one mutex
// around the append), and near-zero when closed: log() is one relaxed
// atomic load and a branch. Lines are rendered through support/Json
// escaping; a line that somehow renders malformed is dropped and counted
// instead of corrupting the file.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mha::elog {

enum class Level { Debug = 0, Info = 1, Warn = 2, Error = 3 };

const char *levelName(Level level);

/// Parses "debug" | "info" | "warn" | "error" (exact, lowercase).
std::optional<Level> parseLevel(std::string_view text);

/// Extra structured fields appended to a line, rendered as JSON strings.
using Fields = std::vector<std::pair<std::string, std::string>>;

class EventLog {
public:
  /// The process-wide log every subsystem writes to.
  static EventLog &global();

  /// Opens (truncates) `path` and starts accepting events at or above
  /// `minLevel`. Enables telemetry span-id tracking and registers the
  /// span observer that logs finished spans at debug level. Fails when
  /// already open or the file cannot be created.
  bool open(const std::string &path, Level minLevel = Level::Info,
            std::string *error = nullptr);

  /// Flushes, closes, unregisters the span observer and disables span-id
  /// tracking. Idempotent.
  void close();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  Level minLevel() const {
    return static_cast<Level>(minLevel_.load(std::memory_order_relaxed));
  }

  /// Appends one event line (no-op when closed or below minLevel). The
  /// `span` field is the logging thread's current telemetry span id.
  void log(Level level, std::string_view subsystem, std::string_view message,
           const Fields &fields = {});

  /// Same, with an explicit span id — used by the span observer, which
  /// fires after the finished span has already been popped off its thread.
  void log(Level level, std::string_view subsystem, std::string_view message,
           uint64_t spanId, const Fields &fields);

  /// Lines successfully appended since open().
  int64_t linesWritten() const;
  /// Lines dropped because they rendered as malformed JSON (a bug —
  /// tests assert 0).
  int64_t linesDropped() const;

private:
  EventLog() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<int> minLevel_{static_cast<int>(Level::Info)};

  struct Impl;
  Impl &impl() const;
};

/// Convenience forwarders onto EventLog::global().
inline void debug(std::string_view subsys, std::string_view msg,
                  const Fields &fields = {}) {
  EventLog::global().log(Level::Debug, subsys, msg, fields);
}
inline void info(std::string_view subsys, std::string_view msg,
                 const Fields &fields = {}) {
  EventLog::global().log(Level::Info, subsys, msg, fields);
}
inline void warn(std::string_view subsys, std::string_view msg,
                 const Fields &fields = {}) {
  EventLog::global().log(Level::Warn, subsys, msg, fields);
}
inline void error(std::string_view subsys, std::string_view msg,
                  const Fields &fields = {}) {
  EventLog::global().log(Level::Error, subsys, msg, fields);
}

} // namespace mha::elog
