// Hash.h - stable 64-bit content hashing (FNV-1a).
//
// Used by the stage cache in src/flow and by the uniquing maps in the IR
// contexts. FNV-1a is deliberately simple: the values are process-local
// cache keys and hash-map buckets, never persisted across runs or
// machines, so we prefer a dependency-free, branch-free loop over a
// cryptographic hash. Collisions on 64 bits are vanishingly unlikely for
// the corpus sizes involved (tens of kernels, hundreds of DSE points).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace mha {

inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

/// FNV-1a over a byte range, continuing from `seed`.
inline uint64_t hashBytes(const void *data, size_t size,
                          uint64_t seed = kFnvOffsetBasis) {
  const unsigned char *p = static_cast<const unsigned char *>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t hashString(std::string_view s,
                           uint64_t seed = kFnvOffsetBasis) {
  return hashBytes(s.data(), s.size(), seed);
}

/// Incremental builder for composite keys. Each mix* call feeds the raw
/// bytes of its argument; `str` also feeds the length so that ("ab","c")
/// and ("a","bc") hash differently.
class HashBuilder {
public:
  HashBuilder &bytes(const void *data, size_t size) {
    hash_ = hashBytes(data, size, hash_);
    return *this;
  }

  HashBuilder &u64(uint64_t v) { return bytes(&v, sizeof(v)); }
  HashBuilder &i64(int64_t v) { return bytes(&v, sizeof(v)); }
  HashBuilder &u32(uint32_t v) { return bytes(&v, sizeof(v)); }
  HashBuilder &boolean(bool v) { return u32(v ? 1u : 0u); }

  /// Hashes the bit pattern, so +0.0 / -0.0 and distinct NaNs stay
  /// distinct — required for float-constant uniquing keys.
  HashBuilder &f64Bits(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return u64(bits);
  }

  HashBuilder &str(std::string_view s) {
    u64(s.size());
    return bytes(s.data(), s.size());
  }

  HashBuilder &pointer(const void *p) {
    return u64(reinterpret_cast<uintptr_t>(p));
  }

  uint64_t get() const { return hash_; }

private:
  uint64_t hash_ = kFnvOffsetBasis;
};

} // namespace mha
