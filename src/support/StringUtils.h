// StringUtils.h - string helpers used by printers, parsers and reports.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mha {

/// printf-style formatting into a std::string.
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits `text` on `sep`, optionally keeping empty fields.
std::vector<std::string> splitString(std::string_view text, char sep,
                                     bool keepEmpty = false);

/// Removes leading/trailing whitespace.
std::string_view trim(std::string_view text);

bool startsWith(std::string_view text, std::string_view prefix);
bool endsWith(std::string_view text, std::string_view suffix);

/// Joins `parts` with `sep` between elements.
std::string joinStrings(const std::vector<std::string> &parts,
                        std::string_view sep);

/// True if `name` is a valid identifier ([A-Za-z_][A-Za-z0-9_.]*).
bool isValidIdentifier(std::string_view name);

/// Strictly parses the whole of `text` as a base-10 integer (optional
/// leading '-'). Rejects empty input, whitespace, trailing characters and
/// out-of-range values — unlike atoi/atoll, which silently return 0 or
/// stop at the first bad character.
std::optional<int64_t> parseInt(std::string_view text);

/// Strictly parses the whole of `text` as a decimal floating-point number
/// ("1.5", "-2e3", "1e-9"). Locale-independent (from_chars; '.' is always
/// the decimal separator) and non-throwing — unlike std::stod, which
/// honours LC_NUMERIC and throws std::out_of_range on e.g. "1e999".
/// Rejects empty input, whitespace, trailing characters, hex/inf/nan
/// forms and values outside the finite double range.
std::optional<double> parseDouble(std::string_view text);

} // namespace mha
