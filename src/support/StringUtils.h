// StringUtils.h - string helpers used by printers, parsers and reports.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mha {

/// printf-style formatting into a std::string.
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits `text` on `sep`, optionally keeping empty fields.
std::vector<std::string> splitString(std::string_view text, char sep,
                                     bool keepEmpty = false);

/// Removes leading/trailing whitespace.
std::string_view trim(std::string_view text);

bool startsWith(std::string_view text, std::string_view prefix);
bool endsWith(std::string_view text, std::string_view suffix);

/// Joins `parts` with `sep` between elements.
std::string joinStrings(const std::vector<std::string> &parts,
                        std::string_view sep);

/// True if `name` is a valid identifier ([A-Za-z_][A-Za-z0-9_.]*).
bool isValidIdentifier(std::string_view name);

/// Strictly parses the whole of `text` as a base-10 integer (optional
/// leading '-'). Rejects empty input, whitespace, trailing characters and
/// out-of-range values — unlike atoi/atoll, which silently return 0 or
/// stop at the first bad character.
std::optional<int64_t> parseInt(std::string_view text);

} // namespace mha
