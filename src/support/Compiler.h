// Compiler.h - small compiler/portability helpers shared by all modules.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>

namespace mha {

/// Marks unreachable code paths. Aborts in debug builds and tells the
/// optimizer the path is dead in release builds.
[[noreturn]] inline void unreachable(const char *msg = "unreachable") {
  (void)msg;
  assert(false && "unreachable executed");
#if defined(__GNUC__) || defined(__clang__)
  __builtin_unreachable();
#else
  std::abort();
#endif
}

} // namespace mha
