// Casting.h - LLVM-style isa/cast/dyn_cast built on a `classof` protocol.
//
// A class hierarchy participates by giving each concrete class a static
// `bool classof(const Base*)` predicate (usually testing a kind enum stored
// in the base). The helpers below then provide checked downcasts without
// RTTI, which keeps the IR object model cheap and branch-predictable.
#pragma once

#include <cassert>
#include <type_traits>

namespace mha {

template <typename To, typename From>
bool isa(const From *val) {
  assert(val && "isa on null pointer");
  return To::classof(val);
}

template <typename To, typename From>
To *cast(From *val) {
  assert(val && "cast on null pointer");
  assert(To::classof(val) && "cast to incompatible type");
  return static_cast<To *>(val);
}

template <typename To, typename From>
const To *cast(const From *val) {
  assert(val && "cast on null pointer");
  assert(To::classof(val) && "cast to incompatible type");
  return static_cast<const To *>(val);
}

template <typename To, typename From>
To *dyn_cast(From *val) {
  return (val && To::classof(val)) ? static_cast<To *>(val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast(const From *val) {
  return (val && To::classof(val)) ? static_cast<const To *>(val) : nullptr;
}

} // namespace mha
