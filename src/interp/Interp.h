// Interp.h - a MiniLLVM interpreter for functional co-simulation.
//
// Both flows must compute bit-identical results to the host reference;
// the interpreter executes the IR (any stage: descriptor form, adaptor
// output, HLS-frontend output) against caller-provided buffers.
#pragma once

#include "lir/Function.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace mha::interp {

/// A runtime scalar: exactly one field is meaningful, per the static type.
struct RtValue {
  int64_t i = 0;
  double f = 0;
  uint8_t *p = nullptr;

  static RtValue ofInt(int64_t v) {
    RtValue r;
    r.i = v;
    return r;
  }
  static RtValue ofFloat(double v) {
    RtValue r;
    r.f = v;
    return r;
  }
  static RtValue ofPtr(void *v) {
    RtValue r;
    r.p = static_cast<uint8_t *>(v);
    return r;
  }
};

class Interpreter {
public:
  explicit Interpreter(lir::Module &module) : module_(module) {}

  /// Executes `fn` with `args` (one RtValue per LLVM-level argument).
  /// Returns the return value (meaningless for void). Reports problems
  /// (unknown external call, step limit) into `diags` and returns nullopt.
  std::optional<RtValue> run(lir::Function *fn, std::vector<RtValue> args,
                             DiagnosticEngine &diags);

  /// Instruction-execution budget per `run` (guards infinite loops in
  /// broken IR). Default: 200M steps.
  uint64_t stepLimit = 200'000'000;

  /// Maximum IR call-stack depth. Recursion beyond it is diagnosed
  /// ("interp: call depth limit exceeded") instead of overflowing the
  /// host stack — the interpreter executes IR calls with host recursion.
  uint64_t callDepthLimit = 1000;

  /// Total instructions executed by the last run().
  uint64_t stepsExecuted() const { return steps_; }

private:
  lir::Module &module_;
  uint64_t steps_ = 0;
};

/// Convenience: builds the argument vector for calling a function in the
/// *descriptor* convention produced by the MLIR lowering: each buffer
/// expands to (alloc, aligned, offset=0, sizes..., strides...). `shapes`
/// lists the dims per buffer in order.
std::vector<RtValue>
descriptorArgs(const std::vector<void *> &buffers,
               const std::vector<std::vector<int64_t>> &shapes);

/// Convenience: one pointer per buffer (flattened/HLS convention).
std::vector<RtValue> pointerArgs(const std::vector<void *> &buffers);

} // namespace mha::interp
