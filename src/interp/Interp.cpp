#include "interp/Interp.h"

#include "lir/Intrinsics.h"
#include "lir/LContext.h"
#include "lir/Printer.h"
#include "support/Compiler.h"
#include "support/IntMath.h"
#include "support/StringUtils.h"

#include <cmath>
#include <cstring>
#include <map>

namespace mha::interp {

namespace {

using lir::CmpPred;
using lir::Opcode;

using mha::canonicalInt;
using mha::minSignedInt;
using mha::truncBits;

/// One function activation.
struct Frame {
  std::map<const lir::Value *, RtValue> values;
  std::vector<std::vector<uint8_t>> allocas; // storage owned by the frame
};

class Engine {
public:
  Engine(lir::Module &module, uint64_t stepLimit, uint64_t callDepthLimit,
         DiagnosticEngine &diags)
      : module_(module), stepLimit_(stepLimit),
        callDepthLimit_(callDepthLimit), diags_(diags) {}

  uint64_t steps() const { return steps_; }

  std::optional<RtValue> call(lir::Function *fn, std::vector<RtValue> args) {
    if (fn->isDeclaration())
      return callExternal(*fn, args);
    // IR calls recurse on the host stack; bound the depth so runaway IR
    // recursion is a diagnostic, not a host stack overflow.
    if (callDepth_ >= callDepthLimit_) {
      diags_.error(strfmt("interp: call depth limit exceeded (%llu frames) "
                          "calling @%s — unbounded recursion?",
                          static_cast<unsigned long long>(callDepthLimit_),
                          fn->name().c_str()));
      return std::nullopt;
    }
    ++callDepth_;
    auto result = callImpl(fn, std::move(args));
    --callDepth_;
    return result;
  }

  std::optional<RtValue> callImpl(lir::Function *fn,
                                  std::vector<RtValue> args) {
    Frame frame;
    for (unsigned i = 0; i < fn->numArgs(); ++i)
      frame.values[fn->arg(i)] = args[i];

    lir::BasicBlock *block = fn->entry();
    lir::BasicBlock *prevBlock = nullptr;
    for (;;) {
      // Phis first, evaluated simultaneously.
      std::vector<std::pair<const lir::Value *, RtValue>> phiValues;
      auto it = block->begin();
      for (; it != block->end() && (*it)->opcode() == Opcode::Phi; ++it) {
        lir::Value *incoming = (*it)->incomingValueFor(prevBlock);
        if (!incoming) {
          diags_.error("interp: phi has no entry for predecessor");
          return std::nullopt;
        }
        phiValues.push_back({it->get(), eval(incoming, frame)});
      }
      for (auto &[phi, value] : phiValues)
        frame.values[phi] = value;

      for (; it != block->end(); ++it) {
        lir::Instruction *inst = it->get();
        if (++steps_ > stepLimit_) {
          diags_.error("interp: step limit exceeded");
          return std::nullopt;
        }
        switch (inst->opcode()) {
        case Opcode::Ret:
          if (inst->numOperands())
            return eval(inst->operand(0), frame);
          return RtValue{};
        case Opcode::Br:
          prevBlock = block;
          block = inst->brDest();
          goto nextBlock;
        case Opcode::CondBr: {
          bool cond = eval(inst->operand(0), frame).i != 0;
          prevBlock = block;
          block = cond ? inst->trueDest() : inst->falseDest();
          goto nextBlock;
        }
        case Opcode::Unreachable:
          diags_.error("interp: executed unreachable");
          return std::nullopt;
        default: {
          auto result = exec(inst, frame);
          if (!result)
            return std::nullopt;
          if (!inst->type()->isVoid())
            frame.values[inst] = *result;
          break;
        }
        }
      }
      diags_.error("interp: fell off the end of a block");
      return std::nullopt;
    nextBlock:;
    }
  }

private:
  RtValue eval(const lir::Value *v, Frame &frame) {
    if (const auto *ci = dyn_cast<lir::ConstantInt>(v))
      return RtValue::ofInt(ci->value());
    if (const auto *cf = dyn_cast<lir::ConstantFP>(v))
      return RtValue::ofFloat(cf->value());
    if (isa<lir::UndefValue>(v))
      return RtValue{};
    auto it = frame.values.find(v);
    if (it == frame.values.end()) {
      diags_.error("interp: use of value with no binding");
      return RtValue{};
    }
    return it->second;
  }

  std::optional<RtValue> exec(lir::Instruction *inst, Frame &frame) {
    switch (inst->opcode()) {
    case Opcode::Alloca: {
      frame.allocas.emplace_back(inst->allocatedType()->sizeInBytes(), 0);
      return RtValue::ofPtr(frame.allocas.back().data());
    }
    case Opcode::Load: {
      uint8_t *addr = eval(inst->operand(0), frame).p;
      return loadFrom(addr, inst->type());
    }
    case Opcode::Store: {
      RtValue value = eval(inst->operand(0), frame);
      uint8_t *addr = eval(inst->operand(1), frame).p;
      storeTo(addr, inst->operand(0)->type(), value);
      return RtValue{};
    }
    case Opcode::GEP: {
      uint8_t *base = eval(inst->operand(0), frame).p;
      int64_t offset =
          eval(inst->operand(1), frame).i *
          static_cast<int64_t>(inst->sourceElemType()->sizeInBytes());
      lir::Type *cur = inst->sourceElemType();
      for (unsigned i = 2; i < inst->numOperands(); ++i) {
        int64_t idx = eval(inst->operand(i), frame).i;
        if (auto *at = dyn_cast<lir::ArrayType>(cur)) {
          cur = at->element();
          offset += idx * static_cast<int64_t>(cur->sizeInBytes());
        } else if (auto *st = dyn_cast<lir::StructType>(cur)) {
          for (int64_t f = 0; f < idx; ++f)
            offset += static_cast<int64_t>(
                st->fields()[static_cast<size_t>(f)]->sizeInBytes());
          cur = st->fields()[static_cast<size_t>(idx)];
        } else {
          diags_.error("interp: gep index into non-aggregate");
          return std::nullopt;
        }
      }
      return RtValue::ofPtr(base + offset);
    }
    case Opcode::ICmp: {
      // i1 true is canonically -1 (all bits set, sign-extended), matching
      // LContext::constInt's normalization of i1 constants. Operands are
      // evaluated left-to-right in sequenced statements — as C++ call
      // arguments the order (and thus any diagnostic order) would be
      // compiler-dependent.
      RtValue lhs = eval(inst->operand(0), frame);
      RtValue rhs = eval(inst->operand(1), frame);
      return RtValue::ofInt(evalICmp(inst->predicate(), lhs, rhs,
                                     inst->operand(0)->type()->isPointer())
                                ? -1
                                : 0);
    }
    case Opcode::FCmp: {
      RtValue lhs = eval(inst->operand(0), frame);
      RtValue rhs = eval(inst->operand(1), frame);
      return RtValue::ofInt(
          evalFCmp(inst->predicate(), lhs.f, rhs.f) ? -1 : 0);
    }
    case Opcode::Select: {
      bool cond = eval(inst->operand(0), frame).i != 0;
      return eval(inst->operand(cond ? 1 : 2), frame);
    }
    case Opcode::Freeze:
      return eval(inst->operand(0), frame);
    case Opcode::FNeg:
      return RtValue::ofFloat(-eval(inst->operand(0), frame).f);
    case Opcode::Call:
      return execCall(inst, frame);
    case Opcode::Trunc:
    case Opcode::ZExt:
    case Opcode::SExt:
    case Opcode::Bitcast:
    case Opcode::PtrToInt:
    case Opcode::IntToPtr:
    case Opcode::FPTrunc:
    case Opcode::FPExt:
      return execCast(inst, frame);
    case Opcode::SIToFP:
    case Opcode::UIToFP:
      return RtValue::ofFloat(
          static_cast<double>(eval(inst->operand(0), frame).i));
    case Opcode::FPToSI:
      return RtValue::ofInt(canonicalInt(
          static_cast<uint64_t>(
              static_cast<int64_t>(eval(inst->operand(0), frame).f)),
          cast<lir::IntType>(inst->type())->width()));
    default:
      if (inst->isBinaryOp())
        return execBinop(inst, frame);
      diags_.error(strfmt("interp: cannot execute '%s'",
                          lir::opcodeName(inst->opcode())));
      return std::nullopt;
    }
  }

  RtValue loadFrom(uint8_t *addr, lir::Type *type) {
    switch (type->kind()) {
    case lir::Type::Kind::Integer: {
      unsigned bytes = static_cast<unsigned>(type->sizeInBytes());
      int64_t v = 0;
      std::memcpy(&v, addr, bytes);
      // Mask to the value's width, then sign-extend: a stored canonical
      // value occupies whole bytes, so sub-byte widths (i1 slots from
      // rec2iter's demoted compares) carry set padding bits the extension
      // must not see.
      unsigned width = cast<lir::IntType>(type)->width();
      if (width < 64) {
        uint64_t mask = (uint64_t(1) << width) - 1;
        uint64_t sign = uint64_t(1) << (width - 1);
        v = static_cast<int64_t>(
            (((static_cast<uint64_t>(v)) & mask) ^ sign) - sign);
      }
      return RtValue::ofInt(v);
    }
    case lir::Type::Kind::Float: {
      float v;
      std::memcpy(&v, addr, 4);
      return RtValue::ofFloat(v);
    }
    case lir::Type::Kind::Double: {
      double v;
      std::memcpy(&v, addr, 8);
      return RtValue::ofFloat(v);
    }
    case lir::Type::Kind::Pointer: {
      void *v;
      std::memcpy(&v, addr, 8);
      return RtValue::ofPtr(v);
    }
    default:
      diags_.error("interp: load of unsupported type");
      return RtValue{};
    }
  }

  void storeTo(uint8_t *addr, lir::Type *type, RtValue value) {
    switch (type->kind()) {
    case lir::Type::Kind::Integer:
      std::memcpy(addr, &value.i, type->sizeInBytes());
      return;
    case lir::Type::Kind::Float: {
      float v = static_cast<float>(value.f);
      std::memcpy(addr, &v, 4);
      return;
    }
    case lir::Type::Kind::Double:
      std::memcpy(addr, &value.f, 8);
      return;
    case lir::Type::Kind::Pointer:
      std::memcpy(addr, &value.p, 8);
      return;
    default:
      diags_.error("interp: store of unsupported type");
    }
  }

  std::optional<RtValue> execBinop(lir::Instruction *inst, Frame &frame) {
    RtValue a = eval(inst->operand(0), frame);
    RtValue b = eval(inst->operand(1), frame);
    bool isFP = inst->type()->isFloatingPoint();
    if (isFP) {
      double r = 0;
      switch (inst->opcode()) {
      case Opcode::FAdd: r = a.f + b.f; break;
      case Opcode::FSub: r = a.f - b.f; break;
      case Opcode::FMul: r = a.f * b.f; break;
      case Opcode::FDiv: r = a.f / b.f; break;
      default: unreachable("bad fp binop");
      }
      if (inst->type()->kind() == lir::Type::Kind::Float)
        r = static_cast<float>(r);
      return RtValue::ofFloat(r);
    }
    // Integer binops operate modulo 2^width: values stay in the canonical
    // sign-extended int64 form, wrap-around results are re-canonicalized,
    // and the unsigned ops see only the low `width` bits. sdiv/srem
    // overflow (minSigned / -1) and shift amounts >= width are UB in LLVM
    // IR; they are diagnosed like division by zero instead of silently
    // producing a host-dependent value (INT64_MIN / -1 is C++ UB too).
    unsigned width = cast<lir::IntType>(inst->type())->width();
    int64_t r = 0;
    uint64_t ua = static_cast<uint64_t>(a.i), ub = static_cast<uint64_t>(b.i);
    switch (inst->opcode()) {
    case Opcode::Add: r = canonicalInt(ua + ub, width); break;
    case Opcode::Sub: r = canonicalInt(ua - ub, width); break;
    case Opcode::Mul: r = canonicalInt(ua * ub, width); break;
    case Opcode::SDiv:
      if (b.i == 0) {
        diags_.error("interp: division by zero");
        return std::nullopt;
      }
      if (a.i == minSignedInt(width) && b.i == -1) {
        diags_.error(strfmt("interp: signed division overflow "
                            "(%lld sdiv -1 in i%u)",
                            static_cast<long long>(a.i), width));
        return std::nullopt;
      }
      r = a.i / b.i;
      break;
    case Opcode::UDiv: {
      uint64_t la = truncBits(a.i, width), lb = truncBits(b.i, width);
      if (lb == 0) {
        diags_.error("interp: division by zero");
        return std::nullopt;
      }
      r = canonicalInt(la / lb, width);
      break;
    }
    case Opcode::SRem:
      if (b.i == 0) {
        diags_.error("interp: remainder by zero");
        return std::nullopt;
      }
      if (a.i == minSignedInt(width) && b.i == -1) {
        diags_.error(strfmt("interp: signed remainder overflow "
                            "(%lld srem -1 in i%u)",
                            static_cast<long long>(a.i), width));
        return std::nullopt;
      }
      r = a.i % b.i;
      break;
    case Opcode::URem: {
      uint64_t la = truncBits(a.i, width), lb = truncBits(b.i, width);
      if (lb == 0) {
        diags_.error("interp: remainder by zero");
        return std::nullopt;
      }
      r = canonicalInt(la % lb, width);
      break;
    }
    case Opcode::And: r = a.i & b.i; break;
    case Opcode::Or: r = a.i | b.i; break;
    case Opcode::Xor: r = a.i ^ b.i; break;
    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr: {
      if (ub >= width) { // negative amounts are huge as unsigned
        diags_.error(strfmt("interp: shift amount %lld out of range for i%u",
                            static_cast<long long>(b.i), width));
        return std::nullopt;
      }
      unsigned amt = static_cast<unsigned>(ub);
      if (inst->opcode() == Opcode::Shl)
        r = canonicalInt(truncBits(a.i, width) << amt, width);
      else if (inst->opcode() == Opcode::LShr)
        r = canonicalInt(truncBits(a.i, width) >> amt, width);
      else
        r = a.i >> amt; // canonical operand: arithmetic shift is exact
      break;
    }
    default: unreachable("bad int binop");
    }
    return RtValue::ofInt(r);
  }

  std::optional<RtValue> execCast(lir::Instruction *inst, Frame &frame) {
    RtValue in = eval(inst->operand(0), frame);
    switch (inst->opcode()) {
    case Opcode::Trunc: {
      unsigned width = cast<lir::IntType>(inst->type())->width();
      int64_t v = in.i;
      if (width < 64) {
        uint64_t mask = (uint64_t(1) << width) - 1;
        uint64_t sign = uint64_t(1) << (width - 1);
        v = static_cast<int64_t>(((static_cast<uint64_t>(v) & mask) ^ sign) -
                                 sign);
      }
      return RtValue::ofInt(v);
    }
    case Opcode::ZExt: {
      unsigned srcWidth =
          cast<lir::IntType>(inst->operand(0)->type())->width();
      uint64_t mask = srcWidth >= 64 ? ~uint64_t(0)
                                     : (uint64_t(1) << srcWidth) - 1;
      return RtValue::ofInt(
          static_cast<int64_t>(static_cast<uint64_t>(in.i) & mask));
    }
    case Opcode::SExt:
      return in; // already canonically sign-extended
    case Opcode::Bitcast:
      return in;
    case Opcode::PtrToInt:
      return RtValue::ofInt(reinterpret_cast<int64_t>(in.p));
    case Opcode::IntToPtr:
      return RtValue::ofPtr(reinterpret_cast<void *>(in.i));
    case Opcode::FPTrunc:
      return RtValue::ofFloat(static_cast<float>(in.f));
    case Opcode::FPExt:
      return in;
    default:
      unreachable("bad cast");
    }
  }

  std::optional<RtValue> execCall(lir::Instruction *inst, Frame &frame) {
    lir::Function *callee = inst->calledFunction();
    if (!callee) {
      diags_.error("interp: indirect call");
      return std::nullopt;
    }
    std::vector<RtValue> args;
    for (unsigned i = 0; i < inst->numArgs(); ++i)
      args.push_back(eval(inst->arg(i), frame));
    return call(callee, std::move(args));
  }

  std::optional<RtValue> callExternal(lir::Function &fn,
                                      const std::vector<RtValue> &args) {
    const std::string &name = fn.name();
    bool isF32 = fn.returnType()->kind() == lir::Type::Kind::Float;
    auto round = [&](double v) {
      return RtValue::ofFloat(isF32 ? static_cast<float>(v) : v);
    };
    if (startsWith(name, "llvm.memcpy.")) {
      std::memcpy(args[0].p, args[1].p, static_cast<size_t>(args[2].i));
      return RtValue{};
    }
    if (startsWith(name, "llvm.fmuladd."))
      return round(args[0].f * args[1].f + args[2].f);
    if (startsWith(name, "llvm.smax."))
      return RtValue::ofInt(std::max(args[0].i, args[1].i));
    if (startsWith(name, "llvm.smin."))
      return RtValue::ofInt(std::min(args[0].i, args[1].i));
    if (startsWith(name, "llvm.sqrt.") || name == "hls_sqrt" ||
        name == "hls_sqrtf")
      return round(std::sqrt(args[0].f));
    if (startsWith(name, "llvm.exp.") || name == "hls_exp" ||
        name == "hls_expf")
      return round(std::exp(args[0].f));
    if (startsWith(name, "llvm.fabs.") || name == "hls_fabs" ||
        name == "hls_fabsf")
      return round(std::fabs(args[0].f));
    if (startsWith(name, "llvm.log.") || name == "hls_log" ||
        name == "hls_logf")
      return round(std::log(args[0].f));
    if (name == "hls_sin" || name == "hls_sinf")
      return round(std::sin(args[0].f));
    if (name == "hls_cos" || name == "hls_cosf")
      return round(std::cos(args[0].f));
    if (name == "hls_pow" || name == "hls_powf")
      return round(std::pow(args[0].f, args[1].f));
    diags_.error(strfmt("interp: unknown external function @%s",
                        name.c_str()));
    return std::nullopt;
  }

  bool evalICmp(CmpPred pred, RtValue a, RtValue b, bool isPtr) {
    int64_t ai = isPtr ? reinterpret_cast<int64_t>(a.p) : a.i;
    int64_t bi = isPtr ? reinterpret_cast<int64_t>(b.p) : b.i;
    uint64_t ua = static_cast<uint64_t>(ai), ub = static_cast<uint64_t>(bi);
    switch (pred) {
    case CmpPred::EQ: return ai == bi;
    case CmpPred::NE: return ai != bi;
    case CmpPred::SLT: return ai < bi;
    case CmpPred::SLE: return ai <= bi;
    case CmpPred::SGT: return ai > bi;
    case CmpPred::SGE: return ai >= bi;
    case CmpPred::ULT: return ua < ub;
    case CmpPred::ULE: return ua <= ub;
    case CmpPred::UGT: return ua > ub;
    case CmpPred::UGE: return ua >= ub;
    default: unreachable("fp predicate in icmp");
    }
  }

  bool evalFCmp(CmpPred pred, double a, double b) {
    switch (pred) {
    case CmpPred::OEQ: return a == b;
    case CmpPred::ONE: return a != b;
    case CmpPred::OLT: return a < b;
    case CmpPred::OLE: return a <= b;
    case CmpPred::OGT: return a > b;
    case CmpPred::OGE: return a >= b;
    default: unreachable("int predicate in fcmp");
    }
  }

  lir::Module &module_;
  uint64_t stepLimit_;
  uint64_t callDepthLimit_;
  DiagnosticEngine &diags_;
  uint64_t steps_ = 0;
  uint64_t callDepth_ = 0;
};

} // namespace

std::optional<RtValue> Interpreter::run(lir::Function *fn,
                                        std::vector<RtValue> args,
                                        DiagnosticEngine &diags) {
  if (args.size() != fn->numArgs()) {
    diags.error(strfmt("interp: @%s expects %u args, got %zu",
                       fn->name().c_str(), fn->numArgs(), args.size()));
    return std::nullopt;
  }
  Engine engine(module_, stepLimit, callDepthLimit, diags);
  auto result = engine.call(fn, std::move(args));
  steps_ = engine.steps();
  return result;
}

std::vector<RtValue>
descriptorArgs(const std::vector<void *> &buffers,
               const std::vector<std::vector<int64_t>> &shapes) {
  std::vector<RtValue> args;
  for (size_t i = 0; i < buffers.size(); ++i) {
    args.push_back(RtValue::ofPtr(buffers[i])); // allocated
    args.push_back(RtValue::ofPtr(buffers[i])); // aligned
    args.push_back(RtValue::ofInt(0));          // offset
    const std::vector<int64_t> &shape = shapes[i];
    for (int64_t d : shape)
      args.push_back(RtValue::ofInt(d));
    std::vector<int64_t> strides(shape.size(), 1);
    for (int s = static_cast<int>(shape.size()) - 2; s >= 0; --s)
      strides[s] = strides[s + 1] * shape[s + 1];
    for (int64_t s : strides)
      args.push_back(RtValue::ofInt(s));
  }
  return args;
}

std::vector<RtValue> pointerArgs(const std::vector<void *> &buffers) {
  std::vector<RtValue> args;
  for (void *buf : buffers)
    args.push_back(RtValue::ofPtr(buf));
  return args;
}

} // namespace mha::interp
