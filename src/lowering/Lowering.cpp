#include "lowering/Lowering.h"

#include "lir/IRBuilder.h"
#include "lir/Intrinsics.h"
#include "lir/LContext.h"
#include "mir/MContext.h"
#include "support/StringUtils.h"

#include <map>
#include <unordered_map>

namespace mha::lowering {

namespace {

using lir::IRBuilder;
using lir::Opcode;

/// How a mir memref value maps onto LLVM-level values.
struct LoweredMemRef {
  lir::Value *alignedPtr = nullptr;
  lir::Value *offset = nullptr;            // i64
  std::vector<lir::Value *> sizes;         // i64 each
  std::vector<lir::Value *> strides;       // i64 each
  lir::Type *elemTy = nullptr;
  std::vector<int64_t> shape;
};

class FunctionLowering {
public:
  FunctionLowering(mir::FuncOp fn, lir::Module &module,
                   const LoweringOptions &options, DiagnosticEngine &diags)
      : fn_(fn), module_(module), ctx_(module.context()), builder_(ctx_),
        options_(options), diags_(diags) {}

  bool run() {
    lir::Function *out = createSignature();
    if (!out)
      return false;
    BasicBlockRef entry = out->createBlock("entry");
    builder_.setInsertPoint(entry);
    bindArguments(out);
    if (!lowerBlock(fn_.entryBlock()))
      return false;
    return !diags_.hadError();
  }

private:
  using BasicBlockRef = lir::BasicBlock *;

  lir::Type *lowerType(mir::Type *type) {
    switch (type->kind()) {
    case mir::Type::Kind::Index:
      return ctx_.i64();
    case mir::Type::Kind::Integer:
      return ctx_.intTy(cast<mir::IntegerType>(type)->width());
    case mir::Type::Kind::Float:
      return ctx_.floatTy();
    case mir::Type::Kind::Double:
      return ctx_.doubleTy();
    default:
      diags_.error("cannot lower type " + type->str());
      return nullptr;
    }
  }

  lir::Type *ptrTy(lir::Type *pointee) {
    if (options_.useOpaquePointers)
      return ctx_.opaquePtrTy();
    return ctx_.ptrTy(pointee);
  }

  lir::Function *createSignature() {
    mir::FunctionType *fnType = fn_.type();
    std::vector<lir::Type *> params;
    // Per-argument plan so we can bind later.
    for (mir::Type *input : fnType->inputs()) {
      if (auto *mt = dyn_cast<mir::MemRefType>(input)) {
        lir::Type *elem = lowerType(mt->elementType());
        if (!elem)
          return nullptr;
        params.push_back(ptrTy(elem));           // allocated
        params.push_back(ptrTy(elem));           // aligned
        params.push_back(ctx_.i64());            // offset
        for (unsigned d = 0; d < mt->rank(); ++d)
          params.push_back(ctx_.i64());          // sizes
        for (unsigned d = 0; d < mt->rank(); ++d)
          params.push_back(ctx_.i64());          // strides
      } else {
        lir::Type *t = lowerType(input);
        if (!t)
          return nullptr;
        params.push_back(t);
      }
    }
    lir::Function *out = module_.createFunction(
        ctx_.fnTy(ctx_.voidTy(), params), fn_.name());
    fnOut_ = out;
    if (options_.emitModernAttributes) {
      out->attrs().insert("mustprogress");
      out->attrs().insert("nofree");
      out->attrs().insert("nosync");
      out->attrs().insert("willreturn");
      out->attrs().insert("memory(argmem: readwrite)");
    }
    // Function-level dataflow (task-level pipelining) directive.
    if (fn_.op->attr(mir::hlsattr::Dataflow))
      out->attrs().insert("mha.dataflow");
    // Partition directives become function attributes.
    if (const auto *partitions = dyn_cast<mir::ArrayAttr>(
            fn_.op->attr(mir::hlsattr::ArrayPartition))) {
      for (const mir::Attribute *entry : partitions->value()) {
        const auto *tuple = cast<mir::ArrayAttr>(entry);
        out->attrs().insert(strfmt(
            "%s%lld:%lld:%lld:%s", kPartitionAttrPrefix,
            static_cast<long long>(
                cast<mir::IntegerAttr>(tuple->value()[0])->value()),
            static_cast<long long>(
                cast<mir::IntegerAttr>(tuple->value()[1])->value()),
            static_cast<long long>(
                cast<mir::IntegerAttr>(tuple->value()[2])->value()),
            cast<mir::StringAttr>(tuple->value()[3])->value().c_str()));
      }
    }
    return out;
  }

  void bindArguments(lir::Function *out) {
    unsigned lirIdx = 0;
    for (unsigned i = 0; i < fn_.numArgs(); ++i) {
      mir::BlockArgument *arg = fn_.arg(i);
      if (auto *mt = dyn_cast<mir::MemRefType>(arg->type())) {
        LoweredMemRef lowered;
        lowered.elemTy = lowerType(mt->elementType());
        lowered.shape = mt->shape();
        lir::Argument *alloc = out->arg(lirIdx++);
        lir::Argument *aligned = out->arg(lirIdx++);
        lir::Argument *offset = out->arg(lirIdx++);
        alloc->setName(strfmt("arg%u.alloc", i));
        aligned->setName(strfmt("arg%u.aligned", i));
        offset->setName(strfmt("arg%u.offset", i));
        aligned->attrs().insert("noalias");
        // Mark the group start for the adaptor.
        auto md = std::make_unique<lir::MDNode>();
        md->addString(strfmt("arg%u", i));
        md->addString(mt->elementType()->str());
        md->addInt(mt->rank());
        for (int64_t d : mt->shape())
          md->addInt(d);
        alloc->metadata()[kMemRefGroupMD] = std::move(md);

        lowered.alignedPtr = aligned;
        lowered.offset = offset;
        for (unsigned d = 0; d < mt->rank(); ++d) {
          out->arg(lirIdx)->setName(strfmt("arg%u.size%u", i, d));
          lowered.sizes.push_back(out->arg(lirIdx++));
        }
        for (unsigned d = 0; d < mt->rank(); ++d) {
          out->arg(lirIdx)->setName(strfmt("arg%u.stride%u", i, d));
          lowered.strides.push_back(out->arg(lirIdx++));
        }
        memrefs_[arg] = std::move(lowered);
      } else {
        lir::Argument *scalar = out->arg(lirIdx++);
        scalar->setName(strfmt("arg%u", i));
        valueMap_[arg] = scalar;
      }
    }
  }

  lir::Value *mapped(mir::Value *v) {
    auto it = valueMap_.find(v);
    if (it != valueMap_.end())
      return it->second;
    diags_.error("use of unlowered value");
    return ctx_.undef(ctx_.i64());
  }

  bool lowerBlock(mir::Block *block) {
    for (mir::Operation *op : block->opPtrs())
      if (!lowerOp(op))
        return false;
    return true;
  }

  bool lowerOp(mir::Operation *op) {
    const std::string &name = op->name();
    namespace mops = mir::ops;

    if (name == mops::ConstantOp)
      return lowerConstant(op);
    if (name == mops::AddI || name == mops::SubI || name == mops::MulI ||
        name == mops::DivSI || name == mops::RemSI)
      return lowerIntBinop(op);
    if (name == mops::AddF || name == mops::SubF || name == mops::MulF ||
        name == mops::DivF)
      return lowerFloatBinop(op);
    if (name == mops::NegF) {
      valueMap_[op->result()] = builder_.createFNeg(mapped(op->operand(0)));
      return true;
    }
    if (name == mops::CmpI || name == mops::CmpF)
      return lowerCmp(op);
    if (name == mops::Select) {
      valueMap_[op->result()] =
          builder_.createSelect(mapped(op->operand(0)),
                                mapped(op->operand(1)),
                                mapped(op->operand(2)));
      return true;
    }
    if (name == mops::IndexCast) {
      lir::Value *in = mapped(op->operand(0));
      lir::Type *to = lowerType(op->result()->type());
      if (in->type() == to)
        valueMap_[op->result()] = in;
      else if (in->type()->sizeInBytes() < to->sizeInBytes())
        valueMap_[op->result()] = builder_.createCast(Opcode::SExt, in, to);
      else
        valueMap_[op->result()] = builder_.createCast(Opcode::Trunc, in, to);
      return true;
    }
    if (name == mops::SIToFP) {
      valueMap_[op->result()] = builder_.createCast(
          Opcode::SIToFP, mapped(op->operand(0)),
          lowerType(op->result()->type()));
      return true;
    }
    if (name == mops::FPToSI) {
      valueMap_[op->result()] = builder_.createCast(
          Opcode::FPToSI, mapped(op->operand(0)),
          lowerType(op->result()->type()));
      return true;
    }
    if (name == mops::MathSqrt || name == mops::MathExp ||
        name == mops::MathFabs)
      return lowerMath(op);
    if (name == mops::MemRefAlloc)
      return lowerAlloc(op);
    if (name == mops::MemRefLoad)
      return lowerLoad(op);
    if (name == mops::MemRefStore)
      return lowerStore(op);
    if (name == mops::MemRefCopy)
      return lowerCopy(op);
    if (name == mops::ScfFor)
      return lowerFor(op);
    if (name == mops::Return) {
      builder_.createRet();
      return true;
    }
    if (name == mops::ScfYield)
      return true; // handled by the loop lowering
    diags_.error("cannot lower op " + name);
    return false;
  }

  bool lowerConstant(mir::Operation *op) {
    const mir::Attribute *value = op->attr("value");
    lir::Type *type = lowerType(op->result()->type());
    if (!type)
      return false;
    if (const auto *i = dyn_cast<mir::IntegerAttr>(value))
      valueMap_[op->result()] =
          ctx_.constInt(cast<lir::IntType>(type), i->value());
    else if (const auto *f = dyn_cast<mir::FloatAttr>(value))
      valueMap_[op->result()] = ctx_.constFP(type, f->value());
    else {
      diags_.error("bad constant attribute");
      return false;
    }
    return true;
  }

  bool lowerIntBinop(mir::Operation *op) {
    static const std::map<std::string, Opcode> table = {
        {mir::ops::AddI, Opcode::Add},
        {mir::ops::SubI, Opcode::Sub},
        {mir::ops::MulI, Opcode::Mul},
        {mir::ops::DivSI, Opcode::SDiv},
        {mir::ops::RemSI, Opcode::SRem}};
    valueMap_[op->result()] = builder_.createBinOp(
        table.at(op->name()), mapped(op->operand(0)), mapped(op->operand(1)));
    return true;
  }

  bool lowerFloatBinop(mir::Operation *op) {
    // Fuse a*b+c -> llvm.fmuladd(a, b, c) when the mul feeds one add.
    if (options_.fuseMulAdd && op->is(mir::ops::AddF)) {
      for (unsigned i = 0; i < 2; ++i) {
        mir::Operation *def = op->operand(i)->definingOp();
        if (def && def->is(mir::ops::MulF) &&
            def->result()->uses().size() == 1 &&
            valueMap_.count(def->result())) {
          // The mul was already lowered; replace its use with fmuladd if
          // the lowered mul is an FMul instruction we can fold away.
          auto *mulInst = dyn_cast<lir::Instruction>(valueMap_[def->result()]);
          if (mulInst && mulInst->opcode() == Opcode::FMul &&
              mulInst->numUses() == 0) {
            lir::Function *fma =
                lir::getFMulAddIntrinsic(module_, mulInst->type());
            lir::Value *other = mapped(op->operand(1 - i));
            lir::Value *call = builder_.createCall(
                fma, {mulInst->operand(0), mulInst->operand(1), other});
            valueMap_[op->result()] = call;
            valueMap_.erase(def->result());
            mulInst->eraseFromParent();
            return true;
          }
        }
      }
    }
    static const std::map<std::string, Opcode> table = {
        {mir::ops::AddF, Opcode::FAdd},
        {mir::ops::SubF, Opcode::FSub},
        {mir::ops::MulF, Opcode::FMul},
        {mir::ops::DivF, Opcode::FDiv}};
    valueMap_[op->result()] = builder_.createBinOp(
        table.at(op->name()), mapped(op->operand(0)), mapped(op->operand(1)));
    return true;
  }

  bool lowerCmp(mir::Operation *op) {
    static const std::map<std::string, lir::CmpPred> table = {
        {"eq", lir::CmpPred::EQ},   {"ne", lir::CmpPred::NE},
        {"slt", lir::CmpPred::SLT}, {"sle", lir::CmpPred::SLE},
        {"sgt", lir::CmpPred::SGT}, {"sge", lir::CmpPred::SGE},
        {"ult", lir::CmpPred::ULT}, {"ule", lir::CmpPred::ULE},
        {"ugt", lir::CmpPred::UGT}, {"uge", lir::CmpPred::UGE},
        {"oeq", lir::CmpPred::OEQ}, {"one", lir::CmpPred::ONE},
        {"olt", lir::CmpPred::OLT}, {"ole", lir::CmpPred::OLE},
        {"ogt", lir::CmpPred::OGT}, {"oge", lir::CmpPred::OGE}};
    const std::string &pred =
        cast<mir::StringAttr>(op->attr("predicate"))->value();
    lir::CmpPred p = table.at(pred);
    if (op->is(mir::ops::CmpI))
      valueMap_[op->result()] = builder_.createICmp(
          p, mapped(op->operand(0)), mapped(op->operand(1)));
    else
      valueMap_[op->result()] = builder_.createFCmp(
          p, mapped(op->operand(0)), mapped(op->operand(1)));
    return true;
  }

  bool lowerMath(mir::Operation *op) {
    const char *name = op->is(mir::ops::MathSqrt)  ? "sqrt"
                       : op->is(mir::ops::MathExp) ? "exp"
                                                   : "fabs";
    lir::Value *in = mapped(op->operand(0));
    if (op->is(mir::ops::MathSqrt)) {
      lir::Function *intrinsic = lir::getSqrtIntrinsic(module_, in->type());
      valueMap_[op->result()] = builder_.createCall(intrinsic, {in});
      return true;
    }
    // exp/fabs: declare modern llvm.* intrinsics too.
    lir::Function *fn = module_.getFunction(strfmt("llvm.%s.f64", name));
    if (!fn)
      fn = module_.createFunction(
          ctx_.fnTy(in->type(), {in->type()}), strfmt("llvm.%s.f64", name));
    valueMap_[op->result()] = builder_.createCall(fn, {in});
    return true;
  }

  bool lowerAlloc(mir::Operation *op) {
    auto *mt = cast<mir::MemRefType>(op->result()->type());
    lir::Type *elem = lowerType(mt->elementType());
    if (!elem)
      return false;
    // Allocas go to the entry block, flat [N x T] form (modern lowering
    // linearizes local buffers too).
    lir::BasicBlock *entry = fnOut_->entry();
    IRBuilder entryBuilder(ctx_);
    entryBuilder.setInsertPoint(entry, entry->firstNonPhi());
    lir::Instruction *alloca = entryBuilder.createAlloca(
        ctx_.arrayTy(elem, static_cast<uint64_t>(mt->numElements())),
        "buf");
    // Record the logical shape for the adaptor's delinearization.
    auto shapeMD = std::make_unique<lir::MDNode>();
    shapeMD->addString(mt->elementType()->str());
    shapeMD->addInt(mt->rank());
    for (int64_t d : mt->shape())
      shapeMD->addInt(d);
    alloca->setMetadata("mha.shape", std::move(shapeMD));
    // Record static geometry (constants).
    LoweredMemRef lowered;
    lowered.alignedPtr = alloca;
    lowered.offset = ctx_.constI64(0);
    lowered.elemTy = elem;
    lowered.shape = mt->shape();
    std::vector<int64_t> strides = mt->strides();
    for (unsigned d = 0; d < mt->rank(); ++d) {
      lowered.sizes.push_back(ctx_.constI64(mt->shape()[d]));
      lowered.strides.push_back(ctx_.constI64(strides[d]));
    }
    memrefs_[op->result()] = std::move(lowered);
    return true;
  }

  const LoweredMemRef *memrefFor(mir::Value *v) {
    auto it = memrefs_.find(v);
    if (it == memrefs_.end()) {
      diags_.error("use of unlowered memref");
      return nullptr;
    }
    return &it->second;
  }

  /// offset + sum(idx_d * stride_d), then `gep elemTy, ptr, linear`.
  lir::Value *emitAddress(const LoweredMemRef &mr,
                          const std::vector<lir::Value *> &indices) {
    lir::Value *linear = mr.offset;
    for (size_t d = 0; d < indices.size(); ++d) {
      lir::Value *scaled =
          builder_.createMul(indices[d], mr.strides[d], "idx.scaled");
      linear = builder_.createAdd(linear, scaled, "idx.linear");
    }
    return builder_.createGEP(mr.elemTy, mr.alignedPtr, {linear}, "addr");
  }

  bool lowerLoad(mir::Operation *op) {
    const LoweredMemRef *mr = memrefFor(op->operand(0));
    if (!mr)
      return false;
    std::vector<lir::Value *> indices;
    for (unsigned i = 1; i < op->numOperands(); ++i)
      indices.push_back(mapped(op->operand(i)));
    lir::Value *addr = emitAddress(*mr, indices);
    valueMap_[op->result()] = builder_.createLoad(mr->elemTy, addr, "ld");
    return true;
  }

  bool lowerStore(mir::Operation *op) {
    const LoweredMemRef *mr = memrefFor(op->operand(1));
    if (!mr)
      return false;
    std::vector<lir::Value *> indices;
    for (unsigned i = 2; i < op->numOperands(); ++i)
      indices.push_back(mapped(op->operand(i)));
    lir::Value *addr = emitAddress(*mr, indices);
    builder_.createStore(mapped(op->operand(0)), addr);
    return true;
  }

  bool lowerCopy(mir::Operation *op) {
    const LoweredMemRef *src = memrefFor(op->operand(0));
    const LoweredMemRef *dst = memrefFor(op->operand(1));
    if (!src || !dst)
      return false;
    int64_t elements = 1;
    for (int64_t d : src->shape)
      elements *= d;
    if (options_.useMemcpyIntrinsic) {
      lir::Function *memcpyFn = lir::getMemcpyIntrinsic(module_);
      int64_t bytes = elements * static_cast<int64_t>(
                                     src->elemTy->sizeInBytes());
      builder_.createCall(memcpyFn, {dst->alignedPtr, src->alignedPtr,
                                     ctx_.constI64(bytes)});
      return true;
    }
    // Explicit element-copy loop.
    emitCopyLoop(*src, *dst, elements);
    return true;
  }

  void emitCopyLoop(const LoweredMemRef &src, const LoweredMemRef &dst,
                    int64_t elements) {
    lir::BasicBlock *pre = builder_.insertBlock();
    lir::BasicBlock *header = fnOut_->createBlock("copy.header");
    lir::BasicBlock *body = fnOut_->createBlock("copy.body");
    lir::BasicBlock *exit = fnOut_->createBlock("copy.exit");
    (void)pre;
    builder_.createBr(header);
    builder_.setInsertPoint(header);
    lir::Instruction *iv = builder_.createPhi(ctx_.i64(), "copy.iv");
    lir::Value *cmp =
        builder_.createICmp(lir::CmpPred::SLT, iv, ctx_.constI64(elements),
                            "copy.cmp");
    builder_.createCondBr(cmp, body, exit);
    builder_.setInsertPoint(body);
    lir::Value *srcAddr =
        builder_.createGEP(src.elemTy, src.alignedPtr, {iv}, "copy.src");
    lir::Value *val = builder_.createLoad(src.elemTy, srcAddr, "copy.val");
    lir::Value *dstAddr =
        builder_.createGEP(dst.elemTy, dst.alignedPtr, {iv}, "copy.dst");
    builder_.createStore(val, dstAddr);
    lir::Value *ivNext =
        builder_.createAdd(iv, ctx_.constI64(1), "copy.iv.next");
    builder_.createBr(header);
    iv->addIncoming(ctx_.constI64(0), pre);
    iv->addIncoming(ivNext, body);
    builder_.setInsertPoint(exit);
  }

  bool lowerFor(mir::Operation *op) {
    mir::ForOp loop = mir::ForOp::wrap(op);
    lir::Value *lb = mapped(op->operand(0));
    lir::Value *ub = mapped(op->operand(1));
    lir::Value *step = mapped(op->operand(2));

    lir::BasicBlock *pre = builder_.insertBlock();
    lir::BasicBlock *header = fnOut_->createBlock("for.header");
    lir::BasicBlock *body = fnOut_->createBlock("for.body");
    lir::BasicBlock *exit = fnOut_->createBlock("for.exit");

    builder_.createBr(header);
    builder_.setInsertPoint(header);
    lir::Instruction *iv = builder_.createPhi(ctx_.i64(), "iv");
    lir::Value *cmp =
        builder_.createICmp(lir::CmpPred::SLT, iv, ub, "exitcond");
    builder_.createCondBr(cmp, body, exit);

    builder_.setInsertPoint(body);
    valueMap_[loop.inductionVar()] = iv;
    if (!lowerBlock(loop.bodyBlock()))
      return false;
    // Latch: iv.next then back edge carrying the loop directives.
    lir::Value *ivNext = builder_.createAdd(iv, step, "iv.next");
    lir::Instruction *latch = builder_.createBr(header);
    attachLoopMetadata(latch, loop);

    iv->addIncoming(lb, pre);
    iv->addIncoming(ivNext, builder_.insertBlock());
    builder_.setInsertPoint(exit);
    return true;
  }

  void attachLoopMetadata(lir::Instruction *latch, mir::ForOp loop) {
    if (auto ii = loop.pipelineII())
      latch->setMetadata(kLoopPipelineMD, lir::MDNode::ofInt(*ii));
    if (auto factor = loop.unrollFactor())
      latch->setMetadata(kLoopUnrollMD, lir::MDNode::ofInt(*factor));
    if (const auto *trip = dyn_cast<mir::IntegerAttr>(
            loop.op->attr(mir::hlsattr::TripCount)))
      latch->setMetadata(kLoopTripCountMD, lir::MDNode::ofInt(trip->value()));
    if (loop.op->attr(mir::hlsattr::Dataflow))
      latch->setMetadata(kLoopDataflowMD, lir::MDNode::ofInt(1));
  }

  mir::FuncOp fn_;
  lir::Module &module_;
  lir::LContext &ctx_;
  IRBuilder builder_;
  LoweringOptions options_;
  DiagnosticEngine &diags_;
  lir::Function *fnOut_ = nullptr;
  // Pointer-keyed and lookup-only — never iterate these: iteration order
  // would follow allocation addresses and vary run to run. Anything that
  // needs an ordered walk must go through the mir function's own
  // operation order instead.
  std::unordered_map<mir::Value *, lir::Value *> valueMap_;
  std::unordered_map<mir::Value *, LoweredMemRef> memrefs_;
};

} // namespace

std::unique_ptr<lir::Module> lowerToLIR(mir::ModuleOp module,
                                        lir::LContext &ctx,
                                        const LoweringOptions &options,
                                        DiagnosticEngine &diags) {
  ctx.emitOpaquePointers = options.useOpaquePointers;
  auto out = std::make_unique<lir::Module>(ctx, "lowered");
  out->flags()["opaque-pointers"] =
      options.useOpaquePointers ? "true" : "false";
  out->flags()["ir-producer"] = "mlir-lowering";
  for (mir::FuncOp fn : module.funcs()) {
    FunctionLowering lowering(fn, *out, options, diags);
    if (!lowering.run())
      return nullptr;
  }
  return out;
}

} // namespace mha::lowering
