// Lowering.h - direct MLIR -> LLVM IR conversion (the paper's "MLIR flow").
//
// Converts a MiniMLIR module at the scf level (run createAffineToScfPass
// first) into MiniLLVM IR following modern MLIR conventions:
//   * memref arguments expand into descriptor scalar groups
//     (allocPtr, alignedPtr, offset, size0..N, stride0..N),
//   * pointers are opaque,
//   * memref accesses linearize into flat `gep elemTy, ptr, linear`,
//   * memref.copy becomes @llvm.memcpy,
//   * mulf+addf chains fuse into @llvm.fmuladd,
//   * loop directives become llvm.loop.* metadata on the loop latch.
//
// This is exactly the IR shape the Vitis-style HLS frontend rejects; the
// adaptor (src/adaptor) rewrites it into HLS-readable IR.
#pragma once

#include "lir/Function.h"
#include "mir/Ops.h"
#include "support/Diagnostics.h"

#include <memory>

namespace mha::lowering {

struct LoweringOptions {
  /// Emit opaque pointers (modern LLVM). The adaptor downgrades to typed.
  bool useOpaquePointers = true;
  /// Fuse a*b+c into @llvm.fmuladd when the multiply has a single use.
  bool fuseMulAdd = true;
  /// Lower memref.copy to @llvm.memcpy (else an explicit loop).
  bool useMemcpyIntrinsic = true;
  /// Attach modern-only function attributes (mustprogress, nofree, ...)
  /// the way current LLVM frontends do.
  bool emitModernAttributes = true;
};

/// Metadata key marking the first argument of a memref descriptor group:
/// !mha.memref !{ !"<name>", !"<elemTy>", i64 rank, i64 dim0, ... }.
inline constexpr const char *kMemRefGroupMD = "mha.memref";

/// Function attribute prefix recording MLIR-level array partition
/// directives: "mha.partition=<argIdx>:<dim>:<factor>:<kind>".
inline constexpr const char *kPartitionAttrPrefix = "mha.partition=";

/// Modern loop-metadata keys emitted on loop latch branches.
inline constexpr const char *kLoopPipelineMD = "llvm.loop.pipeline.enable";
inline constexpr const char *kLoopUnrollMD = "llvm.loop.unroll.count";
inline constexpr const char *kLoopTripCountMD = "llvm.loop.tripcount";
inline constexpr const char *kLoopDataflowMD = "llvm.loop.dataflow.enable";

/// Lowers `module` (scf level) into a fresh MiniLLVM module. Returns
/// nullptr on error.
std::unique_ptr<lir::Module> lowerToLIR(mir::ModuleOp module,
                                        lir::LContext &ctx,
                                        const LoweringOptions &options,
                                        DiagnosticEngine &diags);

} // namespace mha::lowering
