#!/bin/sh
# serve_roundtrip.sh <mha-serve> <mha-client> <socket-path>
#
# CLI smoke test: start the daemon, wait for the socket, run a client mix
# (ping, cold compile, warm compile, unknown kernel must fail), then shut
# down gracefully and require the daemon itself to exit 0.
set -e
SERVE=$1
CLIENT=$2
SOCK=$3

rm -f "$SOCK"
"$SERVE" --socket="$SOCK" --max-inflight=2 --max-queue=4 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

i=0
while [ $i -lt 100 ] && [ ! -S "$SOCK" ]; do
  sleep 0.1
  i=$((i + 1))
done
[ -S "$SOCK" ] || { echo "daemon socket never appeared"; exit 1; }

"$CLIENT" --socket="$SOCK" --ping
"$CLIENT" --socket="$SOCK" --kernel=fir --ii=1 --quiet
"$CLIENT" --socket="$SOCK" --kernel=fir --ii=1 --quiet
if "$CLIENT" --socket="$SOCK" --kernel=frobnicate --quiet; then
  echo "unknown kernel unexpectedly succeeded"
  exit 1
fi
"$CLIENT" --socket="$SOCK" --shutdown
wait "$PID"
trap - EXIT
