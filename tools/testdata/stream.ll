define void @k([16 x double]* noalias %a) {
entry:
  br label %header
header:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %cmp = icmp slt i64 %iv, 16
  br i1 %cmp, label %body, label %exit
body:
  %addr = getelementptr [16 x double], [16 x double]* %a, i64 0, i64 %iv
  %v = load double, double* %addr
  %d = fmul double %v, 2.0
  store double %d, double* %addr
  %next = add i64 %iv, 1
  br label %header, !xlx.pipeline !{i64 1}
exit:
  ret void
}
