// mha-client - command-line client for the mha-serve daemon.
//
//   mha-client --socket=<path> --kernel=<name> [--flow=adaptor|hls-cpp]
//              [--ii=N] [--unroll=N] [--partition=N] [--dataflow]
//              [--no-directives] [--estimate] [--id=<id>] [--quiet]
//   mha-client --socket=<path> --mlir-file=<path> [--top=<fn>]
//              [flow/knob flags]
//   mha-client --socket=<path> --ping | --shutdown
//
// Sends one request over the daemon's Unix-domain socket and streams
// every response event line to stdout as it arrives (NDJSON, schema
// "mha.serve.resp.v1") — pipe through jq for a readable view. Exit
// status: 0 when the request finished ok (or the admin ack arrived),
// 1 on a typed server-side error, 2 on usage or transport failure.
// --quiet prints only the result/error event instead of the full stream.
#include "serve/Client.h"

#include "support/Json.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace mha;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: mha-client --socket=<path> --kernel=<name> | --mlir-file=<p>\n"
      "                  [--top=<fn>] (with --mlir-file: the function to\n"
      "                  synthesize; required for multi-function modules)\n"
      "                  [--flow=adaptor|hls-cpp] [--ii=N] [--unroll=N]\n"
      "                  [--partition=N] [--dataflow] [--no-directives]\n"
      "                  [--estimate] [--id=<id>] [--quiet]\n"
      "       mha-client --socket=<path> --ping | --shutdown\n");
  return 2;
}

/// Strictly parses the value of `--flag=value` into [min, max]. Unlike
/// atoi, rejects non-numeric input and out-of-range values instead of
/// silently producing 0.
bool parseNumericFlag(const std::string &arg, size_t prefixLen,
                      const char *flag, int64_t min, int64_t max,
                      int64_t &out) {
  std::string value = arg.substr(prefixLen);
  std::optional<int64_t> parsed = parseInt(value);
  if (!parsed || *parsed < min || *parsed > max) {
    std::fprintf(stderr,
                 "invalid value '%s' for %s (expected integer in "
                 "[%lld, %lld])\n",
                 value.c_str(), flag, static_cast<long long>(min),
                 static_cast<long long>(max));
    return false;
  }
  out = *parsed;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string socketPath, mlirFile, id = "cli";
  bool ping = false, shutdown = false, quiet = false;
  serve::Request req;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (startsWith(arg, "--socket="))
      socketPath = arg.substr(9);
    else if (startsWith(arg, "--kernel="))
      req.kernel = arg.substr(9);
    else if (startsWith(arg, "--mlir-file="))
      mlirFile = arg.substr(12);
    else if (startsWith(arg, "--top="))
      req.top = arg.substr(6);
    else if (startsWith(arg, "--flow=")) {
      std::string flow = arg.substr(7);
      if (flow == "adaptor")
        req.flowKind = flow::FlowKind::Adaptor;
      else if (flow == "hls-cpp" || flow == "hls-c++")
        req.flowKind = flow::FlowKind::HlsCpp;
      else {
        std::fprintf(stderr, "unknown flow '%s'\n", flow.c_str());
        return usage();
      }
    } else if (startsWith(arg, "--ii=")) {
      if (!parseNumericFlag(arg, 5, "--ii", 0, 1 << 20, req.config.pipelineII))
        return usage();
    } else if (startsWith(arg, "--unroll=")) {
      if (!parseNumericFlag(arg, 9, "--unroll", 1, 1 << 20,
                            req.config.unrollFactor))
        return usage();
    } else if (startsWith(arg, "--partition=")) {
      if (!parseNumericFlag(arg, 12, "--partition", 1, 1 << 20,
                            req.config.partitionFactor))
        return usage();
    } else if (arg == "--dataflow")
      req.config.dataflow = true;
    else if (arg == "--no-directives")
      req.config.applyDirectives = false;
    else if (arg == "--estimate")
      req.estimate = true;
    else if (startsWith(arg, "--id="))
      id = arg.substr(5);
    else if (arg == "--ping")
      ping = true;
    else if (arg == "--shutdown")
      shutdown = true;
    else if (arg == "--quiet")
      quiet = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage();
    }
  }
  if (socketPath.empty()) {
    std::fprintf(stderr, "--socket is required\n");
    return usage();
  }
  int modes = (ping ? 1 : 0) + (shutdown ? 1 : 0) +
              (!req.kernel.empty() || !mlirFile.empty() ? 1 : 0);
  if (modes != 1 || (!req.kernel.empty() && !mlirFile.empty())) {
    std::fprintf(stderr,
                 "exactly one of --kernel, --mlir-file, --ping, "
                 "--shutdown is required\n");
    return usage();
  }
  if (id.empty()) {
    std::fprintf(stderr, "--id must be non-empty\n");
    return usage();
  }
  if (!req.top.empty() && mlirFile.empty()) {
    std::fprintf(stderr, "--top requires --mlir-file\n");
    return usage();
  }

  if (!mlirFile.empty()) {
    std::ifstream in(mlirFile);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", mlirFile.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    req.mlir = text.str();
  }

  serve::Client client;
  std::string error;
  if (!client.connect(socketPath, &error)) {
    std::fprintf(stderr, "mha-client: %s\n", error.c_str());
    return 2;
  }

  if (ping) {
    if (!client.ping(id)) {
      std::fprintf(stderr, "mha-client: ping failed\n");
      return 2;
    }
    std::printf("pong\n");
    return 0;
  }
  if (shutdown) {
    if (!client.shutdown(id)) {
      std::fprintf(stderr, "mha-client: shutdown request failed\n");
      return 2;
    }
    std::printf("shutdown acknowledged\n");
    return 0;
  }

  // Compile: stream every event for our id as it arrives.
  req.id = id;
  if (!client.sendLine(serve::renderCompileRequest(id, req), &error)) {
    std::fprintf(stderr, "mha-client: %s\n", error.c_str());
    return 2;
  }
  std::string line;
  while (client.readLine(line, &error)) {
    std::optional<json::Value> doc = json::parse(line);
    if (!doc) {
      std::fprintf(stderr, "mha-client: malformed response: %s\n",
                   line.c_str());
      return 2;
    }
    const json::Value *eventField = doc->get("event");
    std::string event =
        eventField && eventField->isString() ? eventField->asString() : "";
    if (!quiet || event == "result" || event == "error")
      std::printf("%s\n", line.c_str());
    if (event == "done") {
      const json::Value *status = doc->get("status");
      bool ok = status && status->isString() && status->asString() == "ok";
      return ok ? 0 : 1;
    }
  }
  std::fprintf(stderr, "mha-client: %s\n", error.c_str());
  return 2;
}
