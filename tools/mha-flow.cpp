// mha-flow - batch flow driver over the benchmark kernels.
//
//   mha-flow [--kernels=gemm,atax|all] [--flow=adaptor|hls-cpp|both]
//            [--batch] [--threads=N] [--trace=out.json]
//            [--chrome-trace=out.json] [--time-passes] [--stats]
//            [--ii=N] [--unroll=N] [--partition=N] [--dataflow]
//            [--no-directives] [--cosim] [--pass-jobs=N] [--stage-cache]
//            [--no-times]
//   mha-flow --lir=module.lir [--top=fn] [--pass-jobs=N] [--stage-cache]
//            [--no-times] [--stats] [--time-passes]
//
// Runs every (kernel, flow) pair and prints one row per job with
// accept/reject status, latency and resources. Results are always in
// submission order. By default jobs run serially (a one-worker pool);
// --batch runs them across all cores. --trace dumps the structured batch
// trace (per-stage timings, adaptor stats, worker/queue occupancy) as
// JSON. --chrome-trace dumps a Chrome trace-event file (one lane per pool
// worker, nested batch-job -> flow-stage -> pass spans) loadable in
// chrome://tracing or Perfetto; --time-passes prints the aggregated
// per-pass timing table and --stats the statistic-counter registry, both
// on stderr. --pass-jobs runs lir function passes function-at-a-time on N
// workers; --stage-cache enables incremental recompilation (stage-hash
// cache, shared across jobs in this process) and prints a one-line cache
// summary on stderr at exit; --no-times suppresses every timing in the
// output so two runs diff byte-identically (the CI determinism check).
// The shared observability flags (--metrics-out, --metrics-interval,
// --metrics-prom, --event-log, --event-log-level) are documented in
// ObservabilityCli.h. Exit status is 0 iff every job succeeded (and
// co-simulated, with --cosim) and every requested output file was
// written.
//
// --lir runs the second mode: the direct-LIR entry. The file is parsed
// as a (possibly multi-function) MiniLLVM module, call legalization
// (rec2iter, inlining, call-site privatization) runs before the usual
// adaptor pipeline, and --top names the function to synthesize (optional
// when the module defines exactly one function).
#include "ObservabilityCli.h"

#include "flow/BatchRunner.h"
#include "flow/Flow.h"
#include "flow/StageCache.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace mha;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: mha-flow [--kernels=a,b,...|all] [--flow=adaptor|hls-cpp|both]\n"
      "                [--batch] [--threads=N] [--trace=out.json]\n"
      "                [--chrome-trace=out.json] [--time-passes] [--stats]\n"
      "                [--ii=N] [--unroll=N] [--partition=N] [--dataflow]\n"
      "                [--no-directives] [--cosim] [--pass-jobs=N]\n"
      "                [--stage-cache] [--no-times]\n"
      "       mha-flow --lir=module.lir [--top=fn] [--pass-jobs=N]\n"
      "                [--stage-cache] [--no-times] [--stats]\n"
      "                [--metrics-out=m.json] [--metrics-interval=MS]\n"
      "                [--metrics-prom=m.prom] [--event-log=e.jsonl]\n"
      "                [--event-log-level=debug|info|warn|error]\n");
  return 2;
}

/// Strictly parses the value of `--flag=value` into [min, max]. Unlike
/// atoi, rejects non-numeric input and out-of-range values instead of
/// silently producing 0.
bool parseNumericFlag(const std::string &arg, size_t prefixLen,
                      const char *flag, int64_t min, int64_t max,
                      int64_t &out) {
  std::string value = arg.substr(prefixLen);
  std::optional<int64_t> parsed = parseInt(value);
  if (!parsed || *parsed < min || *parsed > max) {
    std::fprintf(stderr,
                 "invalid value '%s' for %s (expected integer in "
                 "[%lld, %lld])\n",
                 value.c_str(), flag, static_cast<long long>(min),
                 static_cast<long long>(max));
    return false;
  }
  out = *parsed;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string kernelList = "all";
  std::string flowName = "both";
  std::string tracePath;
  std::string chromeTracePath;
  bool batch = false, cosim = false, timePasses = false, statsFlag = false;
  bool stageCache = false, noTimes = false;
  std::string lirPath, topName;
  int64_t threads = 0, passJobs = 1;
  flow::KernelConfig config;
  config.pipelineII = 1;
  config.partitionFactor = 2;

  obscli::Options obsOptions;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    bool obsOk = true;
    if (obscli::parseFlag(arg, obsOptions, obsOk)) {
      if (!obsOk)
        return usage();
    } else if (startsWith(arg, "--kernels="))
      kernelList = arg.substr(10);
    else if (startsWith(arg, "--flow="))
      flowName = arg.substr(7);
    else if (arg == "--batch")
      batch = true;
    else if (startsWith(arg, "--threads=")) {
      if (!parseNumericFlag(arg, 10, "--threads", 0, 4096, threads))
        return usage();
    } else if (startsWith(arg, "--trace="))
      tracePath = arg.substr(8);
    else if (startsWith(arg, "--chrome-trace="))
      chromeTracePath = arg.substr(15);
    else if (arg == "--time-passes")
      timePasses = true;
    else if (arg == "--stats")
      statsFlag = true;
    else if (startsWith(arg, "--ii=")) {
      if (!parseNumericFlag(arg, 5, "--ii", 0, 1 << 20, config.pipelineII))
        return usage();
    } else if (startsWith(arg, "--unroll=")) {
      if (!parseNumericFlag(arg, 9, "--unroll", 1, 1 << 20,
                            config.unrollFactor))
        return usage();
    } else if (startsWith(arg, "--partition=")) {
      if (!parseNumericFlag(arg, 12, "--partition", 1, 1 << 20,
                            config.partitionFactor))
        return usage();
    } else if (arg == "--dataflow")
      config.dataflow = true;
    else if (arg == "--no-directives")
      config.applyDirectives = false;
    else if (arg == "--cosim")
      cosim = true;
    else if (startsWith(arg, "--pass-jobs=")) {
      if (!parseNumericFlag(arg, 12, "--pass-jobs", 1, 4096, passJobs))
        return usage();
    } else if (startsWith(arg, "--lir="))
      lirPath = arg.substr(6);
    else if (startsWith(arg, "--top="))
      topName = arg.substr(6);
    else if (arg == "--stage-cache")
      stageCache = true;
    else if (arg == "--no-times")
      noTimes = true;
    else if (arg == "--help" || arg == "-h")
      return usage();
    else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return usage();
    }
  }

  telemetry::Tracer &tracer = telemetry::Tracer::global();
  if (!chromeTracePath.empty()) {
    tracer.setEnabled(true);
    telemetry::Tracer::setThreadLane(1000, "main");
  }
  if (timePasses)
    tracer.setTimePasses(true);

  obscli::Session obs;
  if (!obs.begin(obsOptions))
    return usage();

  if (!lirPath.empty()) {
    std::ifstream in(lirPath);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", lirPath.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();

    flow::FlowOptions flowOptions;
    flowOptions.useStageCache = stageCache;
    flowOptions.passJobs = static_cast<int>(passJobs);
    flow::FlowResult result =
        flow::runLirAdaptorFlow(buffer.str(), topName, flowOptions);
    if (!result.ok) {
      std::fprintf(stderr, "%s: flow failed\n%s", lirPath.c_str(),
                   result.diagnostics.c_str());
      return 1;
    }
    const vhls::FunctionReport *top = result.synth.top();
    if (!top) {
      std::fprintf(stderr, "%s: no synthesis report for top '%s'\n",
                   lirPath.c_str(), result.kernelName.c_str());
      return 1;
    }
    std::printf("%-16s %-7s %12s %6s %6s %8s %8s\n", "top", "status",
                "latency", "DSP", "BRAM", "LUT", "FF");
    std::printf("%-16s %-7s %12lld %6lld %6lld %8lld %8lld\n",
                result.kernelName.c_str(), "ok",
                static_cast<long long>(top->latencyCycles),
                static_cast<long long>(top->resources.dsp),
                static_cast<long long>(top->resources.bram),
                static_cast<long long>(top->resources.lut),
                static_cast<long long>(top->resources.ff));
    if (timePasses)
      std::fprintf(stderr, "%s",
                   telemetry::Tracer::global().passTimesTable().c_str());
    if (statsFlag)
      std::fprintf(stderr, "%s", telemetry::statisticsReport().c_str());
    if (stageCache) {
      flow::StageCache::Counters cache = flow::StageCache::global().stats();
      std::fprintf(stderr, "stage-cache: %lld hits, %lld misses\n",
                   static_cast<long long>(cache.hits()),
                   static_cast<long long>(cache.misses()));
    }
    if (!obs.finish())
      return 1;
    return 0;
  }

  std::vector<flow::FlowKind> kinds;
  if (flowName == "adaptor")
    kinds = {flow::FlowKind::Adaptor};
  else if (flowName == "hls-cpp" || flowName == "hls-c++")
    kinds = {flow::FlowKind::HlsCpp};
  else if (flowName == "both")
    kinds = {flow::FlowKind::HlsCpp, flow::FlowKind::Adaptor};
  else {
    std::fprintf(stderr, "unknown flow '%s'\n", flowName.c_str());
    return usage();
  }

  std::vector<const flow::KernelSpec *> kernels;
  if (kernelList == "all") {
    for (const flow::KernelSpec &spec : flow::allKernels())
      kernels.push_back(&spec);
  } else {
    for (const std::string &name : splitString(kernelList, ',')) {
      const flow::KernelSpec *spec = flow::findKernel(name);
      if (!spec) {
        std::fprintf(stderr, "unknown kernel '%s'\n%s\n", name.c_str(),
                     flow::availableKernelsHint().c_str());
        return 2;
      }
      kernels.push_back(spec);
    }
  }

  flow::FlowOptions flowOptions;
  flowOptions.useStageCache = stageCache;
  flowOptions.passJobs = static_cast<int>(passJobs);

  std::vector<flow::BatchJob> jobs;
  for (const flow::KernelSpec *spec : kernels)
    for (flow::FlowKind kind : kinds)
      jobs.push_back({spec, config, kind, flowOptions, ""});

  flow::JsonFileTraceSink traceSink(tracePath);
  flow::BatchOptions options;
  options.numThreads = batch ? static_cast<unsigned>(threads) : 1;
  if (!tracePath.empty())
    options.sink = &traceSink;
  elog::info("flow", "batch starting",
             {{"jobs", strfmt("%zu", jobs.size())},
              {"threads", strfmt("%u", options.numThreads)}});
  flow::BatchOutcome outcome = flow::runBatch(jobs, options);
  elog::info("flow", "batch finished",
             {{"jobs", strfmt("%zu", outcome.trace.jobCount)},
              {"failures", strfmt("%zu", outcome.trace.failures)}});

  if (noTimes)
    std::printf("%-10s %-8s %-7s %12s %6s %6s %8s %8s\n", "kernel",
                "flow", "status", "latency", "DSP", "BRAM", "LUT", "FF");
  else
    std::printf("%-10s %-8s %-7s %12s %6s %6s %8s %8s %9s\n", "kernel",
                "flow", "status", "latency", "DSP", "BRAM", "LUT", "FF",
                "wall-ms");
  int failures = 0;
  for (size_t i = 0; i < jobs.size(); ++i) {
    const flow::FlowResult &result = outcome.results[i];
    const flow::JobTrace &trace = outcome.trace.jobs[i];
    if (!result.ok) {
      std::printf("%-10s %-8s %-7s %s\n", trace.kernel.c_str(),
                  flow::flowKindName(trace.kind), "FAIL",
                  trace.error.c_str());
      ++failures;
      continue;
    }
    std::string status = "ok";
    if (cosim) {
      std::string error;
      if (!flow::cosimAgainstReference(result, *jobs[i].spec, error)) {
        status = "MISMATCH";
        ++failures;
      } else {
        status = "ok+cosim";
      }
    }
    const vhls::FunctionReport *top = result.synth.top();
    if (noTimes)
      std::printf("%-10s %-8s %-7s %12lld %6lld %6lld %8lld %8lld\n",
                  trace.kernel.c_str(), flow::flowKindName(trace.kind),
                  status.c_str(), static_cast<long long>(top->latencyCycles),
                  static_cast<long long>(top->resources.dsp),
                  static_cast<long long>(top->resources.bram),
                  static_cast<long long>(top->resources.lut),
                  static_cast<long long>(top->resources.ff));
    else
      std::printf("%-10s %-8s %-7s %12lld %6lld %6lld %8lld %8lld %9.1f\n",
                  trace.kernel.c_str(), flow::flowKindName(trace.kind),
                  status.c_str(), static_cast<long long>(top->latencyCycles),
                  static_cast<long long>(top->resources.dsp),
                  static_cast<long long>(top->resources.bram),
                  static_cast<long long>(top->resources.lut),
                  static_cast<long long>(top->resources.ff), trace.wallMs);
  }
  if (noTimes)
    // No thread count either: serial and parallel runs must diff clean.
    std::printf("\n%zu jobs: %zu failed\n", outcome.trace.jobCount,
                outcome.trace.failures);
  else
    std::printf("\n%zu jobs on %u threads: %.0f ms wall, %.0f ms serial "
                "(%.2fx), %zu failed\n",
                outcome.trace.jobCount, outcome.trace.threads,
                outcome.trace.wallMs, outcome.trace.serialMs,
                outcome.trace.wallMs > 0
                    ? outcome.trace.serialMs / outcome.trace.wallMs
                    : 0.0,
                outcome.trace.failures);
  if (timePasses)
    std::fprintf(stderr, "%s", tracer.passTimesTable().c_str());
  if (statsFlag)
    std::fprintf(stderr, "%s", telemetry::statisticsReport().c_str());
  if (stageCache) {
    // One-line cache summary on stderr — stdout must stay byte-identical
    // between cached and uncached runs (the CI determinism diff).
    flow::StageCache::Counters cache = flow::StageCache::global().stats();
    std::fprintf(stderr,
                 "stage-cache: %lld hits, %lld misses (%.1f%% hit rate), "
                 "%lld bytes resident\n",
                 static_cast<long long>(cache.hits()),
                 static_cast<long long>(cache.misses()),
                 100.0 * cache.hitRate(),
                 static_cast<long long>(cache.bytes()));
  }
  if (!tracePath.empty()) {
    if (!traceSink.ok()) {
      std::fprintf(stderr, "trace: %s\n", traceSink.error().c_str());
      return 1;
    }
    std::fprintf(stderr, "trace written to %s\n", tracePath.c_str());
  }
  if (!chromeTracePath.empty()) {
    std::string error;
    if (!tracer.writeChromeTrace(chromeTracePath, &error)) {
      std::fprintf(stderr, "chrome trace: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "chrome trace written to %s\n",
                 chromeTracePath.c_str());
  }
  if (!obs.finish())
    return 1;
  return failures == 0 ? 0 : 1;
}
