// ObservabilityCli.h - shared observability flags for the mha-* tools.
//
// Every tool accepts the same five flags:
//
//   --metrics-out=<path>       JSON metrics snapshot (schema mha.metrics.v1)
//                              written at exit, or periodically with
//                              --metrics-interval
//   --metrics-interval=<ms>    rewrite --metrics-out every <ms> from a
//                              background exporter thread (requires
//                              --metrics-out)
//   --metrics-prom=<path>      Prometheus text-format dump written at exit
//   --event-log=<path>         structured JSONL event log (one JSON object
//                              per line, span-correlated)
//   --event-log-level=<level>  debug|info|warn|error (default info)
//
// parseFlag() recognizes and strictly validates the flags (malformed
// values are reported on stderr and refused, matching the tools'
// parseNumericFlag convention); Session drives the lifecycle: begin()
// before the work (enables metric recording, opens the log, starts the
// exporter), finish() after it (final snapshot writes; failures make the
// tool exit non-zero). With none of the flags given, both are no-ops and
// the tool's output is byte-identical to a build without this layer.
#pragma once

#include "support/EventLog.h"
#include "support/Metrics.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <optional>
#include <string>

namespace mha::obscli {

struct Options {
  std::string metricsJsonPath;
  std::string metricsPromPath;
  int64_t intervalMs = 0; // 0 = snapshot at exit only
  std::string eventLogPath;
  elog::Level eventLogLevel = elog::Level::Info;

  bool metricsRequested() const {
    return !metricsJsonPath.empty() || !metricsPromPath.empty();
  }
};

/// Returns true when `arg` is one of the observability flags (consumed
/// into `opts`). A recognized flag with a malformed value prints a
/// diagnostic and sets `ok = false` — the caller returns its usage error.
inline bool parseFlag(const std::string &arg, Options &opts, bool &ok) {
  ok = true;
  if (startsWith(arg, "--metrics-out=")) {
    opts.metricsJsonPath = arg.substr(14);
    if (opts.metricsJsonPath.empty()) {
      std::fprintf(stderr, "--metrics-out requires a path\n");
      ok = false;
    }
    return true;
  }
  if (startsWith(arg, "--metrics-prom=")) {
    opts.metricsPromPath = arg.substr(15);
    if (opts.metricsPromPath.empty()) {
      std::fprintf(stderr, "--metrics-prom requires a path\n");
      ok = false;
    }
    return true;
  }
  if (startsWith(arg, "--metrics-interval=")) {
    std::string value = arg.substr(19);
    std::optional<int64_t> parsed = parseInt(value);
    if (!parsed || *parsed < 1 || *parsed > 86400000) {
      std::fprintf(stderr,
                   "invalid value '%s' for --metrics-interval (expected "
                   "integer in [1, 86400000])\n",
                   value.c_str());
      ok = false;
      return true;
    }
    opts.intervalMs = *parsed;
    return true;
  }
  if (startsWith(arg, "--event-log=")) {
    opts.eventLogPath = arg.substr(12);
    if (opts.eventLogPath.empty()) {
      std::fprintf(stderr, "--event-log requires a path\n");
      ok = false;
    }
    return true;
  }
  if (startsWith(arg, "--event-log-level=")) {
    std::string value = arg.substr(18);
    std::optional<elog::Level> level = elog::parseLevel(value);
    if (!level) {
      std::fprintf(stderr,
                   "invalid value '%s' for --event-log-level (expected "
                   "debug|info|warn|error)\n",
                   value.c_str());
      ok = false;
      return true;
    }
    opts.eventLogLevel = *level;
    return true;
  }
  return false;
}

/// Observability lifecycle around a tool run. begin() before the work,
/// finish() after; the destructor stops a still-running exporter so early
/// returns cannot leak the thread.
class Session {
public:
  Session() = default;
  ~Session() { exporter_.stop(); }

  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  /// Enables metric recording (when a metrics output was requested),
  /// opens the event log and starts the periodic exporter. Returns false
  /// with a diagnostic on stderr for inconsistent flags or an unopenable
  /// log path.
  bool begin(const Options &opts) {
    opts_ = opts;
    if (opts_.intervalMs > 0 && opts_.metricsJsonPath.empty()) {
      std::fprintf(stderr, "--metrics-interval requires --metrics-out\n");
      return false;
    }
    if (opts_.metricsRequested())
      metrics::setEnabled(true);
    std::string error;
    if (!opts_.eventLogPath.empty() &&
        !elog::EventLog::global().open(opts_.eventLogPath,
                                       opts_.eventLogLevel, &error)) {
      std::fprintf(stderr, "event log: %s\n", error.c_str());
      return false;
    }
    if (opts_.intervalMs > 0 &&
        !exporter_.start(opts_.metricsJsonPath, opts_.intervalMs, &error)) {
      std::fprintf(stderr, "metrics exporter: %s\n", error.c_str());
      elog::EventLog::global().close();
      return false;
    }
    return true;
  }

  /// Writes the final snapshots and closes the event log. Returns false
  /// (with diagnostics on stderr) when any write failed — the tool should
  /// exit non-zero so CI never uploads a truncated snapshot silently.
  bool finish() {
    bool ok = true;
    std::string error;
    if (exporter_.running()) {
      if (!exporter_.stop(&error)) {
        std::fprintf(stderr, "metrics: %s\n", error.c_str());
        ok = false;
      }
    } else if (!opts_.metricsJsonPath.empty() &&
               !metrics::Registry::global().writeJsonFile(
                   opts_.metricsJsonPath, &error)) {
      std::fprintf(stderr, "metrics: %s\n", error.c_str());
      ok = false;
    }
    if (!opts_.metricsPromPath.empty() &&
        !metrics::Registry::global().writePrometheusFile(
            opts_.metricsPromPath, &error)) {
      std::fprintf(stderr, "metrics: %s\n", error.c_str());
      ok = false;
    }
    elog::EventLog::global().close();
    return ok;
  }

private:
  Options opts_;
  metrics::Exporter exporter_;
};

} // namespace mha::obscli
