// mha-serve - persistent compile-as-a-service daemon.
//
//   mha-serve --socket=<path> [--max-inflight=N] [--max-queue=N]
//             [--drain-ms=MS] [--stage-cache-limit=BYTES]
//             [--no-stage-cache] [--pass-jobs=N]
//
// Listens on a Unix-domain socket speaking newline-delimited JSON
// (request schema "mha.serve.req.v1", response schema
// "mha.serve.resp.v1"; see src/serve/Protocol.h). Compile requests name a
// built-in kernel or carry inline MLIR text, pick a flow (adaptor or
// hls-cpp) and the directive knobs, and stream back per-stage progress
// followed by the result. Results are keyed into the process-global
// StageCache, so repeated requests are whole-pipeline warm hits;
// --stage-cache-limit bounds the cache's resident bytes with LRU
// eviction. Admission is bounded (--max-inflight running plus --max-queue
// waiting); past that, requests are rejected immediately with a typed
// `busy` error.
//
// Shutdown is graceful on SIGINT/SIGTERM or a `shutdown` request: stop
// accepting, drain outstanding work within --drain-ms (then cancel it),
// join every thread, flush metrics/event-log outputs, exit 0. The shared
// observability flags (--metrics-out, --metrics-interval, --metrics-prom,
// --event-log, --event-log-level) are documented in ObservabilityCli.h —
// a long-running daemon typically wants --metrics-interval so the
// snapshot stays fresh.
#include "ObservabilityCli.h"

#include "serve/Server.h"
#include "support/StringUtils.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>

using namespace mha;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: mha-serve --socket=<path> [--max-inflight=N] [--max-queue=N]\n"
      "                 [--drain-ms=MS] [--stage-cache-limit=BYTES]\n"
      "                 [--no-stage-cache] [--pass-jobs=N]\n"
      "                 [--metrics-out=m.json] [--metrics-interval=MS]\n"
      "                 [--metrics-prom=m.prom] [--event-log=e.jsonl]\n"
      "                 [--event-log-level=debug|info|warn|error]\n");
  return 2;
}

/// Strictly parses the value of `--flag=value` into [min, max]. Unlike
/// atoi, rejects non-numeric input and out-of-range values instead of
/// silently producing 0.
bool parseNumericFlag(const std::string &arg, size_t prefixLen,
                      const char *flag, int64_t min, int64_t max,
                      int64_t &out) {
  std::string value = arg.substr(prefixLen);
  std::optional<int64_t> parsed = parseInt(value);
  if (!parsed || *parsed < min || *parsed > max) {
    std::fprintf(stderr,
                 "invalid value '%s' for %s (expected integer in "
                 "[%lld, %lld])\n",
                 value.c_str(), flag, static_cast<long long>(min),
                 static_cast<long long>(max));
    return false;
  }
  out = *parsed;
  return true;
}

serve::Server *signalTarget = nullptr;

void onSignal(int) {
  // Async-signal-safe: one write to the server's self-pipe.
  if (signalTarget)
    signalTarget->notifyFromSignal();
}

} // namespace

int main(int argc, char **argv) {
  serve::ServerOptions options;
  int64_t maxInflight = 2, maxQueue = 8, drainMs = 10000;
  int64_t stageCacheLimit = 0, passJobs = 1;

  obscli::Options obsOptions;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    bool obsOk = true;
    if (obscli::parseFlag(arg, obsOptions, obsOk)) {
      if (!obsOk)
        return usage();
    } else if (startsWith(arg, "--socket="))
      options.socketPath = arg.substr(9);
    else if (startsWith(arg, "--max-inflight=")) {
      if (!parseNumericFlag(arg, 15, "--max-inflight", 1, 4096, maxInflight))
        return usage();
    } else if (startsWith(arg, "--max-queue=")) {
      if (!parseNumericFlag(arg, 12, "--max-queue", 0, 1 << 20, maxQueue))
        return usage();
    } else if (startsWith(arg, "--drain-ms=")) {
      if (!parseNumericFlag(arg, 11, "--drain-ms", 0, 86400000, drainMs))
        return usage();
    } else if (startsWith(arg, "--stage-cache-limit=")) {
      if (!parseNumericFlag(arg, 20, "--stage-cache-limit", 0, INT64_MAX,
                            stageCacheLimit))
        return usage();
    } else if (arg == "--no-stage-cache")
      options.session.useStageCache = false;
    else if (startsWith(arg, "--pass-jobs=")) {
      if (!parseNumericFlag(arg, 12, "--pass-jobs", 1, 4096, passJobs))
        return usage();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage();
    }
  }
  if (options.socketPath.empty()) {
    std::fprintf(stderr, "--socket is required\n");
    return usage();
  }
  options.maxInflight = static_cast<int>(maxInflight);
  options.maxQueue = static_cast<int>(maxQueue);
  options.drainMs = drainMs;
  options.stageCacheLimitBytes = stageCacheLimit;
  options.session.passJobs = static_cast<int>(passJobs);

  obscli::Session obs;
  if (!obs.begin(obsOptions))
    return usage();

  serve::Server server(options);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "mha-serve: %s\n", error.c_str());
    obs.finish();
    return 1;
  }
  std::fprintf(stderr, "mha-serve: listening on %s\n",
               options.socketPath.c_str());

  signalTarget = &server;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  server.wait();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  signalTarget = nullptr;

  serve::Server::Stats stats = server.stats();
  std::fprintf(stderr,
               "mha-serve: stopped (connections=%lld admitted=%lld ok=%lld "
               "error=%lld cancelled=%lld busy=%lld)\n",
               static_cast<long long>(stats.connections),
               static_cast<long long>(stats.admitted),
               static_cast<long long>(stats.completedOk),
               static_cast<long long>(stats.completedError),
               static_cast<long long>(stats.cancelled),
               static_cast<long long>(stats.rejectedBusy));
  return obs.finish() ? 0 : 1;
}
