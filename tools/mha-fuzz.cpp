// mha-fuzz - differential fuzzing over the compilation pipeline.
//
//   mha-fuzz [--budget=N] [--seed=N] [--jobs=N]
//            [--mode=kernel|ir|calls|both|all]
//            [--json=out.json] [--artifacts=DIR] [--no-reduce]
//            [--reduce=repro.json] [--plant] [--chrome-trace=out.json]
//            [--stats]
//
// Generates `budget` seeded programs per enabled mode and differentially
// checks each one: kernel-mode programs run through every pipeline stage
// (HLS-C++ round-trip, lowering, adaptor, virtual HLS backend) and every
// stage's interpreted outputs must match the host reference; IR-mode
// programs exercise the LIR parser, interpreter (including trap/UB
// agreement) and the O2-lite transform pipeline; calls-mode programs
// build multi-function modules (helper DAGs, bounded self-recursion,
// local arrays) and must survive the call-legalization passes and the
// virtual HLS backend unchanged. Failures are reduced
// bugpoint-style and reported with an embedded reproducer document;
// --reduce=FILE replays such a document on its own. --plant injects a
// deliberate miscompile after the adaptor stage (a+b -> a+a on the first
// fadd) to prove the oracle and reducer actually fire. Exit status 0 iff
// the campaign is clean.
#include "ObservabilityCli.h"

#include "fuzz/Fuzz.h"
#include "lir/Function.h"
#include "lir/Instruction.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace mha;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: mha-fuzz [--budget=N] [--seed=N] [--jobs=N]\n"
      "                [--mode=kernel|ir|calls|both|all] [--json=out.json]\n"
      "                [--artifacts=DIR] [--no-reduce] [--reduce=repro.json]\n"
      "                [--plant] [--chrome-trace=out.json] [--stats]\n"
      "                [--stage-cache]\n"
      "                [--metrics-out=m.json] [--metrics-interval=MS]\n"
      "                [--metrics-prom=m.prom] [--event-log=e.jsonl]\n"
      "                [--event-log-level=debug|info|warn|error]\n");
  return 2;
}

bool parseNumericFlag(const std::string &arg, size_t prefixLen,
                      const char *flag, int64_t min, int64_t max,
                      int64_t &out) {
  std::string value = arg.substr(prefixLen);
  std::optional<int64_t> parsed = parseInt(value);
  if (!parsed || *parsed < min || *parsed > max) {
    std::fprintf(stderr,
                 "invalid value '%s' for %s (expected integer in "
                 "[%lld, %lld])\n",
                 value.c_str(), flag, static_cast<long long>(min),
                 static_cast<long long>(max));
    return false;
  }
  out = *parsed;
  return true;
}

/// The deliberate miscompile for --plant: rewrite the first fadd's second
/// operand to its first (a+b -> a+a), after the adaptor pipeline ran.
void plantFAddMiscompile(lir::Module &module) {
  for (lir::Function *fn : module.functions())
    for (auto &block : *fn)
      for (auto &inst : *block)
        if (inst->opcode() == lir::Opcode::FAdd) {
          inst->setOperand(1, inst->operand(0));
          return;
        }
}

void printFailure(const fuzz::FuzzFailure &f) {
  std::printf("FAIL %-6s seed=%llu kind=%s stage=%s\n", f.mode.c_str(),
              static_cast<unsigned long long>(f.programSeed),
              fuzz::failureKindName(f.result.kind), f.result.stage.c_str());
  std::printf("     %s\n", f.result.detail.c_str());
  std::printf("     reduced %zu -> %zu nodes in %d attempts\n",
              f.originalSize, f.reducedSize, f.reduceAttempts);
  if (!f.artifactJsonPath.empty())
    std::printf("     reproducer: %s\n", f.artifactJsonPath.c_str());
}

} // namespace

int main(int argc, char **argv) {
  fuzz::FuzzOptions options;
  std::string jsonPath, chromeTracePath, replayPath;
  bool statsFlag = false, plant = false;
  int64_t budget = 100, seed = 1, jobs = 1;

  obscli::Options obsOptions;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    bool obsOk = true;
    if (obscli::parseFlag(arg, obsOptions, obsOk)) {
      if (!obsOk)
        return usage();
    } else if (startsWith(arg, "--budget=")) {
      if (!parseNumericFlag(arg, 9, "--budget", 1, 1 << 20, budget))
        return usage();
    } else if (startsWith(arg, "--seed=")) {
      if (!parseNumericFlag(arg, 7, "--seed", 0, INT64_MAX, seed))
        return usage();
    } else if (startsWith(arg, "--jobs=")) {
      if (!parseNumericFlag(arg, 7, "--jobs", 1, 4096, jobs))
        return usage();
    } else if (startsWith(arg, "--mode=")) {
      std::string mode = arg.substr(7);
      if (mode == "kernel")
        options.mode = fuzz::FuzzOptions::Mode::Kernel;
      else if (mode == "ir")
        options.mode = fuzz::FuzzOptions::Mode::Ir;
      else if (mode == "calls")
        options.mode = fuzz::FuzzOptions::Mode::Calls;
      else if (mode == "both")
        options.mode = fuzz::FuzzOptions::Mode::Both;
      else if (mode == "all")
        options.mode = fuzz::FuzzOptions::Mode::All;
      else {
        std::fprintf(stderr,
                     "unknown mode '%s' (expected kernel, ir, calls, both "
                     "or all)\n",
                     mode.c_str());
        return usage();
      }
    } else if (startsWith(arg, "--json="))
      jsonPath = arg.substr(7);
    else if (startsWith(arg, "--artifacts="))
      options.artifactsDir = arg.substr(12);
    else if (arg == "--no-reduce")
      options.reduce = false;
    else if (startsWith(arg, "--reduce="))
      replayPath = arg.substr(9);
    else if (arg == "--stage-cache")
      options.oracle.useStageCache = true;
    else if (arg == "--plant")
      plant = true;
    else if (startsWith(arg, "--chrome-trace="))
      chromeTracePath = arg.substr(15);
    else if (arg == "--stats")
      statsFlag = true;
    else if (arg == "--help" || arg == "-h")
      return usage();
    else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return usage();
    }
  }

  options.budget = static_cast<int>(budget);
  options.seed = static_cast<uint64_t>(seed);
  options.jobs = static_cast<unsigned>(jobs);
  if (plant)
    options.oracle.mutateAdaptorModule = plantFAddMiscompile;

  telemetry::Tracer &tracer = telemetry::Tracer::global();
  if (!chromeTracePath.empty()) {
    tracer.setEnabled(true);
    telemetry::Tracer::setThreadLane(1000, "main");
  }

  obscli::Session obs;
  if (!obs.begin(obsOptions))
    return usage();

  int status = 0;
  std::string reportJson;

  if (!replayPath.empty()) {
    std::ifstream in(replayPath, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", replayPath.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    bool noLongerFails = false;
    std::optional<fuzz::FuzzFailure> failure =
        fuzz::replayRepro(text.str(), options, error, &noLongerFails);
    if (!failure) {
      if (noLongerFails) {
        std::printf("replay: %s\n", error.c_str());
        return 0;
      }
      std::fprintf(stderr, "replay: %s\n", error.c_str());
      return 1;
    }
    printFailure(*failure);
    if (!failure->reducedLir.empty())
      std::printf("--- reduced LIR ---\n%s", failure->reducedLir.c_str());
    reportJson = failure->reproJson(options.gen);
    status = 1; // the reproducer still fails
  } else {
    fuzz::FuzzReport report = fuzz::runFuzz(options);
    for (const fuzz::FuzzFailure &f : report.failures)
      printFailure(f);
    std::printf("fuzzed %llu kernel + %llu ir + %llu calls programs "
                "(seed %llu, %u jobs) in %.1f ms: %zu failure%s\n",
                static_cast<unsigned long long>(report.kernelPrograms),
                static_cast<unsigned long long>(report.irPrograms),
                static_cast<unsigned long long>(report.callsPrograms),
                static_cast<unsigned long long>(report.seed), report.jobs,
                report.elapsedMs, report.failures.size(),
                report.failures.size() == 1 ? "" : "s");
    reportJson = report.json();
    status = report.clean() ? 0 : 1;
  }

  if (!jsonPath.empty()) {
    std::string error;
    if (!json::validate(reportJson, &error)) {
      std::fprintf(stderr, "json: internal error, malformed output: %s\n",
                   error.c_str());
      return 1;
    }
    std::ofstream out(jsonPath, std::ios::binary);
    out << reportJson;
    out.close();
    if (!out) {
      std::fprintf(stderr, "json: cannot write %s\n", jsonPath.c_str());
      return 1;
    }
    std::fprintf(stderr, "fuzz report written to %s\n", jsonPath.c_str());
  }
  if (!chromeTracePath.empty()) {
    std::string error;
    if (!tracer.writeChromeTrace(chromeTracePath, &error)) {
      std::fprintf(stderr, "chrome trace: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "chrome trace written to %s\n",
                 chromeTracePath.c_str());
  }
  if (statsFlag)
    std::fprintf(stderr, "%s", telemetry::statisticsReport().c_str());
  if (!obs.finish())
    return 1;
  return status;
}
