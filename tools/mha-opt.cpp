// mha-opt - opt-style driver over MiniLLVM textual IR.
//
//   mha-opt [file.ll] --passes=mem2reg,simplifycfg,adaptor --verify
//   mha-opt file.ll --passes=hls-compat-check
//   mha-opt file.ll --synthesize [--top=name] [--json]
//   mha-opt file.ll --passes=adaptor --time-passes --stats
//          --chrome-trace=out.json --print-ir-after=dce
//   mha-opt file.ll --passes=adaptor --pass-jobs=4
//
// Reads from stdin when no file is given. Pass names:
//   mem2reg simplifycfg instcombine cse dce licm
//   descriptor-elim intrinsic-legalize gep-canonicalize ptr-recovery
//   metadata-convert attr-scrub adaptor (= the full pipeline)
//   hls-compat-check (report only)
//
// Telemetry (all output on stderr / to files, never stdout):
//   --time-passes            aggregated per-pass timing table
//   --stats                  per-pass statistics + the global counter
//                            registry (LLVM-style Statistic dump)
//   --chrome-trace=FILE      Chrome trace-event JSON of every pass span
//   --print-ir-before[-all]/--print-ir-after[-all]  IR around passes
#include "ObservabilityCli.h"

#include "adaptor/Adaptor.h"
#include "lir/HlsCompat.h"
#include "lir/LContext.h"
#include "lir/Parser.h"
#include "lir/Printer.h"
#include "lir/Verifier.h"
#include "lir/transforms/Transforms.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "vhls/Vhls.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace mha;

namespace {

std::unique_ptr<lir::ModulePass> makePass(const std::string &name) {
  if (name == "mem2reg")
    return lir::createMem2RegPass();
  if (name == "simplifycfg")
    return lir::createSimplifyCFGPass();
  if (name == "instcombine")
    return lir::createInstCombinePass();
  if (name == "cse")
    return lir::createCSEPass();
  if (name == "dce")
    return lir::createDCEPass();
  if (name == "licm")
    return lir::createLICMPass();
  if (name == "descriptor-elim")
    return adaptor::createDescriptorEliminationPass();
  if (name == "intrinsic-legalize")
    return adaptor::createIntrinsicLegalizePass();
  if (name == "gep-canonicalize")
    return adaptor::createGepCanonicalizePass();
  if (name == "ptr-recovery")
    return adaptor::createPointerTypeRecoveryPass();
  if (name == "metadata-convert")
    return adaptor::createMetadataConvertPass();
  if (name == "attr-scrub")
    return adaptor::createAttributeScrubPass();
  if (name == "hls-compat-check")
    return adaptor::createHlsCompatVerifyPass();
  return nullptr;
}

int usage() {
  std::fprintf(stderr,
               "usage: mha-opt [file.ll] [--passes=p1,p2,...] [--verify] "
               "[--stats]\n"
               "               [--time-passes] [--chrome-trace=out.json]\n"
               "               [--print-ir-before=p|--print-ir-before-all]\n"
               "               [--print-ir-after=p|--print-ir-after-all]\n"
               "               [--synthesize [--top=name] [--json] "
               "[--strict]]\n"
               "               [--pass-jobs=N]\n"
               "               [--metrics-out=m.json] "
               "[--metrics-interval=MS]\n"
               "               [--metrics-prom=m.prom] "
               "[--event-log=e.jsonl]\n"
               "               [--event-log-level=debug|info|warn|error]\n");
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  std::string file;
  std::string passList;
  bool verify = false, stats = false, synthesizeIt = false, json = false;
  bool strict = false, timePasses = false;
  long passJobs = 1;
  std::string top;
  std::string chromeTracePath;
  lir::PrintIRInstrumentation::Options printIR;
  obscli::Options obsOptions;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    bool obsOk = true;
    if (obscli::parseFlag(arg, obsOptions, obsOk)) {
      if (!obsOk)
        return usage();
    } else if (startsWith(arg, "--passes="))
      passList = arg.substr(9);
    else if (arg == "--verify")
      verify = true;
    else if (arg == "--stats")
      stats = true;
    else if (arg == "--time-passes")
      timePasses = true;
    else if (startsWith(arg, "--chrome-trace="))
      chromeTracePath = arg.substr(15);
    else if (arg == "--print-ir-before-all")
      printIR.beforeAll = true;
    else if (arg == "--print-ir-after-all")
      printIR.afterAll = true;
    else if (startsWith(arg, "--print-ir-before="))
      printIR.beforePasses.push_back(arg.substr(18));
    else if (startsWith(arg, "--print-ir-after="))
      printIR.afterPasses.push_back(arg.substr(17));
    else if (arg == "--synthesize")
      synthesizeIt = true;
    else if (arg == "--json")
      json = true;
    else if (arg == "--strict")
      strict = true;
    else if (startsWith(arg, "--pass-jobs=")) {
      std::optional<int64_t> parsed = parseInt(arg.substr(12));
      if (!parsed || *parsed < 1 || *parsed > 4096) {
        std::fprintf(stderr, "invalid value for --pass-jobs\n");
        return usage();
      }
      passJobs = static_cast<long>(*parsed);
    }
    else if (startsWith(arg, "--top="))
      top = arg.substr(6);
    else if (arg == "--help" || arg == "-h")
      return usage();
    else if (arg[0] != '-')
      file = arg;
    else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return usage();
    }
  }

  telemetry::Tracer &tracer = telemetry::Tracer::global();
  if (!chromeTracePath.empty()) {
    tracer.setEnabled(true);
    telemetry::Tracer::setThreadLane(0, "main");
  }
  if (timePasses)
    tracer.setTimePasses(true);

  obscli::Session obs;
  if (!obs.begin(obsOptions))
    return usage();

  std::string source;
  if (file.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    source = buffer.str();
  } else {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }

  lir::LContext ctx;
  DiagnosticEngine diags;
  auto module = lir::parseModule(source, ctx, diags);
  if (!module) {
    std::fprintf(stderr, "parse error:\n%s", diags.str().c_str());
    return 1;
  }
  if (verify) {
    DiagnosticEngine verifyDiags;
    if (!lir::verifyModule(*module, verifyDiags)) {
      std::fprintf(stderr, "verification failed:\n%s",
                   verifyDiags.str().c_str());
      return 1;
    }
  }

  if (!passList.empty()) {
    lir::PassManager pm(/*verifyEach=*/true);
    // Dedicated pool: function passes run function-at-a-time across it.
    std::unique_ptr<ThreadPool> passPool;
    if (passJobs > 1) {
      passPool = std::make_unique<ThreadPool>(static_cast<unsigned>(passJobs));
      pm.setConcurrency(passPool.get());
    }
    lir::PrintIRInstrumentation printer(printIR, std::cerr);
    if (printIR.beforeAll || printIR.afterAll ||
        !printIR.beforePasses.empty() || !printIR.afterPasses.empty())
      pm.addInstrumentation(&printer);
    for (const std::string &name : splitString(passList, ',')) {
      if (name == "adaptor") {
        adaptor::buildAdaptorPipeline(pm, {});
        continue;
      }
      auto pass = makePass(name);
      if (!pass) {
        std::fprintf(stderr, "unknown pass '%s'\n", name.c_str());
        return 2;
      }
      pm.add(std::move(pass));
    }
    DiagnosticEngine passDiags;
    bool ok = pm.run(*module, passDiags);
    if (!passDiags.diagnostics().empty())
      std::fprintf(stderr, "%s", passDiags.str().c_str());
    if (stats) {
      for (const lir::PassRunRecord &record : pm.records())
        for (const auto &[key, value] : record.stats)
          std::fprintf(stderr, "%-40s %lld\n", key.c_str(),
                       static_cast<long long>(value));
      std::fprintf(stderr, "%s", telemetry::statisticsReport().c_str());
    }
    if (timePasses)
      std::fprintf(stderr, "%s", tracer.passTimesTable().c_str());
    if (!chromeTracePath.empty()) {
      std::string error;
      if (!tracer.writeChromeTrace(chromeTracePath, &error)) {
        std::fprintf(stderr, "chrome trace: %s\n", error.c_str());
        return 1;
      }
      std::fprintf(stderr, "chrome trace written to %s\n",
                   chromeTracePath.c_str());
    }
    if (!ok)
      return 1;
  }

  if (synthesizeIt) {
    vhls::SynthesisOptions options;
    options.topFunction = top;
    options.strictAcceptance = strict;
    DiagnosticEngine synthDiags;
    vhls::SynthesisReport report =
        vhls::synthesize(*module, options, synthDiags);
    if (!synthDiags.diagnostics().empty())
      std::fprintf(stderr, "%s", synthDiags.str().c_str());
    std::fputs(json ? report.json().c_str() : report.str().c_str(), stdout);
    if (!obs.finish())
      return 1;
    return report.accepted ? 0 : 1;
  }

  std::fputs(lir::printModule(*module).c_str(), stdout);
  return obs.finish() ? 0 : 1;
}
