// mha-dse - design-space exploration over the adaptor flow.
//
//   mha-dse --kernel=NAME
//           [--strategy=exhaustive|random|greedy|refine|genetic|anneal]
//           [--budget=N] [--estimate-budget=N] [--estimate-only]
//           [--seed=N] [--threads=N] [--cosim]
//           [--ii=0,1,2] [--unroll=1,2,4,8] [--partition=1,2,4,8]
//           [--no-dataflow] [--json=out.json] [--cache=qor.json]
//           [--resume] [--chrome-trace=out.json] [--stats]
//
// Enumerates the kernel's valid directive design space (unroll factors
// clamped to divisors of the innermost trip count, dataflow only on
// multi-nest kernels, all-default knobs folded into the unoptimized
// baseline), searches it with the chosen strategy, and prints every
// visited point with the Pareto-archive members marked. Evaluations run
// in parallel on a thread pool behind a config-keyed QoR cache;
// --cache=FILE persists the cache (schema "mha.dse.cache.v1") and
// --resume pre-loads it, re-seeds the Pareto archive from the cached
// points, and skips synthesis for every point already measured.
//
// The refine/genetic/anneal strategies are estimator-guided: they score
// candidates with the analytical QoR estimator (two probe synthesis runs,
// then arithmetic) and only synthesize predicted-frontier points;
// --estimate-budget caps the analytical work and --estimate-only skips
// promotion synthesis entirely (the archive then holds predictions). Every
// run reports the estimator's measured error against its synthesized
// points, on stdout and in the JSON. --json=FILE writes the run (visited
// points + Pareto archive, schema "mha.dse.v1"); --chrome-trace/--stats
// expose the telemetry layer like the other tools. Exit status 0 iff
// every visited point synthesized (and co-simulated, with --cosim).
#include "ObservabilityCli.h"

#include "dse/Dse.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <cstdio>
#include <fstream>

using namespace mha;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: mha-dse --kernel=NAME\n"
      "               [--strategy=exhaustive|random|greedy|refine|genetic|"
      "anneal]\n"
      "               [--budget=N] [--estimate-budget=N] [--estimate-only]\n"
      "               [--seed=N] [--threads=N] [--cosim]\n"
      "               [--ii=0,1,2] [--unroll=1,2,4,8] [--partition=1,2,4,8]\n"
      "               [--no-dataflow] [--json=out.json] [--cache=qor.json]\n"
      "               [--resume] [--chrome-trace=out.json] [--stats]\n"
      "               [--metrics-out=m.json] [--metrics-interval=MS]\n"
      "               [--metrics-prom=m.prom] [--event-log=e.jsonl]\n"
      "               [--event-log-level=debug|info|warn|error]\n");
  return 2;
}

bool parseNumericFlag(const std::string &arg, size_t prefixLen,
                      const char *flag, int64_t min, int64_t max,
                      int64_t &out) {
  std::string value = arg.substr(prefixLen);
  std::optional<int64_t> parsed = parseInt(value);
  if (!parsed || *parsed < min || *parsed > max) {
    std::fprintf(stderr,
                 "invalid value '%s' for %s (expected integer in "
                 "[%lld, %lld])\n",
                 value.c_str(), flag, static_cast<long long>(min),
                 static_cast<long long>(max));
    return false;
  }
  out = *parsed;
  return true;
}

/// Parses "--flag=1,2,4" into a list of integers in [min, max].
bool parseListFlag(const std::string &arg, size_t prefixLen,
                   const char *flag, int64_t min, int64_t max,
                   std::vector<int64_t> &out) {
  out.clear();
  for (const std::string &item : splitString(arg.substr(prefixLen), ',')) {
    std::optional<int64_t> parsed = parseInt(item);
    if (!parsed || *parsed < min || *parsed > max) {
      std::fprintf(stderr,
                   "invalid value '%s' for %s (expected integers in "
                   "[%lld, %lld])\n",
                   item.c_str(), flag, static_cast<long long>(min),
                   static_cast<long long>(max));
      return false;
    }
    out.push_back(*parsed);
  }
  if (out.empty()) {
    std::fprintf(stderr, "empty list for %s\n", flag);
    return false;
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string kernelName;
  std::string strategyName = "exhaustive";
  std::string jsonPath, cachePath, chromeTracePath;
  bool resume = false, cosim = false, statsFlag = false;
  bool estimateOnly = false;
  int64_t budget = 0, estimateBudget = 0, seed = 0, threads = 0;
  dse::DesignSpaceOptions spaceOptions;

  obscli::Options obsOptions;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    bool obsOk = true;
    if (obscli::parseFlag(arg, obsOptions, obsOk)) {
      if (!obsOk)
        return usage();
    } else if (startsWith(arg, "--kernel="))
      kernelName = arg.substr(9);
    else if (startsWith(arg, "--strategy="))
      strategyName = arg.substr(11);
    else if (startsWith(arg, "--budget=")) {
      if (!parseNumericFlag(arg, 9, "--budget", 0, 1 << 30, budget))
        return usage();
    } else if (startsWith(arg, "--estimate-budget=")) {
      if (!parseNumericFlag(arg, 18, "--estimate-budget", 0, 1 << 30,
                            estimateBudget))
        return usage();
    } else if (arg == "--estimate-only")
      estimateOnly = true;
    else if (startsWith(arg, "--seed=")) {
      if (!parseNumericFlag(arg, 7, "--seed", 0, INT64_MAX, seed))
        return usage();
    } else if (startsWith(arg, "--threads=")) {
      if (!parseNumericFlag(arg, 10, "--threads", 0, 4096, threads))
        return usage();
    } else if (startsWith(arg, "--ii=")) {
      if (!parseListFlag(arg, 5, "--ii", 0, 1 << 20,
                         spaceOptions.pipelineIIs))
        return usage();
    } else if (startsWith(arg, "--unroll=")) {
      if (!parseListFlag(arg, 9, "--unroll", 1, 1 << 20,
                         spaceOptions.unrollFactors))
        return usage();
    } else if (startsWith(arg, "--partition=")) {
      if (!parseListFlag(arg, 12, "--partition", 1, 1 << 20,
                         spaceOptions.partitionFactors))
        return usage();
    } else if (arg == "--no-dataflow")
      spaceOptions.exploreDataflow = false;
    else if (startsWith(arg, "--json="))
      jsonPath = arg.substr(7);
    else if (startsWith(arg, "--cache="))
      cachePath = arg.substr(8);
    else if (arg == "--resume")
      resume = true;
    else if (startsWith(arg, "--chrome-trace="))
      chromeTracePath = arg.substr(15);
    else if (arg == "--cosim")
      cosim = true;
    else if (arg == "--stats")
      statsFlag = true;
    else if (arg == "--help" || arg == "-h")
      return usage();
    else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return usage();
    }
  }

  if (kernelName.empty()) {
    std::fprintf(stderr, "--kernel is required\n%s\n",
                 flow::availableKernelsHint().c_str());
    return usage();
  }
  const flow::KernelSpec *spec = flow::findKernel(kernelName);
  if (!spec) {
    std::fprintf(stderr, "unknown kernel '%s'\n%s\n", kernelName.c_str(),
                 flow::availableKernelsHint().c_str());
    // Structured consumers (--json) get the same teaching structurally:
    // an error document listing the valid kernel names (the field the
    // mha-serve protocol also carries on unknown_kernel errors).
    if (!jsonPath.empty()) {
      std::string text = strfmt(
          "{\"schema\": \"mha.dse.error.v1\", \"error\": "
          "\"unknown_kernel\", \"kernel\": \"%s\", \"available_kernels\": [",
          json::escape(kernelName).c_str());
      bool first = true;
      for (const flow::KernelSpec &k : flow::allKernels()) {
        text += strfmt("%s\"%s\"", first ? "" : ", ",
                       json::escape(k.name).c_str());
        first = false;
      }
      text += "]}";
      std::string error;
      if (json::validate(text, &error)) {
        std::ofstream out(jsonPath, std::ios::binary);
        out << text;
      }
    }
    return 2;
  }
  if (!dse::createStrategy(strategyName)) {
    std::string names = joinStrings(dse::strategyNames(), ", ");
    std::fprintf(stderr, "unknown strategy '%s' (available: %s)\n",
                 strategyName.c_str(), names.c_str());
    return 2;
  }
  if (resume && cachePath.empty()) {
    std::fprintf(stderr, "--resume requires --cache=FILE\n");
    return 2;
  }

  telemetry::Tracer &tracer = telemetry::Tracer::global();
  if (!chromeTracePath.empty()) {
    tracer.setEnabled(true);
    telemetry::Tracer::setThreadLane(1000, "main");
  }

  obscli::Session obs;
  if (!obs.begin(obsOptions))
    return usage();

  dse::DesignSpace space(*spec, spaceOptions);
  dse::EvaluatorOptions evalOptions;
  evalOptions.cosim = cosim;
  evalOptions.numThreads = static_cast<unsigned>(threads);
  dse::Evaluator evaluator(*spec, evalOptions);

  if (resume) {
    std::ifstream probe(cachePath);
    if (probe.good()) {
      std::string error;
      if (!evaluator.loadCacheFile(cachePath, &error)) {
        std::fprintf(stderr, "cache: %s\n", error.c_str());
        return 1;
      }
      std::fprintf(stderr, "cache: resumed %zu entries from %s\n",
                   evaluator.cacheSize(), cachePath.c_str());
    }
  }

  dse::StrategyOptions searchOptions;
  searchOptions.budget = static_cast<size_t>(budget);
  searchOptions.estimateBudget = static_cast<size_t>(estimateBudget);
  searchOptions.seed = static_cast<uint64_t>(seed);
  searchOptions.estimateOnly = estimateOnly;
  searchOptions.warmStart = resume;

  std::printf("exploring %s: %zu valid points (min innermost trip %lld%s), "
              "strategy %s\n\n",
              spec->name.c_str(), space.size(),
              static_cast<long long>(space.minInnermostTripCount()),
              space.multiNest() ? ", multi-nest" : "",
              strategyName.c_str());

  elog::info("dse", "exploration starting",
             {{"kernel", spec->name},
              {"strategy", strategyName},
              {"points", strfmt("%zu", space.size())}});
  std::optional<dse::DseResult> result =
      dse::runDse(space, evaluator, strategyName, searchOptions);
  if (!result) { // createStrategy already vetted the name
    std::fprintf(stderr, "strategy construction failed\n");
    return 1;
  }
  elog::info("dse", "exploration finished",
             {{"kernel", spec->name},
              {"evaluated", strfmt("%zu", result->evaluated)},
              {"pareto", strfmt("%zu", result->pareto.size())}});

  std::printf("%-4s %-7s %-10s %-9s %12s %6s %6s %8s %8s  %s\n", "II",
              "unroll", "partition", "dataflow", "latency", "DSP", "BRAM",
              "LUT", "FF", "");
  int failures = 0;
  for (const dse::VisitedPoint &point : result->visited) {
    if (!point.qor.ok || !point.qor.cosimOk) {
      std::printf("%-4lld %-7lld %-10lld %-9s %s\n",
                  static_cast<long long>(point.config.pipelineII),
                  static_cast<long long>(point.config.unrollFactor),
                  static_cast<long long>(point.config.partitionFactor),
                  point.config.dataflow ? "yes" : "-",
                  point.qor.error.c_str());
      ++failures;
      continue;
    }
    bool pareto = false;
    for (const dse::ArchiveEntry &entry : result->pareto)
      if (entry.key == dse::configKey(point.config))
        pareto = true;
    std::printf("%-4lld %-7lld %-10lld %-9s %12lld %6lld %6lld %8lld "
                "%8lld  %s\n",
                static_cast<long long>(point.config.pipelineII),
                static_cast<long long>(point.config.unrollFactor),
                static_cast<long long>(point.config.partitionFactor),
                point.config.dataflow ? "yes" : "-",
                static_cast<long long>(point.qor.latencyCycles),
                static_cast<long long>(point.qor.dsp),
                static_cast<long long>(point.qor.bram),
                static_cast<long long>(point.qor.lut),
                static_cast<long long>(point.qor.ff),
                pareto ? "<-- pareto" : "");
  }

  std::printf("\n%zu/%zu points evaluated (%lld synthesized, %lld cache "
              "hits), %zu on the Pareto frontier\n",
              result->evaluated, result->spaceSize,
              static_cast<long long>(result->synthRuns),
              static_cast<long long>(result->cacheHits),
              result->pareto.size());
  if (result->warmStarted > 0)
    std::printf("warm start: %zu cached points re-seeded the archive\n",
                result->warmStarted);
  if (result->estimator.used) {
    std::printf("estimator: %lld estimates from %lld probe runs",
                static_cast<long long>(result->estimator.estimates),
                static_cast<long long>(result->estimator.probeRuns));
    if (result->estimator.errorSamples > 0)
      std::printf("; error vs %zu synthesized points: latency mean "
                  "%.1f%% max %.1f%%, dsp %.1f%%, bram %.1f%%, lut %.1f%%",
                  result->estimator.errorSamples,
                  result->estimator.latencyMeanAbsPct,
                  result->estimator.latencyMaxAbsPct,
                  result->estimator.dspMeanAbsPct,
                  result->estimator.bramMeanAbsPct,
                  result->estimator.lutMeanAbsPct);
    std::printf("\n");
  }
  if (!result->pareto.empty()) {
    const dse::ArchiveEntry &fastest = result->pareto.front();
    std::printf("fastest design: II=%lld unroll=%lld partition=%lld%s -> "
                "%lld cycles, %lld DSP\n",
                static_cast<long long>(fastest.config.pipelineII),
                static_cast<long long>(fastest.config.unrollFactor),
                static_cast<long long>(fastest.config.partitionFactor),
                fastest.config.dataflow ? " dataflow" : "",
                static_cast<long long>(fastest.qor.latencyCycles),
                static_cast<long long>(fastest.qor.dsp));
  }

  int status = failures == 0 ? 0 : 1;
  if (!jsonPath.empty()) {
    std::string text = result->json();
    std::string error;
    if (!json::validate(text, &error)) {
      std::fprintf(stderr, "json: internal error, malformed output: %s\n",
                   error.c_str());
      return 1;
    }
    std::ofstream out(jsonPath, std::ios::binary);
    out << text;
    out.close();
    if (!out) {
      std::fprintf(stderr, "json: cannot write %s\n", jsonPath.c_str());
      return 1;
    }
    std::fprintf(stderr, "dse report written to %s\n", jsonPath.c_str());
  }
  if (!cachePath.empty()) {
    std::string error;
    if (!evaluator.saveCacheFile(cachePath, &error)) {
      std::fprintf(stderr, "cache: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "cache: %zu entries written to %s\n",
                 evaluator.cacheSize(), cachePath.c_str());
  }
  if (!chromeTracePath.empty()) {
    std::string error;
    if (!tracer.writeChromeTrace(chromeTracePath, &error)) {
      std::fprintf(stderr, "chrome trace: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "chrome trace written to %s\n",
                 chromeTracePath.c_str());
  }
  if (statsFlag)
    std::fprintf(stderr, "%s", telemetry::statisticsReport().c_str());
  if (!obs.finish())
    return 1;
  return status;
}
