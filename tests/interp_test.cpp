// Tests for the MiniLLVM interpreter.
#include "interp/Interp.h"
#include "lir/LContext.h"
#include "lir/Parser.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

using namespace mha;
using namespace mha::interp;

namespace {

struct Program {
  lir::LContext ctx;
  std::unique_ptr<lir::Module> module;

  explicit Program(const std::string &text) {
    DiagnosticEngine diags;
    module = lir::parseModule(text, ctx, diags);
    EXPECT_NE(module, nullptr) << diags.str();
  }

  std::optional<RtValue> run(const std::string &fn,
                             std::vector<RtValue> args,
                             DiagnosticEngine &diags) {
    Interpreter interp(*module);
    return interp.run(module->getFunction(fn), std::move(args), diags);
  }
};

} // namespace

TEST(Interp, ReturnsScalar) {
  Program p(R"(
define i64 @f(i64 %x) {
entry:
  %a = mul i64 %x, 3
  %b = add i64 %a, 4
  ret i64 %b
}
)");
  DiagnosticEngine diags;
  auto result = p.run("f", {RtValue::ofInt(5)}, diags);
  ASSERT_TRUE(result.has_value()) << diags.str();
  EXPECT_EQ(result->i, 19);
}

TEST(Interp, LoopSumsArray) {
  Program p(R"(
define double @sum([8 x double]* %a) {
entry:
  %acc0 = fadd double 0.0, 0.0
  br label %header
header:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %acc = phi double [ %acc0, %entry ], [ %acc2, %body ]
  %cmp = icmp slt i64 %iv, 8
  br i1 %cmp, label %body, label %exit
body:
  %addr = getelementptr [8 x double], [8 x double]* %a, i64 0, i64 %iv
  %v = load double, double* %addr
  %acc2 = fadd double %acc, %v
  %next = add i64 %iv, 1
  br label %header
exit:
  ret double %acc
}
)");
  double data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  DiagnosticEngine diags;
  auto result = p.run("sum", {RtValue::ofPtr(data)}, diags);
  ASSERT_TRUE(result.has_value()) << diags.str();
  EXPECT_EQ(result->f, 36.0);
}

TEST(Interp, AllocaAndStore) {
  Program p(R"(
define i64 @f() {
entry:
  %slot = alloca i64
  store i64 41, i64* %slot
  %v = load i64, i64* %slot
  %r = add i64 %v, 1
  ret i64 %r
}
)");
  DiagnosticEngine diags;
  auto result = p.run("f", {}, diags);
  ASSERT_TRUE(result.has_value()) << diags.str();
  EXPECT_EQ(result->i, 42);
}

TEST(Interp, SelectAndCompare) {
  Program p(R"(
define i64 @max(i64 %a, i64 %b) {
entry:
  %cmp = icmp sgt i64 %a, %b
  %m = select i1 %cmp, i64 %a, i64 %b
  ret i64 %m
}
)");
  DiagnosticEngine diags;
  auto r1 = p.run("max", {RtValue::ofInt(3), RtValue::ofInt(9)}, diags);
  EXPECT_EQ(r1->i, 9);
  auto r2 = p.run("max", {RtValue::ofInt(-3), RtValue::ofInt(-9)}, diags);
  EXPECT_EQ(r2->i, -3);
}

TEST(Interp, UserFunctionCall) {
  Program p(R"(
define double @square(double %x) {
entry:
  %r = fmul double %x, %x
  ret double %r
}

define double @f(double %x) {
entry:
  %s = call double @square(double %x)
  %r = fadd double %s, 1.0
  ret double %r
}
)");
  DiagnosticEngine diags;
  auto result = p.run("f", {RtValue::ofFloat(3.0)}, diags);
  ASSERT_TRUE(result.has_value()) << diags.str();
  EXPECT_EQ(result->f, 10.0);
}

TEST(Interp, HlsMathCalls) {
  Program p(R"(
declare double @hls_sqrt(double)

define double @f(double %x) {
entry:
  %r = call double @hls_sqrt(double %x)
  ret double %r
}
)");
  DiagnosticEngine diags;
  auto result = p.run("f", {RtValue::ofFloat(16.0)}, diags);
  ASSERT_TRUE(result.has_value()) << diags.str();
  EXPECT_EQ(result->f, 4.0);
}

TEST(Interp, MemcpyIntrinsic) {
  Program p(R"(
!flag opaque-pointers = "true"
declare void @llvm.memcpy.p0.p0.i64(ptr, ptr, i64)

define void @f(ptr %dst, ptr %src) {
entry:
  call void @llvm.memcpy.p0.p0.i64(ptr %dst, ptr %src, i64 32)
  ret void
}
)");
  double src[4] = {1.5, 2.5, 3.5, 4.5};
  double dst[4] = {0, 0, 0, 0};
  DiagnosticEngine diags;
  auto result =
      p.run("f", {RtValue::ofPtr(dst), RtValue::ofPtr(src)}, diags);
  ASSERT_TRUE(result.has_value()) << diags.str();
  EXPECT_EQ(dst[0], 1.5);
  EXPECT_EQ(dst[3], 4.5);
}

TEST(Interp, FMulAddIntrinsic) {
  Program p(R"(
declare double @llvm.fmuladd.f64(double, double, double)

define double @f(double %a, double %b, double %c) {
entry:
  %r = call double @llvm.fmuladd.f64(double %a, double %b, double %c)
  ret double %r
}
)");
  DiagnosticEngine diags;
  auto result = p.run("f",
                      {RtValue::ofFloat(2.0), RtValue::ofFloat(3.0),
                       RtValue::ofFloat(4.0)},
                      diags);
  EXPECT_EQ(result->f, 10.0);
}

TEST(Interp, IntegerWidthSemantics) {
  Program p(R"(
define i64 @f(i32 %x) {
entry:
  %t = trunc i32 %x to i8
  %s = sext i8 %t to i64
  ret i64 %s
}
)");
  DiagnosticEngine diags;
  // 0x180 truncates to i8 0x80 = -128.
  auto result = p.run("f", {RtValue::ofInt(0x180)}, diags);
  EXPECT_EQ(result->i, -128);
}

TEST(Interp, FloatStorageRoundsToF32) {
  Program p(R"(
define float @f(float* %p) {
entry:
  store float 0.1, float* %p
  %v = load float, float* %p
  ret float %v
}
)");
  float storage = 0;
  DiagnosticEngine diags;
  auto result = p.run("f", {RtValue::ofPtr(&storage)}, diags);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(static_cast<float>(result->f), 0.1f);
}

TEST(Interp, DivisionByZeroDiagnosed) {
  Program p(R"(
define i64 @f(i64 %x) {
entry:
  %r = sdiv i64 %x, 0
  ret i64 %r
}
)");
  DiagnosticEngine diags;
  auto result = p.run("f", {RtValue::ofInt(5)}, diags);
  EXPECT_FALSE(result.has_value());
  EXPECT_NE(diags.str().find("division by zero"), std::string::npos);
}

TEST(Interp, StepLimitStopsInfiniteLoop) {
  Program p(R"(
define void @f() {
entry:
  br label %spin
spin:
  br label %spin
}
)");
  DiagnosticEngine diags;
  Interpreter interp(*p.module);
  interp.stepLimit = 1000;
  auto result = interp.run(p.module->getFunction("f"), {}, diags);
  EXPECT_FALSE(result.has_value());
  EXPECT_NE(diags.str().find("step limit"), std::string::npos);
}

// Regression: INT64_MIN sdiv -1 used to execute the host division (signed
// overflow, UB); it must be diagnosed like division by zero.
TEST(Interp, SignedDivisionOverflowDiagnosed) {
  Program p(R"(
define i64 @f(i64 %x) {
entry:
  %r = sdiv i64 %x, -1
  ret i64 %r
}
)");
  DiagnosticEngine diags;
  auto result = p.run("f", {RtValue::ofInt(INT64_MIN)}, diags);
  EXPECT_FALSE(result.has_value());
  EXPECT_NE(diags.str().find("signed division overflow"), std::string::npos);
}

TEST(Interp, SignedRemainderOverflowDiagnosed) {
  Program p(R"(
define i64 @f(i64 %x) {
entry:
  %r = srem i64 %x, -1
  ret i64 %r
}
)");
  DiagnosticEngine diags;
  auto result = p.run("f", {RtValue::ofInt(INT64_MIN)}, diags);
  EXPECT_FALSE(result.has_value());
  EXPECT_NE(diags.str().find("overflow"), std::string::npos);
}

// The overflow case exists at every width: -128 sdiv -1 does not fit in i8.
TEST(Interp, NarrowSignedDivisionOverflowDiagnosed) {
  Program p(R"(
define i8 @f(i8 %x) {
entry:
  %r = sdiv i8 %x, -1
  ret i8 %r
}
)");
  DiagnosticEngine diags;
  auto result = p.run("f", {RtValue::ofInt(-128)}, diags);
  EXPECT_FALSE(result.has_value());
  EXPECT_NE(diags.str().find("i8"), std::string::npos);
}

TEST(Interp, SRemByMinusOneIsZeroWhenDefined) {
  Program p(R"(
define i64 @f(i64 %x) {
entry:
  %r = srem i64 %x, -1
  ret i64 %r
}
)");
  DiagnosticEngine diags;
  auto result = p.run("f", {RtValue::ofInt(7)}, diags);
  ASSERT_TRUE(result.has_value()) << diags.str();
  EXPECT_EQ(result->i, 0);
}

// Regression: shifts used to mask the amount with & 63 and shift the full
// sign-extended 64-bit representation; they must operate modulo the
// operand's IntType width.
TEST(Interp, LShrUsesOperandWidth) {
  Program p(R"(
define i32 @f(i32 %x) {
entry:
  %r = lshr i32 %x, 1
  ret i32 %r
}
)");
  DiagnosticEngine diags;
  auto result = p.run("f", {RtValue::ofInt(-2)}, diags);
  ASSERT_TRUE(result.has_value()) << diags.str();
  // 0xFFFFFFFE logically shifted within 32 bits, not 64.
  EXPECT_EQ(result->i, 2147483647);
}

TEST(Interp, ShlWrapsAtOperandWidth) {
  Program p(R"(
define i8 @f(i8 %x) {
entry:
  %r = shl i8 %x, 1
  ret i8 %r
}
)");
  DiagnosticEngine diags;
  auto result = p.run("f", {RtValue::ofInt(96)}, diags);
  ASSERT_TRUE(result.has_value()) << diags.str();
  EXPECT_EQ(result->i, -64); // 192 wraps to i8 -64
}

TEST(Interp, ShiftAmountAtWidthDiagnosed) {
  Program p(R"(
define i32 @f(i32 %x) {
entry:
  %r = shl i32 %x, 32
  ret i32 %r
}
)");
  DiagnosticEngine diags;
  auto result = p.run("f", {RtValue::ofInt(1)}, diags);
  EXPECT_FALSE(result.has_value());
  EXPECT_NE(diags.str().find("out of range"), std::string::npos);
}

TEST(Interp, NarrowShiftAmountDiagnosed) {
  Program p(R"(
define i8 @f(i8 %x) {
entry:
  %r = lshr i8 %x, 8
  ret i8 %r
}
)");
  DiagnosticEngine diags;
  auto result = p.run("f", {RtValue::ofInt(1)}, diags);
  EXPECT_FALSE(result.has_value());
  EXPECT_NE(diags.str().find("out of range for i8"), std::string::npos);
}

TEST(Interp, NarrowAddWraps) {
  Program p(R"(
define i8 @f(i8 %x) {
entry:
  %r = add i8 %x, 1
  ret i8 %r
}
)");
  DiagnosticEngine diags;
  auto result = p.run("f", {RtValue::ofInt(127)}, diags);
  ASSERT_TRUE(result.has_value()) << diags.str();
  EXPECT_EQ(result->i, -128);
}

TEST(Interp, UDivUsesOperandWidth) {
  Program p(R"(
define i8 @f(i8 %x) {
entry:
  %r = udiv i8 %x, 2
  ret i8 %r
}
)");
  DiagnosticEngine diags;
  // -6 is 250 as an unsigned 8-bit value; 250/2 = 125.
  auto result = p.run("f", {RtValue::ofInt(-6)}, diags);
  ASSERT_TRUE(result.has_value()) << diags.str();
  EXPECT_EQ(result->i, 125);
}

// i1 true is canonically -1 (all bits set, like every other width), so
// sign-extending a comparison result yields -1, not 1.
TEST(Interp, ICmpProducesCanonicalBool) {
  Program p(R"(
define i64 @f(i64 %a, i64 %b) {
entry:
  %c = icmp slt i64 %a, %b
  %w = sext i1 %c to i64
  ret i64 %w
}
)");
  DiagnosticEngine diags;
  auto result = p.run("f", {RtValue::ofInt(1), RtValue::ofInt(2)}, diags);
  ASSERT_TRUE(result.has_value()) << diags.str();
  EXPECT_EQ(result->i, -1);
}

TEST(Interp, ArgCountMismatchDiagnosed) {
  Program p(R"(
define void @f(i64 %x) {
entry:
  ret void
}
)");
  DiagnosticEngine diags;
  Interpreter interp(*p.module);
  auto result = interp.run(p.module->getFunction("f"), {}, diags);
  EXPECT_FALSE(result.has_value());
  EXPECT_NE(diags.str().find("expects 1 args"), std::string::npos);
}

// --- Multi-function / recursion regressions -----------------------------

// Unbounded self-recursion must produce a diagnostic, not overflow the
// host stack (the interpreter executes IR calls via host recursion, so
// the depth limit is the only thing standing between bad IR and a
// segfault).
TEST(Interp, CallDepthLimitDiagnosesRunawayRecursion) {
  Program p(R"(
define i64 @f(i64 %n) {
entry:
  %n1 = add i64 %n, 1
  %r = call i64 @f(i64 %n1)
  ret i64 %r
}
)");
  DiagnosticEngine diags;
  Interpreter interp(*p.module);
  interp.callDepthLimit = 64;
  auto result = interp.run(p.module->getFunction("f"),
                           {RtValue::ofInt(0)}, diags);
  EXPECT_FALSE(result.has_value());
  EXPECT_NE(diags.str().find("call depth limit exceeded"),
            std::string::npos);
  EXPECT_NE(diags.str().find("64"), std::string::npos);
}

// Recursion that stays under the limit is fine — the limit counts live
// frames, not total calls.
TEST(Interp, BoundedRecursionUnderTheLimitSucceeds) {
  Program p(R"(
define i64 @fact(i64 %n) {
entry:
  %cmp = icmp sle i64 %n, 1
  br i1 %cmp, label %base, label %rec
base:
  ret i64 1
rec:
  %n1 = sub i64 %n, 1
  %r = call i64 @fact(i64 %n1)
  %v = mul i64 %n, %r
  ret i64 %v
}
)");
  DiagnosticEngine diags;
  Interpreter interp(*p.module);
  interp.callDepthLimit = 16;
  auto result = interp.run(p.module->getFunction("fact"),
                           {RtValue::ofInt(10)}, diags);
  ASSERT_TRUE(result.has_value()) << diags.str();
  EXPECT_EQ(result->i, 3628800);
}

// Call arguments evaluate left-to-right: each argument expression can
// observe memory effects of the ones before it. Pinned because the
// differential oracle depends on a deterministic order.
TEST(Interp, CallArgumentsEvaluateLeftToRight) {
  Program p(R"(
define i64 @pair(i64 %a, i64 %b) {
entry:
  %hi = mul i64 %a, 100
  %v = add i64 %hi, %b
  ret i64 %v
}

define i64 @f() {
entry:
  %slot = alloca i64
  store i64 1, i64* %slot
  %first = load i64, i64* %slot
  store i64 2, i64* %slot
  %second = load i64, i64* %slot
  %r = call i64 @pair(i64 %first, i64 %second)
  ret i64 %r
}
)");
  DiagnosticEngine diags;
  auto result = p.run("f", {}, diags);
  ASSERT_TRUE(result.has_value()) << diags.str();
  EXPECT_EQ(result->i, 102);
}

// Mutual recursion is just recursion: parity via two functions calling
// each other, depth bounded by the argument.
TEST(Interp, MutualRecursionComputesParity) {
  Program p(R"(
define i64 @is_even(i64 %n) {
entry:
  %cmp = icmp eq i64 %n, 0
  br i1 %cmp, label %yes, label %rec
yes:
  ret i64 1
rec:
  %n1 = sub i64 %n, 1
  %r = call i64 @is_odd(i64 %n1)
  ret i64 %r
}

define i64 @is_odd(i64 %n) {
entry:
  %cmp = icmp eq i64 %n, 0
  br i1 %cmp, label %no, label %rec
no:
  ret i64 0
rec:
  %n1 = sub i64 %n, 1
  %r = call i64 @is_even(i64 %n1)
  ret i64 %r
}
)");
  DiagnosticEngine diags;
  auto even = p.run("is_even", {RtValue::ofInt(10)}, diags);
  ASSERT_TRUE(even.has_value()) << diags.str();
  EXPECT_EQ(even->i, 1);
  auto odd = p.run("is_even", {RtValue::ofInt(7)}, diags);
  ASSERT_TRUE(odd.has_value()) << diags.str();
  EXPECT_EQ(odd->i, 0);
}
