// Tests for the differential fuzzing subsystem: generator determinism,
// oracle detection, bugpoint-style reduction, and campaign reports.
#include "fuzz/Fuzz.h"
#include "lir/Function.h"
#include "lir/Instruction.h"
#include "lir/LContext.h"
#include "lir/Parser.h"
#include "lir/Verifier.h"
#include "support/Json.h"

#include <gtest/gtest.h>

using namespace mha;
using namespace mha::fuzz;

namespace {

/// The deliberate miscompile used throughout: rewrite the first fadd's
/// second operand to its first (a+b -> a+a) after the adaptor ran.
void plantFAddMiscompile(lir::Module &module) {
  for (lir::Function *fn : module.functions())
    for (auto &block : *fn)
      for (auto &inst : *block)
        if (inst->opcode() == lir::Opcode::FAdd) {
          inst->setOperand(1, inst->operand(0));
          return;
        }
}

/// Finds a seed whose generated kernel the planted oracle flags (most
/// kernels contain an fadd whose operands differ, but not all).
std::optional<std::pair<uint64_t, OracleResult>> findPlantedFailure() {
  OracleOptions oracle;
  oracle.mutateAdaptorModule = plantFAddMiscompile;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    ProgramGen gen(seed, GenOptions{});
    Program program = gen.genKernel();
    OracleResult result = checkKernel(program, oracle);
    if (result.failed())
      return std::make_pair(seed, result);
  }
  return std::nullopt;
}

} // namespace

TEST(FuzzGen, KernelProgramsAreDeterministicPerSeed) {
  for (uint64_t seed : {1ull, 7ull, 12345ull}) {
    ProgramGen a(seed, GenOptions{});
    ProgramGen b(seed, GenOptions{});
    EXPECT_EQ(a.genKernel().describe(), b.genKernel().describe());
  }
  ProgramGen a(1, GenOptions{});
  ProgramGen b(2, GenOptions{});
  EXPECT_NE(a.genKernel().describe(), b.genKernel().describe());
}

TEST(FuzzGen, IrProgramsAreDeterministicPerSeed) {
  for (uint64_t seed : {1ull, 9ull, 424242ull}) {
    ProgramGen a(seed, GenOptions{});
    ProgramGen b(seed, GenOptions{});
    EXPECT_EQ(a.genIr().lir(), b.genIr().lir());
  }
  ProgramGen a(3, GenOptions{});
  ProgramGen b(4, GenOptions{});
  EXPECT_NE(a.genIr().lir(), b.genIr().lir());
}

TEST(FuzzGen, IrProgramsParseAndVerify) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    ProgramGen gen(seed, GenOptions{});
    IrProgram program = gen.genIr();
    lir::LContext ctx;
    DiagnosticEngine diags;
    auto module = lir::parseModule(program.lir(), ctx, diags);
    ASSERT_NE(module, nullptr)
        << "seed " << seed << ": " << diags.str() << "\n" << program.lir();
  }
}

TEST(FuzzGen, DeriveProgramSeedDecorrelatesPositions) {
  EXPECT_EQ(deriveProgramSeed(1, 0), deriveProgramSeed(1, 0));
  EXPECT_NE(deriveProgramSeed(1, 0), deriveProgramSeed(1, 1));
  EXPECT_NE(deriveProgramSeed(1, 0), deriveProgramSeed(2, 0));
}

TEST(FuzzOracle, CleanOnSmallSeeds) {
  OracleOptions oracle;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    ProgramGen gen(seed, GenOptions{});
    OracleResult kr = checkKernel(gen.genKernel(), oracle);
    EXPECT_TRUE(kr.ok) << "kernel seed " << seed << ": "
                       << failureKindName(kr.kind) << " at " << kr.stage
                       << ": " << kr.detail;
    OracleResult ir = checkIr(gen.genIr(), oracle);
    EXPECT_TRUE(ir.ok) << "ir seed " << seed << ": "
                       << failureKindName(ir.kind) << " at " << ir.stage
                       << ": " << ir.detail;
  }
}

TEST(FuzzOracle, CatchesPlantedMiscompile) {
  auto found = findPlantedFailure();
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->second.kind, FailureKind::Mismatch);
  EXPECT_EQ(found->second.stage, "adaptor");
}

TEST(FuzzReducer, ShrinksPlantedMiscompileKeepingTheFailure) {
  auto found = findPlantedFailure();
  ASSERT_TRUE(found.has_value());
  OracleOptions oracle;
  oracle.mutateAdaptorModule = plantFAddMiscompile;
  ProgramGen gen(found->first, GenOptions{});
  Program program = gen.genKernel();
  ReductionTrace trace;
  Program reduced =
      reduceKernel(program, found->second, oracle, ReducerOptions{}, &trace);
  EXPECT_LE(reduced.size(), 10u) << reduced.describe();
  EXPECT_LE(reduced.size(), program.size());
  EXPECT_EQ(trace.finalSize, reduced.size());
  // The reduced program still reproduces the same failure signature.
  OracleResult again = checkKernel(reduced, oracle);
  EXPECT_TRUE(again.sameFailure(found->second))
      << failureKindName(again.kind) << " at " << again.stage;
}

TEST(FuzzCampaign, CleanRunProducesValidReport) {
  FuzzOptions options;
  options.budget = 15;
  options.seed = 1;
  FuzzReport report = runFuzz(options);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.kernelPrograms, 15u);
  EXPECT_EQ(report.irPrograms, 15u);
  std::string text = report.json();
  std::string error;
  EXPECT_TRUE(json::validate(text, &error)) << error << "\n" << text;
  auto doc = json::parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_NE(doc->get("schema"), nullptr);
  EXPECT_EQ(doc->get("schema")->asString(), "mha.fuzz.v1");
}

TEST(FuzzCampaign, ParallelMatchesSerial) {
  FuzzOptions serial;
  serial.budget = 10;
  serial.seed = 3;
  serial.jobs = 1;
  FuzzOptions parallel = serial;
  parallel.jobs = 4;
  FuzzReport a = runFuzz(serial);
  FuzzReport b = runFuzz(parallel);
  EXPECT_EQ(a.failures.size(), b.failures.size());
  EXPECT_TRUE(a.clean());
  EXPECT_TRUE(b.clean());
}

TEST(FuzzCampaign, PlantedFailureIsReportedReducedAndReplayable) {
  FuzzOptions options;
  options.budget = 40;
  options.seed = 1;
  options.mode = FuzzOptions::Mode::Kernel;
  options.oracle.mutateAdaptorModule = plantFAddMiscompile;
  FuzzReport report = runFuzz(options);
  ASSERT_FALSE(report.clean());
  const FuzzFailure &failure = report.failures.front();
  EXPECT_EQ(failure.result.kind, FailureKind::Mismatch);
  EXPECT_EQ(failure.result.stage, "adaptor");
  EXPECT_LE(failure.reducedSize, 10u) << failure.reducedDescription;

  // The minimized LIR artifact is parseable on its own.
  ASSERT_FALSE(failure.reducedLir.empty());
  lir::LContext ctx;
  DiagnosticEngine diags;
  EXPECT_NE(lir::parseModule(failure.reducedLir, ctx, diags), nullptr)
      << diags.str() << "\n" << failure.reducedLir;

  // The embedded reproducer document replays to the same failure.
  std::string repro = failure.reproJson(options.gen);
  std::string error;
  EXPECT_TRUE(json::validate(repro, &error)) << error;
  std::optional<FuzzFailure> replayed = replayRepro(repro, options, error);
  ASSERT_TRUE(replayed.has_value()) << error;
  EXPECT_TRUE(replayed->result.sameFailure(failure.result));
  EXPECT_EQ(replayed->programSeed, failure.programSeed);

  // Replaying without the planted mutation is the "bug got fixed" outcome:
  // no failure, but distinguishable from a malformed document.
  FuzzOptions fixed = options;
  fixed.oracle.mutateAdaptorModule = nullptr;
  bool noLongerFails = false;
  EXPECT_FALSE(replayRepro(repro, fixed, error, &noLongerFails).has_value());
  EXPECT_TRUE(noLongerFails);
}

TEST(FuzzCampaign, ReplayRejectsMalformedDocuments) {
  FuzzOptions options;
  std::string error;
  EXPECT_FALSE(replayRepro("not json", options, error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(
      replayRepro(R"({"schema":"mha.fuzz.v0"})", options, error).has_value());
  EXPECT_FALSE(replayRepro(
                   R"({"schema":"mha.fuzz.repro.v1","mode":"kernel","seed":7})",
                   options, error)
                   .has_value());
  EXPECT_NE(error.find("seed"), std::string::npos);
}

// --- Calls mode ---------------------------------------------------------

namespace {

/// Planted miscompile for calls mode: after legalization, rewrite the
/// first add's second operand to its first (a+b -> a+a).
void plantAddMiscompile(lir::Module &module) {
  for (lir::Function *fn : module.functions())
    for (auto &block : *fn)
      for (auto &inst : *block)
        if (inst->opcode() == lir::Opcode::Add &&
            inst->operand(0) != inst->operand(1)) {
          inst->setOperand(1, inst->operand(0));
          return;
        }
}

std::optional<std::pair<uint64_t, OracleResult>> findPlantedCallsFailure() {
  OracleOptions oracle;
  oracle.runVhls = false;
  oracle.mutateAdaptorModule = plantAddMiscompile;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    ProgramGen gen(seed, GenOptions{});
    CallProgram program = gen.genCalls();
    OracleResult result = checkCalls(program, oracle);
    if (result.failed())
      return std::make_pair(seed, result);
  }
  return std::nullopt;
}

} // namespace

TEST(FuzzGen, CallsProgramsAreDeterministicPerSeed) {
  for (uint64_t seed : {1ull, 7ull, 424242ull}) {
    ProgramGen a(seed, GenOptions{});
    ProgramGen b(seed, GenOptions{});
    EXPECT_EQ(a.genCalls().lir(), b.genCalls().lir());
  }
  ProgramGen a(1, GenOptions{});
  ProgramGen b(2, GenOptions{});
  EXPECT_NE(a.genCalls().lir(), b.genCalls().lir());
}

TEST(FuzzGen, CallsProgramsParseVerifyAndDescribe) {
  for (uint64_t seed = 1; seed <= 15; ++seed) {
    ProgramGen gen(seed, GenOptions{});
    CallProgram program = gen.genCalls();
    lir::LContext ctx;
    DiagnosticEngine diags;
    auto module = lir::parseModule(program.lir(), ctx, diags);
    ASSERT_NE(module, nullptr) << "seed " << seed << ": " << diags.str()
                               << "\n" << program.lir();
    EXPECT_TRUE(lir::verifyModule(*module, diags))
        << "seed " << seed << ": " << diags.str();
    EXPECT_NE(module->getFunction("fuzz_calls"), nullptr);
    EXPECT_FALSE(program.describe().empty());
    EXPECT_GT(program.size(), 0u);
  }
}

TEST(FuzzOracle, CallsCleanOnSmallSeeds) {
  OracleOptions oracle;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    ProgramGen gen(seed, GenOptions{});
    OracleResult result = checkCalls(gen.genCalls(), oracle);
    EXPECT_TRUE(result.ok) << "calls seed " << seed << ": "
                           << failureKindName(result.kind) << " at "
                           << result.stage << ": " << result.detail;
  }
}

TEST(FuzzOracle, CallsCatchesPlantedMiscompile) {
  auto found = findPlantedCallsFailure();
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->second.kind, FailureKind::Mismatch);
  EXPECT_EQ(found->second.stage, "call-legalize");
}

TEST(FuzzReducer, ShrinksPlantedCallsMiscompileKeepingTheFailure) {
  auto found = findPlantedCallsFailure();
  ASSERT_TRUE(found.has_value());
  OracleOptions oracle;
  oracle.runVhls = false;
  oracle.mutateAdaptorModule = plantAddMiscompile;
  ProgramGen gen(found->first, GenOptions{});
  CallProgram program = gen.genCalls();
  ReductionTrace trace;
  CallProgram reduced =
      reduceCalls(program, found->second, oracle, ReducerOptions{}, &trace);
  EXPECT_LE(reduced.size(), program.size());
  EXPECT_EQ(trace.finalSize, reduced.size());
  OracleResult again = checkCalls(reduced, oracle);
  EXPECT_TRUE(again.sameFailure(found->second))
      << failureKindName(again.kind) << " at " << again.stage;
}

TEST(FuzzCampaign, CallsModeRunsCleanAndReports) {
  FuzzOptions options;
  options.budget = 20;
  options.seed = 5;
  options.mode = FuzzOptions::Mode::Calls;
  FuzzReport report = runFuzz(options);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.callsPrograms, 20u);
  EXPECT_EQ(report.kernelPrograms, 0u);
  EXPECT_EQ(report.irPrograms, 0u);
  std::string text = report.json();
  std::string error;
  EXPECT_TRUE(json::validate(text, &error)) << error << "\n" << text;
  EXPECT_NE(text.find("\"calls\""), std::string::npos);
}

TEST(FuzzCampaign, AllModeCoversEveryGenerator) {
  FuzzOptions options;
  options.budget = 5;
  options.seed = 2;
  options.mode = FuzzOptions::Mode::All;
  FuzzReport report = runFuzz(options);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.kernelPrograms, 5u);
  EXPECT_EQ(report.irPrograms, 5u);
  EXPECT_EQ(report.callsPrograms, 5u);
}
