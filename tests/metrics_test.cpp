// Tests for the process-wide metrics layer (support/Metrics) and the
// structured event log (support/EventLog): exact bucket/percentile math,
// concurrent shard merging, snapshot export formats, exporter lifecycle
// races and span correlation in the JSONL log.
#include "support/EventLog.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include "flow/Flow.h"
#include "flow/StageCache.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

using namespace mha;

namespace {

/// RAII: enables metric recording for one test and restores the previous
/// registry contents to zero afterwards so tests stay order-independent.
struct MetricsScope {
  MetricsScope() {
    metrics::Registry::global().resetForTest();
    metrics::setEnabled(true);
  }
  ~MetricsScope() {
    metrics::setEnabled(false);
    metrics::Registry::global().resetForTest();
  }
};

std::string slurp(const std::string &path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string tempPath(const char *name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

const json::Value *findSeries(const json::Value &array,
                              const std::string &name) {
  for (const json::Value &entry : array.elements())
    if (const json::Value *n = entry.get("name"); n && n->asString() == name)
      return &entry;
  return nullptr;
}

} // namespace

// --- bucket math -----------------------------------------------------------

TEST(MetricsBuckets, IndexIsExactLog2) {
  EXPECT_EQ(metrics::bucketIndex(-5), 0);
  EXPECT_EQ(metrics::bucketIndex(0), 0);
  EXPECT_EQ(metrics::bucketIndex(1), 1);
  EXPECT_EQ(metrics::bucketIndex(2), 2);
  EXPECT_EQ(metrics::bucketIndex(3), 2);
  EXPECT_EQ(metrics::bucketIndex(4), 3);
  EXPECT_EQ(metrics::bucketIndex(7), 3);
  EXPECT_EQ(metrics::bucketIndex(8), 4);
  EXPECT_EQ(metrics::bucketIndex(1023), 10);
  EXPECT_EQ(metrics::bucketIndex(1024), 11);
  // Beyond the last bucket's range everything clamps to the last bucket.
  EXPECT_EQ(metrics::bucketIndex(INT64_MAX), metrics::kBuckets - 1);
}

TEST(MetricsBuckets, BoundsArePowersOfTwo) {
  EXPECT_EQ(metrics::bucketLowerBound(0), 0);
  EXPECT_EQ(metrics::bucketUpperBound(0), 1);
  EXPECT_EQ(metrics::bucketLowerBound(1), 1);
  EXPECT_EQ(metrics::bucketUpperBound(1), 2);
  EXPECT_EQ(metrics::bucketLowerBound(5), 16);
  EXPECT_EQ(metrics::bucketUpperBound(5), 32);
  // Every sample must land inside its bucket's [lo, hi) range.
  for (int64_t v : {0LL, 1LL, 2LL, 3LL, 100LL, 4096LL, 123456789LL}) {
    int b = metrics::bucketIndex(v);
    EXPECT_GE(v, metrics::bucketLowerBound(b)) << "value " << v;
    EXPECT_LT(v, metrics::bucketUpperBound(b)) << "value " << v;
  }
}

// --- histogram -------------------------------------------------------------

TEST(MetricsHistogram, CountSumMinMaxExact) {
  metrics::Histogram h;
  for (int64_t v : {5LL, 10LL, 3LL, 100LL, 7LL})
    h.recordAlways(v);
  metrics::Histogram::Merged m = h.merged();
  EXPECT_EQ(m.count, 5);
  EXPECT_EQ(m.sum, 125);
  EXPECT_EQ(m.min, 3);
  EXPECT_EQ(m.max, 100);
  EXPECT_DOUBLE_EQ(m.mean(), 25.0);
}

TEST(MetricsHistogram, DegeneratePercentilesClampToExactValue) {
  metrics::Histogram h;
  for (int i = 0; i < 1000; ++i)
    h.recordAlways(42);
  metrics::Histogram::Merged m = h.merged();
  // All samples equal: every percentile must report exactly 42, not an
  // interpolated point inside bucket [32, 64).
  EXPECT_DOUBLE_EQ(m.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(m.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(m.percentile(99), 42.0);
  EXPECT_DOUBLE_EQ(m.percentile(100), 42.0);
}

TEST(MetricsHistogram, PercentileRankPicksCorrectBucket) {
  metrics::Histogram h;
  // 90 samples in bucket [1,2) and 10 in bucket [1024, 2048): p50 must
  // stay in the low bucket, p99 must reach the high one.
  for (int i = 0; i < 90; ++i)
    h.recordAlways(1);
  for (int i = 0; i < 10; ++i)
    h.recordAlways(1500);
  metrics::Histogram::Merged m = h.merged();
  // p50 interpolates inside the containing bucket [1, 2) — the exact
  // point depends on the rank, but it must stay inside that bucket.
  double p50 = m.percentile(50);
  EXPECT_GE(p50, 1.0);
  EXPECT_LT(p50, 2.0);
  double p99 = m.percentile(99);
  EXPECT_GE(p99, 1024.0);
  EXPECT_LE(p99, 1500.0); // clamped to max
  EXPECT_EQ(m.min, 1);
  EXPECT_EQ(m.max, 1500);
}

TEST(MetricsHistogram, EmptyHistogramIsAllZero) {
  metrics::Histogram h;
  metrics::Histogram::Merged m = h.merged();
  EXPECT_EQ(m.count, 0);
  EXPECT_EQ(m.sum, 0);
  EXPECT_EQ(m.min, 0);
  EXPECT_EQ(m.max, 0);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.percentile(50), 0.0);
}

TEST(MetricsHistogram, ConcurrentShardMergeMatchesSerialTotals) {
  MetricsScope scope;
  metrics::Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.recordAlways(t * kPerThread + i);
    });
  for (std::thread &thread : threads)
    thread.join();
  metrics::Histogram::Merged m = h.merged();
  constexpr int64_t kTotal = int64_t(kThreads) * kPerThread;
  EXPECT_EQ(m.count, kTotal);
  EXPECT_EQ(m.sum, kTotal * (kTotal - 1) / 2); // sum of 0..N-1
  EXPECT_EQ(m.min, 0);
  EXPECT_EQ(m.max, kTotal - 1);
  int64_t bucketTotal = 0;
  for (int b = 0; b < metrics::kBuckets; ++b)
    bucketTotal += m.buckets[b];
  EXPECT_EQ(bucketTotal, kTotal);
}

// --- counters and gauges ---------------------------------------------------

TEST(MetricsCounter, ConcurrentAddsSumExactly) {
  MetricsScope scope;
  metrics::Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i)
        c.add(1);
    });
  for (std::thread &thread : threads)
    thread.join();
  EXPECT_EQ(c.value(), int64_t(kThreads) * kPerThread);
}

TEST(MetricsCounter, GatedOffRecordsNothing) {
  metrics::Registry::global().resetForTest();
  metrics::setEnabled(false);
  metrics::Counter c;
  c.add(100);
  EXPECT_EQ(c.value(), 0);
  metrics::Histogram h;
  h.record(5);
  EXPECT_EQ(h.merged().count, 0);
}

TEST(MetricsGauge, UnconditionalAcrossGateFlips) {
  metrics::setEnabled(false);
  metrics::Gauge g;
  g.add(3); // gauges must record even with the gate off
  metrics::setEnabled(true);
  g.add(-1);
  metrics::setEnabled(false);
  EXPECT_EQ(g.value(), 2);
  g.set(7);
  EXPECT_EQ(g.value(), 7);
}

// --- registry --------------------------------------------------------------

TEST(MetricsRegistry, CreateOrGetIsIdentityByNameAndLabels) {
  MetricsScope scope;
  metrics::Registry &reg = metrics::Registry::global();
  metrics::Counter &a = reg.counter("test_identity_total", "help");
  metrics::Counter &b = reg.counter("test_identity_total");
  EXPECT_EQ(&a, &b);
  metrics::Counter &withLabel =
      reg.counter("test_identity_total", "", {{"stage", "mlir"}});
  EXPECT_NE(&a, &withLabel);
  metrics::Counter &sameLabel =
      reg.counter("test_identity_total", "", {{"stage", "mlir"}});
  EXPECT_EQ(&withLabel, &sameLabel);
}

TEST(MetricsRegistry, SnapshotJsonValidatesAndCarriesValues) {
  MetricsScope scope;
  metrics::Registry &reg = metrics::Registry::global();
  reg.counter("test_snap_total", "a counter").add(7);
  reg.gauge("test_snap_depth", "a gauge").set(3);
  metrics::Histogram &h = reg.histogram("test_snap_us", "a histogram",
                                        {{"pipeline", "lir"}});
  for (int64_t v : {10LL, 20LL, 30LL})
    h.record(v);

  std::string text = metrics::Registry::global().snapshot().json();
  std::string error;
  ASSERT_TRUE(json::validate(text, &error)) << error;
  std::optional<json::Value> doc = json::parse(text, &error);
  ASSERT_TRUE(doc) << error;
  EXPECT_EQ(doc->get("schema")->asString(), "mha.metrics.v1");
  ASSERT_NE(doc->get("uptime_ms"), nullptr);

  const json::Value *counter =
      findSeries(*doc->get("counters"), "test_snap_total");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->get("value")->asInt(), 7);

  const json::Value *gauge = findSeries(*doc->get("gauges"), "test_snap_depth");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->get("value")->asInt(), 3);

  const json::Value *hist = findSeries(*doc->get("histograms"), "test_snap_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->get("count")->asInt(), 3);
  EXPECT_EQ(hist->get("sum")->asInt(), 60);
  EXPECT_EQ(hist->get("min")->asInt(), 10);
  EXPECT_EQ(hist->get("max")->asInt(), 30);
  EXPECT_EQ(hist->get("labels")->get("pipeline")->asString(), "lir");
  ASSERT_NE(hist->get("p50"), nullptr);
  ASSERT_NE(hist->get("p99"), nullptr);
  ASSERT_TRUE(hist->get("buckets")->isArray());
  EXPECT_FALSE(hist->get("buckets")->elements().empty());
}

TEST(MetricsRegistry, SnapshotMirrorsTelemetryStatistics) {
  MetricsScope scope;
  static telemetry::Statistic stat("metrics-test", "mirrored-stat",
                                   "statistic visible in the snapshot");
  stat += 5;
  metrics::Snapshot snap = metrics::Registry::global().snapshot();
  bool found = false;
  for (const metrics::StatSnapshot &s : snap.stats)
    if (s.group == "metrics-test" && s.name == "mirrored-stat") {
      found = true;
      EXPECT_GE(s.value, 5);
    }
  EXPECT_TRUE(found)
      << "telemetry::Statistic values must appear in the metrics snapshot";
}

TEST(MetricsRegistry, PrometheusFormatIsWellFormed) {
  MetricsScope scope;
  metrics::Registry &reg = metrics::Registry::global();
  reg.counter("test_prom_total", "counter help").add(2);
  reg.histogram("test_prom_us", "histogram help").record(100);
  std::string text = metrics::Registry::global().snapshot().prometheus();
  EXPECT_NE(text.find("# HELP test_prom_total counter help"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_prom_total 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_us histogram"), std::string::npos);
  EXPECT_NE(text.find("test_prom_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_us_sum 100"), std::string::npos);
  EXPECT_NE(text.find("test_prom_us_count 1"), std::string::npos);
}

TEST(MetricsRegistry, RecordPassDurationLandsInLabeledSeries) {
  MetricsScope scope;
  metrics::recordPassDuration("lir", "dce", 250);
  metrics::recordPassDuration("lir", "dce", 750);
  metrics::recordPassDuration("mir", "canonicalize", 10);
  metrics::Histogram &lirDce = metrics::Registry::global().histogram(
      "mha_pass_duration_us", "", {{"pipeline", "lir"}, {"pass", "dce"}});
  EXPECT_EQ(lirDce.merged().count, 2);
  EXPECT_EQ(lirDce.merged().sum, 1000);
  metrics::Histogram &mirCanon = metrics::Registry::global().histogram(
      "mha_pass_duration_us", "",
      {{"pipeline", "mir"}, {"pass", "canonicalize"}});
  EXPECT_EQ(mirCanon.merged().count, 1);
}

// --- timer -----------------------------------------------------------------

TEST(MetricsTimer, RecordsOnceAndOnlyWhenEnabled) {
  MetricsScope scope;
  metrics::Histogram h;
  {
    metrics::Timer timer(h);
    EXPECT_GE(timer.stop(), 0);
    timer.stop(); // second stop must not double-record
  }
  EXPECT_EQ(h.merged().count, 1);

  metrics::setEnabled(false);
  {
    metrics::Timer timer(h); // unarmed: no clock reads, no record
  }
  EXPECT_EQ(h.merged().count, 1);
}

// --- exporter --------------------------------------------------------------

TEST(MetricsExporter, StartStopLifecycle) {
  MetricsScope scope;
  metrics::Registry::global().counter("test_exporter_total").add(1);
  std::string path = tempPath("mha_metrics_exporter_test.json");
  metrics::Exporter exporter;
  std::string error;
  ASSERT_TRUE(exporter.start(path, 1, &error)) << error;
  EXPECT_TRUE(exporter.running());
  // A second start while running must fail without disturbing the first.
  EXPECT_FALSE(exporter.start(path, 1));
  EXPECT_TRUE(exporter.running());
  // Give the periodic loop a chance to write at least once.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(exporter.stop(&error)) << error;
  EXPECT_FALSE(exporter.running());
  EXPECT_GE(exporter.writeCount(), 1);
  // Double stop is a no-op.
  EXPECT_TRUE(exporter.stop());

  // The final snapshot on disk must be valid mha.metrics.v1.
  std::string text = slurp(path);
  ASSERT_FALSE(text.empty());
  std::optional<json::Value> doc = json::parse(text, &error);
  ASSERT_TRUE(doc) << error;
  EXPECT_EQ(doc->get("schema")->asString(), "mha.metrics.v1");
  std::remove(path.c_str());
}

TEST(MetricsExporter, ConcurrentStartsOnlyOneWins) {
  MetricsScope scope;
  std::string path = tempPath("mha_metrics_exporter_race_test.json");
  metrics::Exporter exporter;
  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      if (exporter.start(path, 1000))
        ++wins;
    });
  for (std::thread &thread : threads)
    thread.join();
  EXPECT_EQ(wins.load(), 1);
  EXPECT_TRUE(exporter.stop());
  std::remove(path.c_str());
}

TEST(MetricsExporter, WriteJsonFileRejectsBadPath) {
  MetricsScope scope;
  std::string error;
  EXPECT_FALSE(metrics::Registry::global().writeJsonFile(
      "/nonexistent-dir-for-metrics-test/m.json", &error));
  EXPECT_FALSE(error.empty());
}

// --- subsystem instrumentation --------------------------------------------

TEST(MetricsPool, QueueAndLatencyHistogramsPopulate) {
  MetricsScope scope;
  {
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 16; ++i)
      pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 16);
  }
  metrics::Registry &reg = metrics::Registry::global();
  EXPECT_GE(reg.counter("mha_pool_tasks_total").value(), 16);
  EXPECT_GE(reg.histogram("mha_pool_task_wait_us").merged().count, 16);
  EXPECT_GE(reg.histogram("mha_pool_task_run_us").merged().count, 16);
  // All tasks drained and the pool is destroyed: both gauges are back to 0.
  EXPECT_EQ(reg.gauge("mha_pool_queue_depth").value(), 0);
  EXPECT_EQ(reg.gauge("mha_pool_workers").value(), 0);
}

TEST(MetricsStageCache, HitMissBytesTrackLookups) {
  MetricsScope scope;
  flow::StageCache &cache = flow::StageCache::global();
  cache.clear();
  std::string text;
  EXPECT_FALSE(cache.lookupMlir(1, text));
  cache.storeMlir(1, "cached mir text");
  EXPECT_TRUE(cache.lookupMlir(1, text));
  EXPECT_EQ(text, "cached mir text");

  flow::StageCache::Counters stats = cache.stats();
  EXPECT_EQ(stats.mlirHits, 1);
  EXPECT_EQ(stats.mlirMisses, 1);
  EXPECT_EQ(stats.mlirBytes, int64_t(std::string("cached mir text").size()));
  EXPECT_DOUBLE_EQ(stats.hitRate(), 0.5);
  EXPECT_EQ(stats.bytes(), stats.mlirBytes);

  metrics::Registry &reg = metrics::Registry::global();
  EXPECT_EQ(
      reg.counter("mha_stage_cache_hits_total", "", {{"stage", "mlir"}})
          .value(),
      1);
  EXPECT_EQ(
      reg.counter("mha_stage_cache_misses_total", "", {{"stage", "mlir"}})
          .value(),
      1);
  EXPECT_EQ(reg.gauge("mha_stage_cache_bytes", "", {{"stage", "mlir"}}).value(),
            stats.mlirBytes);

  cache.clear();
  EXPECT_EQ(cache.stats().bytes(), 0);
  EXPECT_EQ(reg.gauge("mha_stage_cache_bytes", "", {{"stage", "mlir"}}).value(),
            0);
}

// --- event log -------------------------------------------------------------

TEST(EventLog, LinesAreValidJsonWithLevelsAndFields) {
  std::string path = tempPath("mha_eventlog_test.jsonl");
  elog::EventLog &log = elog::EventLog::global();
  std::string error;
  ASSERT_TRUE(log.open(path, elog::Level::Debug, &error)) << error;
  elog::info("test", "hello", {{"key", "value with \"quotes\""}});
  elog::debug("test", "debug line");
  elog::warn("test", "warn line");
  elog::error("test", "error line");
  EXPECT_EQ(log.linesWritten(), 4);
  EXPECT_EQ(log.linesDropped(), 0);
  log.close();

  std::istringstream lines(slurp(path));
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    std::optional<json::Value> doc = json::parse(line, &error);
    ASSERT_TRUE(doc) << error << " in line: " << line;
    ASSERT_NE(doc->get("ts_us"), nullptr);
    ASSERT_NE(doc->get("level"), nullptr);
    ASSERT_NE(doc->get("span"), nullptr);
    EXPECT_EQ(doc->get("subsys")->asString(), "test");
    ++parsed;
  }
  EXPECT_EQ(parsed, 4);
  std::remove(path.c_str());
}

TEST(EventLog, MinLevelFiltersBelow) {
  std::string path = tempPath("mha_eventlog_level_test.jsonl");
  elog::EventLog &log = elog::EventLog::global();
  ASSERT_TRUE(log.open(path, elog::Level::Warn));
  elog::debug("test", "dropped");
  elog::info("test", "dropped");
  elog::warn("test", "kept");
  elog::error("test", "kept");
  EXPECT_EQ(log.linesWritten(), 2);
  log.close();
  std::remove(path.c_str());
}

TEST(EventLog, SpansAreLoggedWithCorrelatedIds) {
  std::string path = tempPath("mha_eventlog_span_test.jsonl");
  elog::EventLog &log = elog::EventLog::global();
  ASSERT_TRUE(log.open(path, elog::Level::Debug));
  {
    telemetry::Span outer("outer-span", "test");
    elog::info("test", "inside outer");
    { telemetry::Span inner("inner-span", "test"); }
  }
  log.close();

  uint64_t outerId = 0, innerParent = 0, insideSpan = 0;
  std::istringstream lines(slurp(path));
  std::string line;
  while (std::getline(lines, line)) {
    std::optional<json::Value> doc = json::parse(line);
    ASSERT_TRUE(doc) << line;
    const std::string &msg = doc->get("msg")->asString();
    if (msg == "outer-span")
      outerId = static_cast<uint64_t>(doc->get("span")->asInt());
    else if (msg == "inner-span")
      innerParent = static_cast<uint64_t>(
          std::stoull(doc->get("parent")->asString()));
    else if (msg == "inside outer")
      insideSpan = static_cast<uint64_t>(doc->get("span")->asInt());
  }
  EXPECT_NE(outerId, 0u);
  // The explicit event inside the outer span carries the outer span's id,
  // and the inner span's parent is the outer span.
  EXPECT_EQ(insideSpan, outerId);
  EXPECT_EQ(innerParent, outerId);
  std::remove(path.c_str());
}

TEST(EventLog, ClosedLogIsNoOp) {
  elog::EventLog &log = elog::EventLog::global();
  ASSERT_FALSE(log.enabled());
  elog::info("test", "goes nowhere"); // must not crash or write
}

TEST(EventLog, ReopenFailsWhileOpen) {
  std::string path = tempPath("mha_eventlog_reopen_test.jsonl");
  elog::EventLog &log = elog::EventLog::global();
  ASSERT_TRUE(log.open(path, elog::Level::Info));
  std::string error;
  EXPECT_FALSE(log.open(path, elog::Level::Info, &error));
  EXPECT_FALSE(error.empty());
  log.close();
  log.close(); // idempotent
  std::remove(path.c_str());
}

TEST(EventLog, ConcurrentWritersProduceOnlyValidLines) {
  std::string path = tempPath("mha_eventlog_concurrent_test.jsonl");
  elog::EventLog &log = elog::EventLog::global();
  ASSERT_TRUE(log.open(path, elog::Level::Debug));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i)
        elog::info("test", "concurrent",
                   {{"thread", std::to_string(t)}, {"i", std::to_string(i)}});
    });
  for (std::thread &thread : threads)
    thread.join();
  EXPECT_EQ(log.linesWritten(), kThreads * kPerThread);
  EXPECT_EQ(log.linesDropped(), 0);
  log.close();

  std::istringstream lines(slurp(path));
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    ASSERT_TRUE(json::parse(line)) << "corrupt line: " << line;
    ++parsed;
  }
  EXPECT_EQ(parsed, kThreads * kPerThread);
  std::remove(path.c_str());
}

// --- level parsing ---------------------------------------------------------

TEST(EventLog, ParseLevelIsStrict) {
  EXPECT_EQ(elog::parseLevel("debug"), elog::Level::Debug);
  EXPECT_EQ(elog::parseLevel("info"), elog::Level::Info);
  EXPECT_EQ(elog::parseLevel("warn"), elog::Level::Warn);
  EXPECT_EQ(elog::parseLevel("error"), elog::Level::Error);
  EXPECT_FALSE(elog::parseLevel("INFO").has_value());
  EXPECT_FALSE(elog::parseLevel("garbage").has_value());
  EXPECT_FALSE(elog::parseLevel("").has_value());
}
