// Tests for MLIR-level transforms: canonicalization, affine->scf
// conversion, loop unroll/tile/interchange, and directive helpers.
#include "flow/Flow.h"
#include "mir/Parser.h"
#include "mir/Printer.h"
#include "mir/Verifier.h"
#include "mir/transforms/MirTransforms.h"

#include <gtest/gtest.h>

using namespace mha;
using namespace mha::mir;

namespace {

/// Builds: func @k(%A: memref<8x8xf64>) { for i in [0,8) { for j in [0,8)
/// { A[i][j] = A[i][j] * 2.0 } } }
struct NestFixture {
  MContext ctx;
  OpBuilder builder{ctx};
  OwnedModule module{OpBuilder::createModule()};
  FuncOp fn;
  ForOp outer, inner;

  NestFixture() {
    builder.setInsertPoint(module.get().body());
    fn = builder.createFunc("k",
                            ctx.fnTy({ctx.memrefTy({8, 8}, ctx.f64())}, {}));
    builder.setInsertPoint(fn.entryBlock());
    outer = builder.affineFor(0, 8);
    builder.setInsertPointToLoopBody(outer);
    inner = builder.affineFor(0, 8);
    builder.setInsertPointToLoopBody(inner);
    Value *i = outer.inductionVar(), *j = inner.inductionVar();
    Value *v = builder.affineLoad(fn.arg(0), AffineMap::identity(ctx, 2),
                                  {i, j});
    Value *two = builder.constantFloat(2.0, ctx.f64());
    builder.affineStore(builder.binary(ops::MulF, v, two), fn.arg(0),
                        AffineMap::identity(ctx, 2), {i, j});
    builder.setInsertPoint(fn.entryBlock());
    builder.createReturn();
  }

  bool verify(DiagnosticEngine &diags) {
    return verifyModule(module.get(), diags);
  }

  bool runPass(std::unique_ptr<MPass> pass, MPassStats *statsOut = nullptr) {
    MPassManager pm;
    pm.add(std::move(pass));
    DiagnosticEngine diags;
    bool ok = pm.run(module.get(), diags);
    EXPECT_TRUE(ok) << diags.str();
    if (statsOut && !pm.records().empty())
      *statsOut = pm.records().front().stats;
    return ok;
  }
};

int countOps(ModuleOp module, const char *name) {
  int count = 0;
  module.op->walk([&](Operation *op) {
    if (op->is(name))
      ++count;
  });
  return count;
}

} // namespace

TEST(MirCanonicalize, FoldsConstantsAndDCE) {
  MContext ctx;
  OpBuilder builder(ctx);
  OwnedModule module = OpBuilder::createModule();
  builder.setInsertPoint(module.get().body());
  FuncOp fn = builder.createFunc(
      "k", ctx.fnTy({ctx.memrefTy({8}, ctx.f64())}, {}));
  builder.setInsertPoint(fn.entryBlock());
  Value *a = builder.constantIndex(2);
  Value *b = builder.constantIndex(3);
  Value *sum = builder.binary(ops::AddI, a, b);     // folds to 5
  Value *dead = builder.binary(ops::MulI, sum, b);  // dead
  (void)dead;
  Value *v = builder.affineLoad(fn.arg(0), AffineMap::identity(ctx, 1),
                                {sum});
  builder.affineStore(v, fn.arg(0), AffineMap::identity(ctx, 1), {sum});
  builder.createReturn();

  MPassManager pm;
  pm.add(createCanonicalizePass());
  DiagnosticEngine diags;
  ASSERT_TRUE(pm.run(module.get(), diags)) << diags.str();

  // addi/muli gone, a 5-constant feeds the accesses.
  EXPECT_EQ(countOps(module.get(), ops::AddI), 0);
  EXPECT_EQ(countOps(module.get(), ops::MulI), 0);
  std::string out = printModule(module.get());
  EXPECT_NE(out.find("{value = 5}"), std::string::npos) << out;
}

TEST(MirCanonicalize, FoldsAffineApply) {
  MContext ctx;
  OpBuilder builder(ctx);
  OwnedModule module = OpBuilder::createModule();
  builder.setInsertPoint(module.get().body());
  FuncOp fn =
      builder.createFunc("k", ctx.fnTy({ctx.memrefTy({64}, ctx.f64())}, {}));
  builder.setInsertPoint(fn.entryBlock());
  Value *c = builder.constantIndex(7);
  AffineMap map(1, 0,
                {ctx.affineAdd(ctx.affineMul(ctx.affineDim(0),
                                             ctx.affineConst(8)),
                               ctx.affineConst(4))});
  Value *applied = builder.affineApply(map, {c});
  Value *v = builder.affineLoad(fn.arg(0), AffineMap::identity(ctx, 1),
                                {applied});
  builder.affineStore(v, fn.arg(0), AffineMap::identity(ctx, 1), {applied});
  builder.createReturn();

  MPassManager pm;
  pm.add(createCanonicalizePass());
  DiagnosticEngine diags;
  ASSERT_TRUE(pm.run(module.get(), diags)) << diags.str();
  EXPECT_EQ(countOps(module.get(), ops::AffineApply), 0);
  EXPECT_NE(printModule(module.get()).find("{value = 60}"),
            std::string::npos);
}

TEST(AffineToScf, ConvertsLoopsAndAccesses) {
  NestFixture fixture;
  MPassStats stats;
  fixture.runPass(createAffineToScfPass(), &stats);
  EXPECT_EQ(stats["affine-to-scf.loops"], 2);
  EXPECT_EQ(stats["affine-to-scf.accesses"], 2);
  EXPECT_EQ(countOps(fixture.module.get(), ops::AffineFor), 0);
  EXPECT_EQ(countOps(fixture.module.get(), ops::ScfFor), 2);
  EXPECT_EQ(countOps(fixture.module.get(), ops::MemRefLoad), 1);
  EXPECT_EQ(countOps(fixture.module.get(), ops::MemRefStore), 1);
  DiagnosticEngine diags;
  EXPECT_TRUE(fixture.verify(diags)) << diags.str();
}

TEST(AffineToScf, CarriesDirectivesAndTripCount) {
  NestFixture fixture;
  setPipelineDirective(fixture.inner, 2);
  setUnrollDirective(fixture.inner, 4);
  fixture.runPass(createAffineToScfPass());

  Operation *scfInner = nullptr;
  fixture.module.get().op->walk([&](Operation *op) {
    if (op->is(ops::ScfFor) && op->attr(hlsattr::PipelineII))
      scfInner = op;
  });
  ASSERT_NE(scfInner, nullptr);
  EXPECT_EQ(scfInner->intAttrOr(hlsattr::PipelineII, -1), 2);
  EXPECT_EQ(scfInner->intAttrOr(hlsattr::Unroll, -1), 4);
  EXPECT_EQ(scfInner->intAttrOr(hlsattr::TripCount, -1), 8);
}

TEST(AffineUnroll, UnrollByTwo) {
  NestFixture fixture;
  ASSERT_TRUE(unrollAffineLoop(fixture.inner, 2));
  DiagnosticEngine diags;
  EXPECT_TRUE(fixture.verify(diags)) << diags.str();
  EXPECT_EQ(fixture.inner.step(), 2);
  EXPECT_EQ(fixture.inner.tripCount(), 4);
  // Two loads now in the inner body.
  int loads = 0;
  for (Operation *op : fixture.inner.bodyBlock()->opPtrs())
    if (op->is(ops::AffineLoad))
      ++loads;
  EXPECT_EQ(loads, 2);
}

TEST(AffineUnroll, RejectsNonDividing) {
  NestFixture fixture;
  EXPECT_FALSE(unrollAffineLoop(fixture.inner, 3));
}

TEST(AffineUnroll, FactorOfOneOrLessIsNoOp) {
  NestFixture fixture;
  // <= 1 means "nothing to do": reported as success, IR untouched.
  EXPECT_TRUE(unrollAffineLoop(fixture.inner, 1));
  EXPECT_TRUE(unrollAffineLoop(fixture.inner, 0));
  EXPECT_TRUE(unrollAffineLoop(fixture.inner, -4));
  EXPECT_EQ(fixture.inner.step(), 1);
  EXPECT_EQ(fixture.inner.tripCount(), 8);
  int loads = 0;
  for (Operation *op : fixture.inner.bodyBlock()->opPtrs())
    if (op->is(ops::AffineLoad))
      ++loads;
  EXPECT_EQ(loads, 1);
  DiagnosticEngine diags;
  EXPECT_TRUE(fixture.verify(diags)) << diags.str();
}

TEST(AffineUnroll, RejectsFactorAboveTripCount) {
  NestFixture fixture;
  EXPECT_FALSE(unrollAffineLoop(fixture.inner, 16)); // trip is 8
  EXPECT_EQ(fixture.inner.step(), 1);
}

TEST(AffineUnroll, RejectsZeroTripLoop) {
  MContext ctx;
  OpBuilder builder(ctx);
  OwnedModule module = OpBuilder::createModule();
  builder.setInsertPoint(module.get().body());
  FuncOp fn = builder.createFunc("k", ctx.fnTy({}, {}));
  builder.setInsertPoint(fn.entryBlock());
  ForOp loop = builder.affineFor(0, 0); // empty iteration space
  builder.setInsertPoint(fn.entryBlock());
  builder.createReturn();
  EXPECT_EQ(loop.tripCount(), 0);
  EXPECT_FALSE(unrollAffineLoop(loop, 2));
}

TEST(AffineUnroll, RejectsNonAffineLoop) {
  MContext ctx;
  OpBuilder builder(ctx);
  OwnedModule module = OpBuilder::createModule();
  builder.setInsertPoint(module.get().body());
  FuncOp fn = builder.createFunc("k", ctx.fnTy({}, {}));
  builder.setInsertPoint(fn.entryBlock());
  Value *lb = builder.constantIndex(0);
  Value *ub = builder.constantIndex(8);
  Value *step = builder.constantIndex(1);
  ForOp loop = builder.scfFor(lb, ub, step);
  builder.setInsertPoint(fn.entryBlock());
  builder.createReturn();
  // scf.for carries runtime bounds (unknown trip count); the affine
  // unroller must refuse it rather than guess.
  EXPECT_FALSE(unrollAffineLoop(loop, 2));
}

TEST(AffineUnroll, PassConsumesAttribute) {
  NestFixture fixture;
  fixture.inner.op->setAttr("mha.unroll_now", fixture.ctx.intAttr(4));
  MPassStats stats;
  fixture.runPass(createAffineUnrollPass(), &stats);
  EXPECT_EQ(stats["affine-unroll.unrolled"], 1);
  EXPECT_EQ(fixture.inner.op->attr("mha.unroll_now"), nullptr);
  EXPECT_EQ(fixture.inner.step(), 4);
}

TEST(LoopInterchange, SwapsPerfectNest) {
  NestFixture fixture;
  // Make bounds distinguishable.
  fixture.outer.op->setAttr("ub", fixture.ctx.intAttr(16));
  ASSERT_TRUE(interchangeAffineLoops(fixture.outer));
  DiagnosticEngine diags;
  EXPECT_TRUE(fixture.verify(diags)) << diags.str();
  // Bounds swapped: outer now runs to 8, inner to 16.
  EXPECT_EQ(fixture.outer.upperBound(), 8);
  EXPECT_EQ(fixture.inner.upperBound(), 16);
}

TEST(LoopInterchange, RejectsImperfectNest) {
  NestFixture fixture;
  // Add a statement between the loops -> imperfect.
  OpBuilder builder(fixture.ctx);
  builder.setInsertPointToLoopBody(fixture.outer);
  builder.constantIndex(1);
  EXPECT_FALSE(interchangeAffineLoops(fixture.outer));
}

TEST(LoopTiling, TilesByFour) {
  NestFixture fixture;
  ASSERT_TRUE(tileAffineLoop(fixture.inner, 4));
  DiagnosticEngine diags;
  EXPECT_TRUE(fixture.verify(diags)) << diags.str();
  // The nest now has three loops.
  int loops = countOps(fixture.module.get(), ops::AffineFor);
  EXPECT_EQ(loops, 3);
}

TEST(LoopTiling, RejectsNonDividingTile) {
  NestFixture fixture;
  EXPECT_FALSE(tileAffineLoop(fixture.inner, 3));
}

TEST(Directives, PartitionAccumulates) {
  NestFixture fixture;
  addArrayPartitionDirective(fixture.fn, 0, 1, 4, "cyclic");
  addArrayPartitionDirective(fixture.fn, 0, 0, 2, "block");
  const auto *attr =
      dyn_cast<ArrayAttr>(fixture.fn.op->attr(hlsattr::ArrayPartition));
  ASSERT_NE(attr, nullptr);
  EXPECT_EQ(attr->value().size(), 2u);
  const auto *first = cast<ArrayAttr>(attr->value()[0]);
  EXPECT_EQ(cast<IntegerAttr>(first->value()[2])->value(), 4);
  EXPECT_EQ(cast<StringAttr>(first->value()[3])->value(), "cyclic");
}

TEST(ExpandAffine, GeneratesArith) {
  MContext ctx;
  OpBuilder builder(ctx);
  OwnedModule module = OpBuilder::createModule();
  builder.setInsertPoint(module.get().body());
  FuncOp fn = builder.createFunc("k", ctx.fnTy({}, {}));
  builder.setInsertPoint(fn.entryBlock());
  Value *d0 = builder.constantIndex(10);
  // (d0 * 4 + 3) mod 8
  const AffineExpr *expr = ctx.affineMod(
      ctx.affineAdd(ctx.affineMul(ctx.affineDim(0), ctx.affineConst(4)),
                    ctx.affineConst(3)),
      ctx.affineConst(8));
  Value *result = expandAffineExpr(builder, expr, {d0});
  (void)result;
  builder.createReturn();
  // Fold everything and check the value.
  MPassManager pm;
  pm.add(createCanonicalizePass());
  DiagnosticEngine diags;
  // The expansion result is dead, so keep it alive via a store-less check:
  // simply ensure the ops fold without error and the module verifies.
  ASSERT_TRUE(pm.run(module.get(), diags)) << diags.str();
}

TEST(LoopTiling, TiledNestStillComputesCorrectly) {
  // Tile the inner loop of a saxpy-like kernel at the MLIR level, then run
  // the full adaptor flow and co-simulate: tiling must be semantics-
  // preserving end to end.
  flow::KernelSpec spec;
  spec.name = "tiled";
  spec.bufferShapes = {{64}, {64}};
  spec.outputs = {1};
  spec.build = [](MContext &ctx, const flow::KernelConfig &) {
    OpBuilder b(ctx);
    OwnedModule module = OpBuilder::createModule();
    b.setInsertPoint(module.get().body());
    FuncOp fn = b.createFunc("tiled", ctx.fnTy({ctx.memrefTy({64}, ctx.f64()),
                                                ctx.memrefTy({64}, ctx.f64())},
                                               {}));
    b.setInsertPoint(fn.entryBlock());
    ForOp loop = b.affineFor(0, 64);
    b.setInsertPointToLoopBody(loop);
    AffineMap id = AffineMap::identity(ctx, 1);
    Value *i = loop.inductionVar();
    Value *x = b.affineLoad(fn.arg(0), id, {i});
    Value *y = b.affineLoad(fn.arg(1), id, {i});
    b.affineStore(b.binary(ops::AddF, b.binary(ops::MulF, x, x), y),
                  fn.arg(1), id, {i});
    b.setInsertPoint(fn.entryBlock());
    b.createReturn();
    EXPECT_TRUE(tileAffineLoop(loop, 8));
    return module;
  };
  spec.reference = [](flow::Buffers &buf) {
    for (int64_t i = 0; i < 64; ++i)
      buf[1][i] = buf[0][i] * buf[0][i] + buf[1][i];
  };

  flow::FlowResult result = flow::runAdaptorFlow(spec, {});
  ASSERT_TRUE(result.ok) << result.diagnostics;
  std::string error;
  EXPECT_TRUE(flow::cosimAgainstReference(result, spec, error)) << error;
}
