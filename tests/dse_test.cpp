// Tests for the design-space exploration subsystem: space enumeration and
// canonicalization, the QoR cache (no re-synthesis, JSON round-trip), the
// Pareto archive, and the search strategies (exhaustive frontier
// exactness vs the legacy hand-rolled sweep, seeded determinism).
#include "dse/Dse.h"
#include "dse/QoREstimation.h"
#include "lir/transforms/LoopUnroll.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace mha;
using namespace mha::dse;

namespace {

const flow::KernelSpec &kernel(const char *name) {
  const flow::KernelSpec *spec = flow::findKernel(name);
  EXPECT_NE(spec, nullptr) << name;
  return *spec;
}

/// The deliberately small grid the CLI smoke tests also use: 8 points on
/// a single-nest kernel, fast enough to synthesize exhaustively.
DesignSpaceOptions smallGrid() {
  DesignSpaceOptions options;
  options.pipelineIIs = {0, 1};
  options.unrollFactors = {1, 2};
  options.partitionFactors = {1, 2};
  return options;
}

std::set<std::string> archiveKeys(const std::vector<ArchiveEntry> &entries) {
  std::set<std::string> keys;
  for (const ArchiveEntry &entry : entries)
    keys.insert(entry.key);
  return keys;
}

std::vector<std::string> visitKeys(const std::vector<VisitedPoint> &visited) {
  std::vector<std::string> keys;
  for (const VisitedPoint &point : visited)
    keys.push_back(configKey(point.config));
  return keys;
}

QoR makeQoR(int64_t latency, int64_t dsp, int64_t lut = 100) {
  QoR qor;
  qor.ok = true;
  qor.latencyCycles = latency;
  qor.dsp = dsp;
  qor.bram = 0;
  qor.lut = lut;
  qor.ff = lut;
  return qor;
}

flow::KernelConfig makeConfig(int64_t ii, int64_t unroll, int64_t partition) {
  flow::KernelConfig config;
  config.pipelineII = ii;
  config.unrollFactor = unroll;
  config.partitionFactor = partition;
  config.dataflow = false;
  config.applyDirectives = ii > 0 || unroll > 1 || partition > 1;
  return config;
}

} // namespace

// ---------------------------------------------------------------------------
// DesignSpace

TEST(DesignSpace, BaselineFirstAndPointsUnique) {
  DesignSpace space(kernel("fir"), smallGrid());
  ASSERT_GT(space.size(), 0u);
  // The unoptimized design leads the enumeration.
  EXPECT_EQ(configKey(space.points().front()), configKey(space.baseline()));
  EXPECT_FALSE(space.points().front().applyDirectives);
  std::set<std::string> keys;
  for (const flow::KernelConfig &point : space.points()) {
    EXPECT_TRUE(space.contains(point));
    EXPECT_TRUE(keys.insert(configKey(point)).second)
        << "duplicate point " << configKey(point);
  }
  // 2*2*2 grid cells, one of which (ii=0,u=1,p=1) folds into the baseline.
  EXPECT_EQ(space.size(), 8u);
}

TEST(DesignSpace, AllDefaultKnobsFoldIntoBaseline) {
  DesignSpace space(kernel("fir"), smallGrid());
  flow::KernelConfig noop;
  noop.pipelineII = 0;
  noop.unrollFactor = 1;
  noop.partitionFactor = 1;
  noop.dataflow = false;
  noop.applyDirectives = true; // directives "on" but nothing requested
  EXPECT_EQ(configKey(space.canonicalize(noop)), configKey(space.baseline()));
}

TEST(DesignSpace, ClampsUnrollToInnermostTripDivisor) {
  DesignSpace space(kernel("fir"), smallGrid());
  int64_t trip = space.minInnermostTripCount();
  ASSERT_GT(trip, 1);
  // A non-dividing request lands on the largest divisor below it, exactly
  // like the backend's lir::clampUnrollFactor.
  flow::KernelConfig config = makeConfig(0, trip + 1, 1);
  EXPECT_EQ(space.canonicalize(config).unrollFactor, trip);
  config = makeConfig(0, 3, 1);
  EXPECT_EQ(space.canonicalize(config).unrollFactor,
            lir::clampUnrollFactor(trip, 3));
}

TEST(DesignSpace, DataflowOnlyOnMultiNestKernels) {
  // fir is one loop nest: the dataflow directive is a no-op there and the
  // space must not enumerate it.
  DesignSpace fir(kernel("fir"), smallGrid());
  EXPECT_FALSE(fir.multiNest());
  flow::KernelConfig config = makeConfig(1, 1, 1);
  config.dataflow = true;
  EXPECT_FALSE(fir.canonicalize(config).dataflow);

  // mm2 chains two gemms: dataflow is meaningful and doubles the grid.
  DesignSpace mm2(kernel("mm2"), smallGrid());
  EXPECT_TRUE(mm2.multiNest());
  EXPECT_TRUE(mm2.canonicalize(config).dataflow);
  // Every point gets a dataflow twin — including the otherwise-default
  // knobs, since dataflow alone is a real directive, not the baseline.
  EXPECT_EQ(mm2.size(), 2 * fir.size());
}

TEST(DesignSpace, NeighborsDifferInExactlyOneKnob) {
  DesignSpace space(kernel("fir"), smallGrid());
  for (const flow::KernelConfig &point : space.points()) {
    for (const flow::KernelConfig &next : space.neighbors(point)) {
      EXPECT_TRUE(space.contains(next));
      int differing = (next.pipelineII != point.pipelineII) +
                      (next.unrollFactor != point.unrollFactor) +
                      (next.partitionFactor != point.partitionFactor) +
                      (next.dataflow != point.dataflow);
      EXPECT_EQ(differing, 1)
          << configKey(point) << " -> " << configKey(next);
    }
  }
}

// ---------------------------------------------------------------------------
// ParetoArchive

TEST(ParetoArchive, KeepsNonDominatedRemovesDominated) {
  ParetoArchive archive(latencyDspObjectives());
  EXPECT_TRUE(archive.insert(makeConfig(0, 1, 1), makeQoR(100, 10)));
  // Worse on both axes: rejected.
  EXPECT_FALSE(archive.insert(makeConfig(0, 1, 2), makeQoR(120, 12)));
  EXPECT_EQ(archive.size(), 1u);
  // Trade-off: both survive.
  EXPECT_TRUE(archive.insert(makeConfig(0, 2, 1), makeQoR(50, 20)));
  EXPECT_EQ(archive.size(), 2u);
  // Dominates the first entry: it enters, the first leaves.
  EXPECT_TRUE(archive.insert(makeConfig(1, 1, 1), makeQoR(90, 10)));
  EXPECT_EQ(archive.size(), 2u);
  EXPECT_FALSE(archive.containsKey(configKey(makeConfig(0, 1, 1))));
}

TEST(ParetoArchive, EqualVectorsBothSurvive) {
  // A tied design is not strictly better: the classic frontier keeps both
  // (this matches the legacy example's none_of(noWorse && better) rule).
  ParetoArchive archive(latencyDspObjectives());
  EXPECT_TRUE(archive.insert(makeConfig(1, 1, 1), makeQoR(100, 10)));
  EXPECT_TRUE(archive.insert(makeConfig(1, 1, 2), makeQoR(100, 10)));
  EXPECT_EQ(archive.size(), 2u);
}

TEST(ParetoArchive, RejectsFailedAndMismatchingDesigns) {
  ParetoArchive archive;
  QoR failed;
  failed.ok = false;
  EXPECT_FALSE(archive.insert(makeConfig(0, 1, 1), failed));
  QoR mismatch = makeQoR(10, 1);
  mismatch.cosimOk = false;
  EXPECT_FALSE(archive.insert(makeConfig(1, 1, 1), mismatch));
  EXPECT_EQ(archive.size(), 0u);
}

TEST(ParetoArchive, DeterministicOrderIgnoresInsertionOrder) {
  std::vector<std::pair<flow::KernelConfig, QoR>> designs = {
      {makeConfig(2, 1, 1), makeQoR(80, 14)},
      {makeConfig(1, 1, 1), makeQoR(100, 10)},
      {makeConfig(1, 2, 1), makeQoR(60, 20)},
      {makeConfig(1, 2, 2), makeQoR(60, 20)},
  };
  ParetoArchive forward;
  for (const auto &[config, qor] : designs)
    forward.insert(config, qor);
  ParetoArchive backward;
  for (auto it = designs.rbegin(); it != designs.rend(); ++it)
    backward.insert(it->first, it->second);
  ASSERT_EQ(forward.size(), backward.size());
  for (size_t i = 0; i < forward.size(); ++i)
    EXPECT_EQ(forward.entries()[i].key, backward.entries()[i].key);
  // Sorted by objective vector: the fastest design leads.
  EXPECT_EQ(forward.entries().front().qor.latencyCycles, 60);
}

// ---------------------------------------------------------------------------
// Evaluator / QoR cache

TEST(Evaluator, SecondEvaluationPerformsNoSynthesis) {
  DesignSpace space(kernel("fir"), smallGrid());
  Evaluator evaluator(kernel("fir"));
  flow::KernelConfig point = space.points()[1];
  QoR first = evaluator.evaluate(point);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(evaluator.synthRuns(), 1);
  QoR second = evaluator.evaluate(point);
  // The synthesis-count statistic is unchanged: pure cache hit.
  EXPECT_EQ(evaluator.synthRuns(), 1);
  EXPECT_EQ(evaluator.cacheHits(), 1);
  EXPECT_EQ(second.latencyCycles, first.latencyCycles);
  EXPECT_EQ(second.dsp, first.dsp);
  EXPECT_EQ(second.lut, first.lut);
}

TEST(Evaluator, CacheJsonRoundTripPreservesResults) {
  DesignSpace space(kernel("fir"), smallGrid());
  Evaluator evaluator(kernel("fir"));
  std::vector<QoR> direct = evaluator.evaluateAll(space.points());
  ASSERT_EQ(direct.size(), space.size());
  EXPECT_EQ(evaluator.synthRuns(), static_cast<int64_t>(space.size()));

  std::string text = evaluator.cacheJson();
  EXPECT_TRUE(json::validate(text));

  Evaluator resumed(kernel("fir"));
  std::string error;
  ASSERT_TRUE(resumed.loadCacheJson(text, &error)) << error;
  EXPECT_EQ(resumed.cacheSize(), evaluator.cacheSize());
  std::vector<QoR> reloaded = resumed.evaluateAll(space.points());
  // Every point answered from the reloaded cache, bit-for-bit equal.
  EXPECT_EQ(resumed.synthRuns(), 0);
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(reloaded[i].ok, direct[i].ok);
    EXPECT_EQ(reloaded[i].latencyCycles, direct[i].latencyCycles);
    EXPECT_EQ(reloaded[i].dsp, direct[i].dsp);
    EXPECT_EQ(reloaded[i].bram, direct[i].bram);
    EXPECT_EQ(reloaded[i].lut, direct[i].lut);
    EXPECT_EQ(reloaded[i].ff, direct[i].ff);
  }
}

TEST(Evaluator, LoadCacheRejectsForeignDocuments) {
  Evaluator evaluator(kernel("fir"));
  std::string error;
  EXPECT_FALSE(evaluator.loadCacheJson("not json", &error));
  EXPECT_FALSE(evaluator.loadCacheJson(R"({"schema":"wrong"})", &error));
  // A cache recorded for another kernel must not poison this one.
  Evaluator other(kernel("gemm"));
  other.evaluate(makeConfig(1, 1, 1));
  EXPECT_FALSE(evaluator.loadCacheJson(other.cacheJson(), &error));
  EXPECT_EQ(evaluator.cacheSize(), 0u);
}

// ---------------------------------------------------------------------------
// Strategies

TEST(Strategies, FactoryKnowsAllNamesRejectsUnknown) {
  for (const std::string &name : strategyNames()) {
    std::unique_ptr<SearchStrategy> strategy = createStrategy(name);
    ASSERT_NE(strategy, nullptr) << name;
    EXPECT_EQ(strategy->name(), name);
  }
  EXPECT_EQ(createStrategy("frobnicate"), nullptr);
}

TEST(Strategies, ExhaustiveReproducesLegacyExampleFrontier) {
  DesignSpace space(kernel("fir"), smallGrid());
  Evaluator evaluator(kernel("fir"));
  std::optional<DseResult> result =
      runDse(space, evaluator, "exhaustive", {}, latencyDspObjectives());
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->visited.size(), space.size());

  // The hand-rolled rule the old examples/design_space_exploration.cpp
  // used: p survives iff no q is no-worse on (latency, dsp) and strictly
  // better on one.
  std::set<std::string> legacy;
  for (const VisitedPoint &p : result->visited) {
    if (!p.qor.ok)
      continue;
    bool dominated = std::any_of(
        result->visited.begin(), result->visited.end(),
        [&](const VisitedPoint &q) {
          if (!q.qor.ok || &q == &p)
            return false;
          bool noWorse = q.qor.latencyCycles <= p.qor.latencyCycles &&
                         q.qor.dsp <= p.qor.dsp;
          bool better = q.qor.latencyCycles < p.qor.latencyCycles ||
                        q.qor.dsp < p.qor.dsp;
          return noWorse && better;
        });
    if (!dominated)
      legacy.insert(configKey(p.config));
  }
  EXPECT_EQ(archiveKeys(result->pareto), legacy);
}

TEST(Strategies, RandomIsSeedDeterministic) {
  DesignSpace space(kernel("fir"), smallGrid());
  Evaluator evaluator(kernel("fir"));
  StrategyOptions options;
  options.budget = 4;
  options.seed = 7;
  std::optional<DseResult> first = runDse(space, evaluator, "random", options);
  std::optional<DseResult> second = runDse(space, evaluator, "random", options);
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->visited.size(), 4u);
  // Same seed, same walk — even though the second run is all cache hits.
  EXPECT_EQ(visitKeys(first->visited), visitKeys(second->visited));
  EXPECT_EQ(archiveKeys(first->pareto), archiveKeys(second->pareto));

  StrategyOptions reseeded = options;
  reseeded.seed = 8;
  std::optional<DseResult> other = runDse(space, evaluator, "random", reseeded);
  ASSERT_TRUE(other.has_value());
  EXPECT_NE(visitKeys(first->visited), visitKeys(other->visited));
}

TEST(Strategies, RandomFullBudgetMatchesExhaustiveFrontier) {
  DesignSpace space(kernel("fir"), smallGrid());
  Evaluator evaluator(kernel("fir"));
  std::optional<DseResult> full = runDse(space, evaluator, "exhaustive", {});
  StrategyOptions options;
  options.budget = space.size();
  options.seed = 3;
  std::optional<DseResult> sampled =
      runDse(space, evaluator, "random", options);
  ASSERT_TRUE(full && sampled);
  // Covering the whole space in any order yields the same archive.
  EXPECT_EQ(archiveKeys(sampled->pareto), archiveKeys(full->pareto));
}

TEST(Strategies, GreedyIsDeterministicAndArchiveWithinExhaustive) {
  DesignSpace space(kernel("fir"), smallGrid());
  Evaluator evaluator(kernel("fir"));
  StrategyOptions options;
  options.budget = 12;
  std::optional<DseResult> first = runDse(space, evaluator, "greedy", options);
  std::optional<DseResult> second = runDse(space, evaluator, "greedy", options);
  ASSERT_TRUE(first && second);
  EXPECT_EQ(visitKeys(first->visited), visitKeys(second->visited));

  // Hill-climbing starts from the unoptimized baseline.
  ASSERT_FALSE(first->visited.empty());
  EXPECT_EQ(visitKeys(first->visited).front(), configKey(space.baseline()));

  // On this grid the local search's archive is a subset of the exhaustive
  // frontier (the QoR model is deterministic, so this stays true).
  std::optional<DseResult> full = runDse(space, evaluator, "exhaustive", {});
  ASSERT_TRUE(full.has_value());
  std::set<std::string> fullKeys = archiveKeys(full->pareto);
  for (const ArchiveEntry &entry : first->pareto)
    EXPECT_TRUE(fullKeys.count(entry.key))
        << entry.key << " not on the exhaustive frontier";
}

TEST(Strategies, BudgetBoundsEvaluatorRequests) {
  DesignSpace space(kernel("fir"), smallGrid());
  Evaluator evaluator(kernel("fir"));
  StrategyOptions options;
  options.budget = 3;
  std::optional<DseResult> result =
      runDse(space, evaluator, "exhaustive", options);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->visited.size(), 3u);
  EXPECT_EQ(result->evaluated, 3u);
}

// ---------------------------------------------------------------------------
// Run driver / report JSON

TEST(Dse, UnknownStrategyReturnsNullopt) {
  DesignSpace space(kernel("fir"), smallGrid());
  Evaluator evaluator(kernel("fir"));
  EXPECT_FALSE(runDse(space, evaluator, "frobnicate", {}).has_value());
}

TEST(Dse, ReportJsonValidatesAndCarriesTheRun) {
  DesignSpace space(kernel("fir"), smallGrid());
  Evaluator evaluator(kernel("fir"));
  std::optional<DseResult> result = runDse(space, evaluator, "exhaustive", {});
  ASSERT_TRUE(result.has_value());
  std::string text = result->json();
  std::string error;
  ASSERT_TRUE(json::validate(text, &error)) << error;

  std::optional<json::Value> doc = json::parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->get("schema")->asString(), "mha.dse.v1");
  EXPECT_EQ(doc->get("kernel")->asString(), "fir");
  EXPECT_EQ(doc->get("strategy")->asString(), "exhaustive");
  EXPECT_EQ(doc->get("space_size")->asInt(), 8);
  ASSERT_NE(doc->get("points"), nullptr);
  EXPECT_EQ(doc->get("points")->elements().size(), result->visited.size());
  ASSERT_NE(doc->get("pareto"), nullptr);
  EXPECT_EQ(doc->get("pareto")->elements().size(), result->pareto.size());
  const json::Value &point = doc->get("points")->elements().front();
  for (const char *field : {"ii", "unroll", "partition", "latency", "dsp",
                            "bram", "lut", "ff"})
    EXPECT_NE(point.get(field), nullptr) << field;

  // The estimator/warm-start accounting fields are always present.
  for (const char *field :
       {"estimated", "warm_started", "cache_waits", "estimator"})
    EXPECT_NE(doc->get(field), nullptr) << field;
  const json::Value *estimator = doc->get("estimator");
  for (const char *field :
       {"used", "probe_runs", "estimates", "error_samples",
        "latency_mean_abs_pct", "latency_max_abs_pct", "dsp_mean_abs_pct",
        "bram_mean_abs_pct", "lut_mean_abs_pct"})
    EXPECT_NE(estimator->get(field), nullptr) << field;
}

// ---------------------------------------------------------------------------
// Config-key parsing (the --resume warm-start path)

TEST(ConfigKey, ParseRoundTripsEveryEnumeratedPoint) {
  DesignSpace space(kernel("gesummv")); // multi-nest: dataflow keys too
  for (const flow::KernelConfig &config : space.points()) {
    std::string key = configKey(config);
    std::optional<flow::KernelConfig> parsed = parseConfigKey(key);
    ASSERT_TRUE(parsed.has_value()) << key;
    EXPECT_EQ(configKey(*parsed), key);
  }
}

TEST(ConfigKey, ParseRejectsMalformedKeys) {
  for (const char *bad :
       {"", "ii=1", "ii=1|unroll=2|part=4|df=0", "ii=x|unroll=2|part=4|df=0|dir=1",
        "ii=1|unroll=2|part=4|df=2|dir=1", "unroll=2|ii=1|part=4|df=0|dir=1",
        "ii=1|unroll=2|part=4|df=0|dir=1|extra=9"})
    EXPECT_FALSE(parseConfigKey(bad).has_value()) << bad;
}

TEST(Dse, WarmStartReseedsArchiveFromCache) {
  DesignSpace space(kernel("fir"), smallGrid());

  // First run: exhaustive, populating the cache (as --cache would persist).
  Evaluator first(kernel("fir"));
  std::optional<DseResult> full = runDse(space, first, "exhaustive", {});
  ASSERT_TRUE(full.has_value());

  // Second run resumes from the same cache with a tiny budget. Without
  // warm start the archive would only hold the single visited point; with
  // it, the previous frontier survives.
  Evaluator second(kernel("fir"));
  std::string error;
  ASSERT_TRUE(second.loadCacheJson(first.cacheJson(), &error)) << error;
  StrategyOptions options;
  options.budget = 1;
  options.warmStart = true;
  std::optional<DseResult> resumed =
      runDse(space, second, "exhaustive", options);
  ASSERT_TRUE(resumed.has_value());
  EXPECT_GT(resumed->warmStarted, 0u);
  EXPECT_EQ(resumed->evaluated, 1u);
  EXPECT_EQ(archiveKeys(resumed->pareto), archiveKeys(full->pareto));
  // And the resumed run performed no synthesis at all (all cached).
  EXPECT_EQ(second.synthRuns(), 0);
}

// ---------------------------------------------------------------------------
// Estimator-guided strategies

TEST(Strategies, RefineFrontierContainsExhaustiveFrontier) {
  DesignSpace space(kernel("fir"), smallGrid());
  Evaluator exhaustiveEval(kernel("fir"));
  std::optional<DseResult> full =
      runDse(space, exhaustiveEval, "exhaustive", {});
  ASSERT_TRUE(full.has_value());

  Evaluator refineEval(kernel("fir"));
  std::optional<DseResult> refined = runDse(space, refineEval, "refine", {});
  ASSERT_TRUE(refined.has_value());
  EXPECT_GT(refined->estimated, 0u);

  std::set<std::string> refinedKeys = archiveKeys(refined->pareto);
  for (const ArchiveEntry &entry : full->pareto)
    EXPECT_TRUE(refinedKeys.count(entry.key))
        << entry.key << " on the exhaustive frontier but not refine's";
}

TEST(Strategies, GeneticAndAnnealAreSeedDeterministic) {
  for (const char *name : {"genetic", "anneal"}) {
    DesignSpace space(kernel("fir"), smallGrid());
    StrategyOptions options;
    options.seed = 42;
    options.populationSize = 4;
    options.generations = 3;
    options.annealSteps = 12;
    Evaluator a(kernel("fir"));
    Evaluator b(kernel("fir"));
    std::optional<DseResult> first = runDse(space, a, name, options);
    std::optional<DseResult> second = runDse(space, b, name, options);
    ASSERT_TRUE(first.has_value()) << name;
    ASSERT_TRUE(second.has_value()) << name;
    EXPECT_EQ(visitKeys(first->visited), visitKeys(second->visited)) << name;
    EXPECT_EQ(first->estimated, second->estimated) << name;
    EXPECT_EQ(archiveKeys(first->pareto), archiveKeys(second->pareto))
        << name;
  }
}

TEST(Strategies, EstimateOnlySynthesizesOnlyTheProbes) {
  DesignSpace space(kernel("fir"), smallGrid());
  Evaluator evaluator(kernel("fir"));
  StrategyOptions options;
  options.estimateOnly = true;
  std::optional<DseResult> result =
      runDse(space, evaluator, "exhaustive", options);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->evaluated, space.size());
  EXPECT_EQ(result->estimated, space.size());
  EXPECT_EQ(evaluator.synthRuns(), QoREstimation::kProbeRuns);
  EXPECT_GE(evaluator.estimates(), static_cast<int64_t>(space.size()));
  EXPECT_FALSE(result->pareto.empty());
}

TEST(Evaluator, CacheWaitCounterStartsAtZeroAndHitsDoNotWait) {
  Evaluator evaluator(kernel("fir"));
  flow::KernelConfig config; // default directive point
  evaluator.evaluate(config);
  evaluator.evaluate(config); // sequential re-visit: a hit, not a wait
  EXPECT_EQ(evaluator.synthRuns(), 1);
  EXPECT_EQ(evaluator.cacheHits(), 1);
  EXPECT_EQ(evaluator.cacheWaits(), 0);
}
