// Incremental recompilation (StageCache) and parallel pass execution.
//
// The stage cache must behave like a correct memo table: a second
// identical compile answers every stage from cache with identical
// results, and an edit invalidates exactly the edited stage and its
// downstream — never upstream. Parallel function-pass execution must be
// observationally identical to serial execution (same IR, same merged
// stats), since results are merged in deterministic function order.
#include "flow/BatchRunner.h"
#include "flow/Flow.h"
#include "flow/StageCache.h"
#include "lir/LContext.h"
#include "lir/Parser.h"
#include "lir/Printer.h"
#include "lir/transforms/Transforms.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

using namespace mha;

namespace {

flow::FlowOptions cachedOptions() {
  flow::FlowOptions options;
  options.useStageCache = true;
  return options;
}

const flow::KernelSpec &gemm() {
  const flow::KernelSpec *spec = flow::findKernel("gemm");
  EXPECT_NE(spec, nullptr);
  return *spec;
}

flow::StageCache::Counters delta(const flow::StageCache::Counters &before) {
  flow::StageCache::Counters now = flow::StageCache::global().counters();
  flow::StageCache::Counters d;
  d.mlirHits = now.mlirHits - before.mlirHits;
  d.mlirMisses = now.mlirMisses - before.mlirMisses;
  d.bridgeHits = now.bridgeHits - before.bridgeHits;
  d.bridgeMisses = now.bridgeMisses - before.bridgeMisses;
  d.synthHits = now.synthHits - before.synthHits;
  d.synthMisses = now.synthMisses - before.synthMisses;
  return d;
}

} // namespace

TEST(StageCache, SecondIdenticalCompileHitsEveryStage) {
  flow::StageCache::global().clear();
  flow::KernelConfig config;

  auto before = flow::StageCache::global().counters();
  flow::FlowResult cold = flow::runAdaptorFlow(gemm(), config,
                                               cachedOptions());
  ASSERT_TRUE(cold.ok) << cold.diagnostics;
  auto coldDelta = delta(before);
  EXPECT_EQ(coldDelta.hits(), 0);
  EXPECT_EQ(coldDelta.mlirMisses, 1);
  EXPECT_EQ(coldDelta.bridgeMisses, 1);
  EXPECT_EQ(coldDelta.synthMisses, 1);

  before = flow::StageCache::global().counters();
  flow::FlowResult warm = flow::runAdaptorFlow(gemm(), config,
                                               cachedOptions());
  ASSERT_TRUE(warm.ok) << warm.diagnostics;
  auto warmDelta = delta(before);
  EXPECT_EQ(warmDelta.misses(), 0);
  EXPECT_EQ(warmDelta.mlirHits, 1);
  EXPECT_EQ(warmDelta.bridgeHits, 1);
  EXPECT_EQ(warmDelta.synthHits, 1);

  // Same answers from the cache: identical synthesis report and IR.
  ASSERT_NE(cold.synth.top(), nullptr);
  ASSERT_NE(warm.synth.top(), nullptr);
  EXPECT_EQ(cold.synth.top()->latencyCycles, warm.synth.top()->latencyCycles);
  EXPECT_EQ(cold.synth.top()->resources.dsp, warm.synth.top()->resources.dsp);
  EXPECT_EQ(cold.adaptorStats, warm.adaptorStats);

  // The restored module still co-simulates against the host reference.
  std::string error;
  EXPECT_TRUE(flow::cosimAgainstReference(warm, gemm(), error)) << error;
}

TEST(StageCache, HlsCppFlowRestoresEmittedSourceByteIdentical) {
  flow::StageCache::global().clear();
  flow::KernelConfig config;
  flow::FlowResult cold = flow::runHlsCppFlow(gemm(), config,
                                              cachedOptions());
  ASSERT_TRUE(cold.ok) << cold.diagnostics;
  flow::FlowResult warm = flow::runHlsCppFlow(gemm(), config,
                                              cachedOptions());
  ASSERT_TRUE(warm.ok) << warm.diagnostics;
  EXPECT_FALSE(cold.hlsCpp.empty());
  EXPECT_EQ(cold.hlsCpp, warm.hlsCpp);
}

TEST(StageCache, EditInvalidatesExactlyDownstreamStages) {
  flow::StageCache::global().clear();
  flow::KernelConfig config;
  flow::FlowResult cold = flow::runAdaptorFlow(gemm(), config,
                                               cachedOptions());
  ASSERT_TRUE(cold.ok) << cold.diagnostics;

  // Synthesis-only edit: upstream stages stay cached, synth recomputes.
  auto before = flow::StageCache::global().counters();
  flow::FlowOptions synthEdit = cachedOptions();
  synthEdit.synthesis.target.clockPeriodNs = 7.5;
  flow::FlowResult r1 = flow::runAdaptorFlow(gemm(), config, synthEdit);
  ASSERT_TRUE(r1.ok) << r1.diagnostics;
  auto d1 = delta(before);
  EXPECT_EQ(d1.mlirHits, 1);
  EXPECT_EQ(d1.bridgeHits, 1);
  EXPECT_EQ(d1.synthMisses, 1);
  EXPECT_EQ(d1.synthHits, 0);

  // Bridge-level edit: the MLIR stage stays cached, bridge and synth
  // recompute (the bridge output differs, so its synth key differs).
  before = flow::StageCache::global().counters();
  flow::FlowOptions bridgeEdit = cachedOptions();
  bridgeEdit.adaptor.fusePasses = true;
  flow::FlowResult r2 = flow::runAdaptorFlow(gemm(), config, bridgeEdit);
  ASSERT_TRUE(r2.ok) << r2.diagnostics;
  auto d2 = delta(before);
  EXPECT_EQ(d2.mlirHits, 1);
  EXPECT_EQ(d2.bridgeMisses, 1);
  EXPECT_EQ(d2.bridgeHits, 0);

  // Config edit: everything from the MLIR stage down recomputes.
  before = flow::StageCache::global().counters();
  flow::KernelConfig edited = config;
  edited.unrollFactor = 2;
  flow::FlowResult r3 = flow::runAdaptorFlow(gemm(), edited,
                                             cachedOptions());
  ASSERT_TRUE(r3.ok) << r3.diagnostics;
  auto d3 = delta(before);
  EXPECT_EQ(d3.mlirMisses, 1);
  EXPECT_EQ(d3.mlirHits, 0);
  EXPECT_EQ(d3.bridgeMisses, 1);
  EXPECT_EQ(d3.synthMisses, 1);
}

TEST(StageCache, FusedPipelineMatchesUnfusedResults) {
  flow::StageCache::global().clear();
  flow::KernelConfig config;
  flow::FlowOptions plain;
  flow::FlowOptions fused;
  fused.adaptor.fusePasses = true;
  flow::FlowResult a = flow::runAdaptorFlow(gemm(), config, plain);
  flow::FlowResult b = flow::runAdaptorFlow(gemm(), config, fused);
  ASSERT_TRUE(a.ok) << a.diagnostics;
  ASSERT_TRUE(b.ok) << b.diagnostics;
  ASSERT_NE(a.module, nullptr);
  ASSERT_NE(b.module, nullptr);
  EXPECT_EQ(lir::printModule(*a.module), lir::printModule(*b.module));
  // Stat keys are per-transform (not per-pass-instance), so fused and
  // unfused runs aggregate identically.
  EXPECT_EQ(a.adaptorStats, b.adaptorStats);
  ASSERT_NE(a.synth.top(), nullptr);
  ASSERT_NE(b.synth.top(), nullptr);
  EXPECT_EQ(a.synth.top()->latencyCycles, b.synth.top()->latencyCycles);
}

TEST(StageCache, ConcurrentBatchSharesOneCache) {
  // Many identical jobs racing on a cold cache: results must agree and
  // nothing may crash or deadlock (run under TSan in CI). Exact hit
  // counts are racy (two workers can miss the same key concurrently), so
  // only aggregate sanity is asserted.
  flow::StageCache::global().clear();
  flow::KernelConfig config;
  std::vector<flow::BatchJob> jobs;
  for (int i = 0; i < 8; ++i)
    jobs.push_back({&gemm(), config, flow::FlowKind::Adaptor,
                    cachedOptions(), "cache-race"});
  flow::BatchOptions batchOptions;
  batchOptions.numThreads = 4;
  flow::BatchOutcome outcome = flow::runBatch(jobs, batchOptions);
  ASSERT_EQ(outcome.trace.failures, 0u);
  const auto *top0 = outcome.results[0].synth.top();
  ASSERT_NE(top0, nullptr);
  for (const flow::FlowResult &result : outcome.results) {
    ASSERT_TRUE(result.ok);
    ASSERT_NE(result.synth.top(), nullptr);
    EXPECT_EQ(result.synth.top()->latencyCycles, top0->latencyCycles);
  }
  auto counters = flow::StageCache::global().counters();
  EXPECT_GT(counters.hits() + counters.misses(), 0);
  EXPECT_GE(counters.misses(), 3); // at least one cold chain
}

TEST(ParallelPasses, MatchSerialExecutionExactly) {
  // A module with several independent functions, run through the same
  // cleanup pipeline serially and with a 4-worker pool: the printed IR
  // and the merged statistics must be identical.
  std::string text = "declare double @hls_sqrt(double)\n";
  for (int i = 0; i < 6; ++i) {
    char name = static_cast<char>('a' + i);
    text += strfmt(R"(
define i64 @fn_%c(i64 %%x) {
entry:
  %%0 = add i64 %%x, 0
  %%1 = mul i64 %%0, 1
  %%2 = add i64 %%1, %d
  %%dead = add i64 %%2, 99
  %%3 = add i64 %%2, %%2
  ret i64 %%3
}
)",
                   name, i);
  }

  auto runPipeline = [&](ThreadPool *pool, std::string &printed,
                         lir::PassStats &stats) {
    lir::LContext ctx;
    DiagnosticEngine diags;
    auto module = lir::parseModule(text, ctx, diags);
    ASSERT_NE(module, nullptr) << diags.str();
    lir::PassManager pm(/*verifyEach=*/true);
    pm.add(lir::createInstCombinePass());
    pm.add(lir::createCSEPass());
    pm.add(lir::createDCEPass());
    if (pool)
      pm.setConcurrency(pool);
    ASSERT_TRUE(pm.run(*module, diags)) << diags.str();
    printed = lir::printModule(*module);
    stats = pm.totalStats();
  };

  std::string serialIR, parallelIR;
  lir::PassStats serialStats, parallelStats;
  runPipeline(nullptr, serialIR, serialStats);
  ThreadPool pool(4);
  runPipeline(&pool, parallelIR, parallelStats);
  EXPECT_EQ(serialIR, parallelIR);
  EXPECT_EQ(serialStats, parallelStats);
}

TEST(ParallelPasses, FusedFunctionPassMatchesSequentialPasses) {
  const char *text = R"(
define i64 @f(i64 %x) {
entry:
  %0 = add i64 %x, 0
  %dead = mul i64 %0, 7
  %1 = add i64 %0, %0
  ret i64 %1
}
define i64 @g(i64 %x) {
entry:
  %0 = mul i64 %x, 1
  ret i64 %0
}
)";

  auto run = [&](bool fuse) {
    lir::LContext ctx;
    DiagnosticEngine diags;
    auto module = lir::parseModule(text, ctx, diags);
    EXPECT_NE(module, nullptr) << diags.str();
    lir::PassManager pm(/*verifyEach=*/true);
    if (fuse) {
      std::vector<std::unique_ptr<lir::FunctionPass>> fns;
      for (auto make : {lir::createInstCombinePass, lir::createDCEPass}) {
        auto pass = make();
        lir::FunctionPass *fn = pass->asFunctionPass();
        EXPECT_NE(fn, nullptr);
        pass.release();
        fns.emplace_back(fn);
      }
      pm.add(std::make_unique<lir::FusedFunctionPass>(std::move(fns)));
    } else {
      pm.add(lir::createInstCombinePass());
      pm.add(lir::createDCEPass());
    }
    EXPECT_TRUE(pm.run(*module, diags)) << diags.str();
    return lir::printModule(*module);
  };

  EXPECT_EQ(run(false), run(true));
}

// --- LRU byte-cap eviction (--stage-cache-limit) ----------------------

TEST(StageCacheLimit, ByteCapEvictsGloballyColdestFirst) {
  flow::StageCache &cache = flow::StageCache::global();
  cache.clear();
  cache.setLimitBytes(250);

  cache.storeMlir(1, std::string(100, 'a'));
  cache.storeMlir(2, std::string(100, 'b'));
  std::string text;
  ASSERT_TRUE(cache.lookupMlir(1, text)); // refresh key 1's recency

  auto before = cache.counters();
  cache.storeMlir(3, std::string(100, 'c'));
  auto after = cache.counters();

  // Key 2 was the coldest; exactly one eviction brings the total back
  // under the cap, and the resident-bytes counter respects it.
  EXPECT_EQ(after.mlirEvictions - before.mlirEvictions, 1);
  EXPECT_LE(after.bytes(), cache.limitBytes());
  EXPECT_TRUE(cache.lookupMlir(1, text));
  EXPECT_TRUE(cache.lookupMlir(3, text));
  EXPECT_FALSE(cache.lookupMlir(2, text));

  cache.setLimitBytes(0);
  cache.clear();
}

TEST(StageCacheLimit, SetLimitEnforcesImmediatelyAndOversizedEntryLeaves) {
  flow::StageCache &cache = flow::StageCache::global();
  cache.clear();
  cache.setLimitBytes(0);
  for (uint64_t key = 1; key <= 8; ++key)
    cache.storeMlir(key, std::string(100, 'x'));
  EXPECT_EQ(cache.counters().bytes(), 800);

  // Tightening the cap evicts immediately, not on the next store.
  cache.setLimitBytes(350);
  EXPECT_LE(cache.counters().bytes(), 350);
  EXPECT_GE(cache.counters().mlirEvictions, 5);

  // An entry larger than the whole cap never stays resident.
  cache.storeMlir(99, std::string(1000, 'y'));
  std::string text;
  EXPECT_FALSE(cache.lookupMlir(99, text));
  EXPECT_LE(cache.counters().bytes(), 350);

  cache.setLimitBytes(0);
  cache.clear();
}

TEST(StageCacheLimit, CappedCacheStillServesWarmFlows) {
  flow::StageCache &cache = flow::StageCache::global();
  cache.clear();
  // Generous cap: both flows' entries for one kernel fit comfortably, so
  // a warm rerun is a full-chain hit even with eviction armed.
  cache.setLimitBytes(64 << 20);
  flow::KernelConfig config;
  flow::FlowResult cold = flow::runAdaptorFlow(gemm(), config,
                                               cachedOptions());
  ASSERT_TRUE(cold.ok) << cold.diagnostics;
  auto before = cache.counters();
  flow::FlowResult warm = flow::runAdaptorFlow(gemm(), config,
                                               cachedOptions());
  ASSERT_TRUE(warm.ok) << warm.diagnostics;
  auto now = cache.counters();
  EXPECT_EQ(now.misses() - before.misses(), 0);
  EXPECT_TRUE(warm.synthFromCache);
  EXPECT_LE(now.bytes(), cache.limitBytes());
  cache.setLimitBytes(0);
  cache.clear();
}

// A multi-function LIR module addresses the bridge stage with the *whole*
// module text, so editing only a callee body — the top function unchanged
// — must miss the cache and produce the new answer, not replay the old
// chain.
TEST(StageCache, CalleeBodyEditInvalidatesLirFlow) {
  flow::StageCache::global().clear();
  auto moduleText = [](const char *addend) {
    return std::string(R"(
define i64 @helper(i64 %x) {
entry:
  %v = add i64 %x, )") +
           addend + R"(
  ret i64 %v
}

define void @top([16 x i64]* noalias %out) {
entry:
  br label %header
header:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %cmp = icmp slt i64 %iv, 16
  br i1 %cmp, label %body, label %exit
body:
  %v = call i64 @helper(i64 %iv)
  %p = getelementptr [16 x i64], [16 x i64]* %out, i64 0, i64 %iv
  store i64 %v, i64* %p
  %next = add i64 %iv, 1
  br label %header
exit:
  ret void
}
)";
  };

  auto before = flow::StageCache::global().counters();
  flow::FlowResult cold =
      flow::runLirAdaptorFlow(moduleText("1"), "top", cachedOptions());
  ASSERT_TRUE(cold.ok) << cold.diagnostics;
  auto coldDelta = delta(before);
  EXPECT_EQ(coldDelta.bridgeMisses, 1);
  EXPECT_EQ(coldDelta.synthMisses, 1);
  EXPECT_EQ(coldDelta.hits(), 0);

  before = flow::StageCache::global().counters();
  flow::FlowResult warm =
      flow::runLirAdaptorFlow(moduleText("1"), "top", cachedOptions());
  ASSERT_TRUE(warm.ok) << warm.diagnostics;
  auto warmDelta = delta(before);
  EXPECT_EQ(warmDelta.bridgeHits, 1);
  EXPECT_EQ(warmDelta.misses(), 0);

  // Edit only @helper: same @top text, different callee body. The whole
  // post-inline module keys the chain, so this is a cold compile again.
  before = flow::StageCache::global().counters();
  flow::FlowResult edited =
      flow::runLirAdaptorFlow(moduleText("2"), "top", cachedOptions());
  ASSERT_TRUE(edited.ok) << edited.diagnostics;
  auto editedDelta = delta(before);
  EXPECT_EQ(editedDelta.bridgeMisses, 1);
  EXPECT_EQ(editedDelta.bridgeHits, 0);
}
