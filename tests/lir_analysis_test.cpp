// Tests for dominators, loop info, canonical-loop matching and the
// loop dependence analysis.
#include "lir/Function.h"
#include "lir/LContext.h"
#include "lir/Parser.h"
#include "lir/analysis/Dependence.h"
#include "lir/analysis/Dominators.h"
#include "lir/analysis/LoopInfo.h"

#include <gtest/gtest.h>

using namespace mha;
using namespace mha::lir;

namespace {

struct Parsed {
  LContext ctx;
  std::unique_ptr<Module> module;
  Function *fn = nullptr;

  explicit Parsed(const std::string &text) {
    DiagnosticEngine diags;
    module = parseModule(text, ctx, diags);
    EXPECT_NE(module, nullptr) << diags.str();
    if (module)
      fn = module->functions().front();
  }

  BasicBlock *block(const std::string &name) {
    for (BasicBlock *bb : fn->blockPtrs())
      if (bb->name() == name)
        return bb;
    return nullptr;
  }
};

const std::string kDiamond = R"(
define void @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  ret void
}
)";

const std::string kLoop = R"(
define void @f(ptr %p) {
entry:
  br label %header
header:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %cmp = icmp slt i64 %iv, 32
  br i1 %cmp, label %body, label %exit
body:
  %addr = getelementptr double, ptr %p, i64 %iv
  %v = load double, ptr %addr
  store double %v, ptr %addr
  %next = add i64 %iv, 2
  br label %header
exit:
  ret void
}
)";

} // namespace

TEST(Dominators, Diamond) {
  Parsed p(kDiamond);
  DominatorTree domTree(*p.fn);
  BasicBlock *entry = p.block("entry");
  BasicBlock *a = p.block("a");
  BasicBlock *b = p.block("b");
  BasicBlock *join = p.block("join");

  EXPECT_TRUE(domTree.dominates(entry, join));
  EXPECT_TRUE(domTree.dominates(entry, a));
  EXPECT_FALSE(domTree.dominates(a, join));
  EXPECT_FALSE(domTree.dominates(a, b));
  EXPECT_TRUE(domTree.dominates(a, a));
  EXPECT_EQ(domTree.idom(join), entry);
  EXPECT_EQ(domTree.idom(a), entry);
  EXPECT_EQ(domTree.idom(entry), nullptr);
}

TEST(Dominators, RPOStartsAtEntry) {
  Parsed p(kDiamond);
  DominatorTree domTree(*p.fn);
  ASSERT_FALSE(domTree.rpo().empty());
  EXPECT_EQ(domTree.rpo().front(), p.block("entry"));
  EXPECT_EQ(domTree.rpo().size(), 4u);
}

TEST(Dominators, UnreachableBlockHandled) {
  Parsed p(R"(
define void @f() {
entry:
  ret void
dead:
  br label %dead
}
)");
  DominatorTree domTree(*p.fn);
  EXPECT_FALSE(domTree.isReachable(p.block("dead")));
  EXPECT_TRUE(domTree.isReachable(p.block("entry")));
}

TEST(LoopInfo, SingleLoop) {
  Parsed p(kLoop);
  DominatorTree domTree(*p.fn);
  LoopInfo loopInfo(*p.fn, domTree);
  ASSERT_EQ(loopInfo.loops().size(), 1u);
  Loop *loop = loopInfo.loops().front().get();
  EXPECT_EQ(loop->header(), p.block("header"));
  EXPECT_EQ(loop->latch(), p.block("body"));
  EXPECT_EQ(loop->preheader(), p.block("entry"));
  EXPECT_EQ(loop->exitBlock(), p.block("exit"));
  EXPECT_TRUE(loop->isInnermost());
  EXPECT_EQ(loop->depth(), 1u);
  EXPECT_EQ(loopInfo.loopFor(p.block("body")), loop);
  EXPECT_EQ(loopInfo.loopFor(p.block("exit")), nullptr);
}

TEST(LoopInfo, NestedLoops) {
  Parsed p(R"(
define void @f() {
entry:
  br label %outer
outer:
  %i = phi i64 [ 0, %entry ], [ %i.next, %outer.latch ]
  %ocmp = icmp slt i64 %i, 4
  br i1 %ocmp, label %inner.pre, label %exit
inner.pre:
  br label %inner
inner:
  %j = phi i64 [ 0, %inner.pre ], [ %j.next, %inner ]
  %j.next = add i64 %j, 1
  %icmp2 = icmp slt i64 %j.next, 8
  br i1 %icmp2, label %inner, label %outer.latch
outer.latch:
  %i.next = add i64 %i, 1
  br label %outer
exit:
  ret void
}
)");
  DominatorTree domTree(*p.fn);
  LoopInfo loopInfo(*p.fn, domTree);
  ASSERT_EQ(loopInfo.loops().size(), 2u);
  std::vector<Loop *> top = loopInfo.topLevelLoops();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0]->header(), p.block("outer"));
  ASSERT_EQ(top[0]->subLoops().size(), 1u);
  Loop *inner = top[0]->subLoops()[0];
  EXPECT_EQ(inner->header(), p.block("inner"));
  EXPECT_EQ(inner->depth(), 2u);
  EXPECT_EQ(loopInfo.loopFor(p.block("inner")), inner);
  EXPECT_EQ(loopInfo.loopFor(p.block("outer.latch")), top[0]);
}

TEST(CanonicalLoop, MatchAndTripCount) {
  Parsed p(kLoop);
  DominatorTree domTree(*p.fn);
  LoopInfo loopInfo(*p.fn, domTree);
  auto canonical = matchCanonicalLoop(loopInfo.loops().front().get());
  ASSERT_TRUE(canonical.has_value());
  EXPECT_EQ(canonical->step, 2);
  ASSERT_TRUE(canonical->tripCount.has_value());
  EXPECT_EQ(*canonical->tripCount, 16); // (32-0)/2
  EXPECT_EQ(canonical->indVar->name(), "iv");
}

TEST(CanonicalLoop, RejectsNonCanonical) {
  // Exit on true (inverted) is not canonical.
  Parsed p(R"(
define void @f() {
entry:
  br label %header
header:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %cmp = icmp sge i64 %iv, 32
  br i1 %cmp, label %exit, label %body
body:
  %next = add i64 %iv, 1
  br label %header
exit:
  ret void
}
)");
  DominatorTree domTree(*p.fn);
  LoopInfo loopInfo(*p.fn, domTree);
  ASSERT_EQ(loopInfo.loops().size(), 1u);
  EXPECT_FALSE(matchCanonicalLoop(loopInfo.loops().front().get())
                   .has_value());
}

TEST(Linearize, BasicForms) {
  Parsed p(R"(
define void @f(i64 %n) {
entry:
  br label %header
header:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %cmp = icmp slt i64 %iv, 32
  br i1 %cmp, label %body, label %exit
body:
  %a = mul i64 %iv, 8
  %b = add i64 %a, 3
  %c = add i64 %b, %n
  %next = add i64 %iv, 1
  br label %header
exit:
  ret void
}
)");
  BasicBlock *body = p.block("body");
  Instruction *iv = p.block("header")->phis().front();
  auto it = body->begin();
  Instruction *a = it->get();
  Instruction *b = std::next(it)->get();
  Instruction *c = std::next(it, 2)->get();

  LinearSubscript sa = linearizeInIV(a, iv);
  EXPECT_TRUE(sa.valid);
  EXPECT_EQ(sa.ivCoef, 8);
  EXPECT_EQ(sa.constant, 0);
  EXPECT_TRUE(sa.symbols.empty());

  LinearSubscript sb = linearizeInIV(b, iv);
  EXPECT_EQ(sb.ivCoef, 8);
  EXPECT_EQ(sb.constant, 3);

  LinearSubscript sc = linearizeInIV(c, iv);
  EXPECT_EQ(sc.ivCoef, 8);
  EXPECT_EQ(sc.constant, 3);
  ASSERT_EQ(sc.symbols.size(), 1u);
  EXPECT_EQ(sc.symbols[0].second, 1);
}

namespace {

/// Builds the classic accumulation loop:
///   for i: s = load p[0]; s' = fadd s, x; store s' -> p[0]
Parsed accumulationLoop() {
  return Parsed(R"(
define void @f([32 x double]* %p, double %x) {
entry:
  br label %header
header:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %cmp = icmp slt i64 %iv, 32
  br i1 %cmp, label %body, label %exit
body:
  %addr = getelementptr [32 x double], [32 x double]* %p, i64 0, i64 5
  %s = load double, double* %addr
  %s2 = fadd double %s, %x
  store double %s2, double* %addr
  %next = add i64 %iv, 1
  br label %header
exit:
  ret void
}
)");
}

} // namespace

TEST(Dependence, AccumulationHasCarriedDistanceOne) {
  Parsed p = accumulationLoop();
  DominatorTree domTree(*p.fn);
  LoopInfo loopInfo(*p.fn, domTree);
  auto canonical = matchCanonicalLoop(loopInfo.loops().front().get());
  ASSERT_TRUE(canonical.has_value());
  std::vector<MemAccess> accesses = collectLoopAccesses(*canonical);
  ASSERT_EQ(accesses.size(), 2u);
  EXPECT_TRUE(accesses[0].affine);
  std::vector<LoopDependence> deps = analyzeLoopDependences(accesses);
  bool carried = false;
  for (const LoopDependence &dep : deps)
    if (dep.distance == 1)
      carried = true;
  EXPECT_TRUE(carried);
}

TEST(Dependence, StreamingAccessHasNoCarriedDependence) {
  // store p[iv], load p[iv]: same iteration only.
  Parsed p(R"(
define void @f([32 x double]* %p, double %x) {
entry:
  br label %header
header:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %cmp = icmp slt i64 %iv, 32
  br i1 %cmp, label %body, label %exit
body:
  %addr = getelementptr [32 x double], [32 x double]* %p, i64 0, i64 %iv
  store double %x, double* %addr
  %v = load double, double* %addr
  %next = add i64 %iv, 1
  br label %header
exit:
  ret void
}
)");
  DominatorTree domTree(*p.fn);
  LoopInfo loopInfo(*p.fn, domTree);
  auto canonical = matchCanonicalLoop(loopInfo.loops().front().get());
  ASSERT_TRUE(canonical.has_value());
  std::vector<LoopDependence> deps =
      analyzeLoopDependences(collectLoopAccesses(*canonical));
  for (const LoopDependence &dep : deps)
    EXPECT_EQ(dep.distance, 0) << "unexpected carried dependence";
  // But the intra-iteration ordering edge must exist.
  EXPECT_FALSE(deps.empty());
}

TEST(Dependence, ShiftedAccessDistance) {
  // store p[iv], load p[iv - 3]: distance-3 carried dependence.
  Parsed p(R"(
define void @f([64 x double]* %p, double %x) {
entry:
  br label %header
header:
  %iv = phi i64 [ 3, %entry ], [ %next, %body ]
  %cmp = icmp slt i64 %iv, 64
  br i1 %cmp, label %body, label %exit
body:
  %a1 = getelementptr [64 x double], [64 x double]* %p, i64 0, i64 %iv
  store double %x, double* %a1
  %back = sub i64 %iv, 3
  %a2 = getelementptr [64 x double], [64 x double]* %p, i64 0, i64 %back
  %v = load double, double* %a2
  %next = add i64 %iv, 1
  br label %header
exit:
  ret void
}
)");
  DominatorTree domTree(*p.fn);
  LoopInfo loopInfo(*p.fn, domTree);
  auto canonical = matchCanonicalLoop(loopInfo.loops().front().get());
  ASSERT_TRUE(canonical.has_value());
  std::vector<LoopDependence> deps =
      analyzeLoopDependences(collectLoopAccesses(*canonical));
  bool found = false;
  for (const LoopDependence &dep : deps)
    if (dep.distance == 3)
      found = true;
  EXPECT_TRUE(found);
}

TEST(Dependence, DisjointArraysNoDependence) {
  Parsed p(R"(
define void @f([32 x double]* %a, [32 x double]* %b, double %x) {
entry:
  br label %header
header:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %cmp = icmp slt i64 %iv, 32
  br i1 %cmp, label %body, label %exit
body:
  %a1 = getelementptr [32 x double], [32 x double]* %a, i64 0, i64 %iv
  store double %x, double* %a1
  %a2 = getelementptr [32 x double], [32 x double]* %b, i64 0, i64 %iv
  %v = load double, double* %a2
  %next = add i64 %iv, 1
  br label %header
exit:
  ret void
}
)");
  DominatorTree domTree(*p.fn);
  LoopInfo loopInfo(*p.fn, domTree);
  auto canonical = matchCanonicalLoop(loopInfo.loops().front().get());
  ASSERT_TRUE(canonical.has_value());
  EXPECT_TRUE(analyzeLoopDependences(collectLoopAccesses(*canonical))
                  .empty());
}
