// Property-based/parameterized tests over randomized inputs:
//  * random affine kernels survive lowering+adaptor with bit-exact
//    semantics (the adaptor is a semantics-preserving bridge),
//  * random linear addresses delinearize consistently,
//  * scheduling invariants: achieved II >= max(RecMII, ResMII, target).
#include "adaptor/Adaptor.h"
#include "adaptor/ShapeInfo.h"
#include "flow/Flow.h"
#include "lir/Parser.h"
#include "lir/analysis/Dependence.h"
#include "mir/Builder.h"
#include "support/StringUtils.h"
#include "mir/Pass.h"
#include "mir/Verifier.h"
#include "mir/transforms/MirTransforms.h"
#include "vhls/Vhls.h"

#include <gtest/gtest.h>

#include <random>

using namespace mha;

namespace {

/// Deterministic PRNG per seed.
struct Rng {
  std::mt19937_64 gen;
  explicit Rng(uint64_t seed) : gen(seed) {}
  int64_t range(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(gen);
  }
  bool flip() { return range(0, 1) == 1; }
};

/// Builds a random 2-level affine kernel over two 2-D arrays:
///   for i in [0,N): for j in [0,M):
///     B[f(i,j)] = g(A[h(i,j)], B[...]) with random linear subscripts and
///     a random arithmetic expression tree.
struct RandomKernel {
  flow::KernelSpec spec;
  int64_t rows, cols;
  int64_t ra, rb, ca, cb; // subscript coefficients for the A access
  int64_t mode;           // expression shape selector

  int64_t lb0, step0; // randomized outer-loop bounds

  explicit RandomKernel(uint64_t seed) {
    Rng rng(seed);
    rows = rng.range(4, 12);
    cols = rng.range(4, 12);
    ra = rng.range(0, 1);
    rb = rng.range(0, 2);
    ca = rng.range(0, 1);
    cb = rng.range(0, 2);
    mode = rng.range(0, 3);
    lb0 = rng.range(0, 2);
    step0 = rng.range(1, 2);
    if (lb0 >= rows)
      lb0 = 0;
    // Keep subscripts in range: dims sized to fit the max index.
    int64_t dimA0 = rows * std::max<int64_t>(ra, 1) + rb * cols + 1;
    int64_t dimA1 = cols * std::max<int64_t>(ca, 1) + cb + 1;

    spec.name = "rand";
    spec.bufferShapes = {{dimA0, dimA1}, {rows, cols}};
    spec.outputs = {1};
    int64_t r = rows, c = cols, m = mode;
    int64_t lra = ra, lrb = rb, lca = ca, lcb = cb;
    int64_t llb = lb0, lstep = step0;
    spec.build = [=](mir::MContext &ctx, const flow::KernelConfig &cfg) {
      mir::OpBuilder b(ctx);
      mir::OwnedModule module = mir::OpBuilder::createModule();
      b.setInsertPoint(module.get().body());
      mir::FuncOp fn = b.createFunc(
          "rand", ctx.fnTy({ctx.memrefTy({dimA0, dimA1}, ctx.f64()),
                            ctx.memrefTy({r, c}, ctx.f64())},
                           {}));
      b.setInsertPoint(fn.entryBlock());
      mir::ForOp iLoop = b.affineFor(llb, r, lstep);
      b.setInsertPointToLoopBody(iLoop);
      mir::ForOp jLoop = b.affineFor(0, c);
      if (cfg.applyDirectives && cfg.pipelineII > 0)
        mir::setPipelineDirective(jLoop, cfg.pipelineII);
      b.setInsertPointToLoopBody(jLoop);
      mir::Value *i = iLoop.inductionVar();
      mir::Value *j = jLoop.inductionVar();
      // A[lra*i + lrb*j][lca*j + lcb]
      mir::AffineMap aMap(
          2, 0,
          {ctx.affineAdd(
               ctx.affineMul(ctx.affineDim(0), ctx.affineConst(lra)),
               ctx.affineMul(ctx.affineDim(1), ctx.affineConst(lrb))),
           ctx.affineAdd(
               ctx.affineMul(ctx.affineDim(1), ctx.affineConst(lca)),
               ctx.affineConst(lcb))});
      mir::Value *a = b.affineLoad(fn.arg(0), aMap, {i, j});
      mir::Value *old = b.affineLoad(fn.arg(1),
                                     mir::AffineMap::identity(ctx, 2),
                                     {i, j});
      mir::Value *expr = nullptr;
      switch (m) {
      case 0:
        expr = b.binary(mir::ops::AddF, a, old);
        break;
      case 1:
        expr = b.binary(mir::ops::MulF, a,
                        b.binary(mir::ops::AddF, old,
                                 b.constantFloat(1.0, ctx.f64())));
        break;
      case 2:
        expr = b.binary(mir::ops::SubF, b.binary(mir::ops::MulF, a, a), old);
        break;
      default:
        expr = b.binary(mir::ops::DivF, a,
                        b.binary(mir::ops::AddF,
                                 b.binary(mir::ops::MulF, old, old),
                                 b.constantFloat(1.5, ctx.f64())));
        break;
      }
      b.affineStore(expr, fn.arg(1), mir::AffineMap::identity(ctx, 2),
                    {i, j});
      b.setInsertPoint(fn.entryBlock());
      b.createReturn();
      return module;
    };
    int64_t da0 = dimA0, da1 = dimA1;
    spec.reference = [=](flow::Buffers &buf) {
      auto &A = buf[0];
      auto &B = buf[1];
      (void)da0;
      for (int64_t i = llb; i < r; i += lstep)
        for (int64_t j = 0; j < c; ++j) {
          double a = A[(lra * i + lrb * j) * da1 + (lca * j + lcb)];
          double old = B[i * c + j];
          double v;
          switch (m) {
          case 0: v = a + old; break;
          case 1: v = a * (old + 1.0); break;
          case 2: v = (a * a) - old; break;
          default: v = a / ((old * old) + 1.5); break;
          }
          B[i * c + j] = v;
        }
    };
  }
};

class RandomKernelTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernelTest,
                         ::testing::Range<uint64_t>(0, 24));

TEST_P(RandomKernelTest, AdaptorFlowPreservesSemantics) {
  RandomKernel kernel(GetParam());
  flow::KernelConfig config;
  config.pipelineII = 1;
  flow::FlowResult result = flow::runAdaptorFlow(kernel.spec, config);
  ASSERT_TRUE(result.ok) << result.diagnostics;
  EXPECT_EQ(result.synth.compat.warnings, 0) << result.diagnostics;
  std::string error;
  EXPECT_TRUE(flow::cosimAgainstReference(result, kernel.spec, error))
      << error;
}

TEST_P(RandomKernelTest, BothFlowsAgreeBitExactly) {
  RandomKernel kernel(GetParam());
  flow::KernelConfig config;
  config.pipelineII = 1;
  flow::FlowResult a = flow::runAdaptorFlow(kernel.spec, config);
  flow::FlowResult c = flow::runHlsCppFlow(kernel.spec, config);
  ASSERT_TRUE(a.ok) << a.diagnostics;
  ASSERT_TRUE(c.ok) << c.diagnostics;
  std::string error;
  EXPECT_TRUE(flow::cosimAgainstReference(a, kernel.spec, error)) << error;
  EXPECT_TRUE(flow::cosimAgainstReference(c, kernel.spec, error)) << error;
}

TEST_P(RandomKernelTest, ScheduleInvariants) {
  RandomKernel kernel(GetParam());
  flow::KernelConfig config;
  config.pipelineII = 1;
  flow::FlowResult result = flow::runAdaptorFlow(kernel.spec, config);
  ASSERT_TRUE(result.ok) << result.diagnostics;
  for (const vhls::LoopReport &loop : result.synth.top()->loops) {
    if (!loop.pipelined)
      continue;
    EXPECT_GE(loop.achievedII, loop.recMII);
    EXPECT_GE(loop.achievedII, loop.resMII);
    EXPECT_GE(loop.achievedII, loop.targetII);
    EXPECT_GE(loop.iterationLatency, 1);
    if (loop.tripCount > 0) {
      EXPECT_GE(loop.totalLatency, loop.iterationLatency +
                                       (loop.tripCount - 1) * loop.achievedII);
    }
  }
}

// --- Delinearization property: decompose(linear(i,j)) reconstructs the
// same address for random shapes/coefficients. ---

namespace {
class DelinearizeTest : public ::testing::TestWithParam<uint64_t> {};
} // namespace

INSTANTIATE_TEST_SUITE_P(Seeds, DelinearizeTest,
                         ::testing::Range<uint64_t>(100, 120));

TEST_P(DelinearizeTest, RoundTripsThroughGepCanonicalize) {
  Rng rng(GetParam());
  int64_t d0 = rng.range(2, 16);
  int64_t d1 = rng.range(2, 16);
  int64_t cI = rng.range(0, 2);
  int64_t cC = rng.range(0, d1 - 1);

  // Build:  addr = iv*(cI*d1) + (cC)  (i.e. A[cI*iv][cC]) and check the
  // adaptor recovers exactly those indices.
  lir::LContext ctx;
  DiagnosticEngine diags;
  std::string text = strfmt(R"(
!flag opaque-pointers = "true"

define void @k(ptr !mha.shape !{!"f64", i64 2, i64 %lld, i64 %lld} %%A) {
entry:
  br label %%header
header:
  %%iv = phi i64 [ 0, %%entry ], [ %%next, %%body ]
  %%cmp = icmp slt i64 %%iv, 2
  br i1 %%cmp, label %%body, label %%exit
body:
  %%scaled = mul i64 %%iv, %lld
  %%lin = add i64 %%scaled, %lld
  %%addr = getelementptr double, ptr %%A, i64 %%lin
  %%v = load double, ptr %%addr
  store double %%v, ptr %%addr
  %%next = add i64 %%iv, 1
  br label %%header
exit:
  ret void
}
)",
                            static_cast<long long>(d0),
                            static_cast<long long>(d1),
                            static_cast<long long>(cI * d1),
                            static_cast<long long>(cC));
  auto module = lir::parseModule(text, ctx, diags);
  ASSERT_NE(module, nullptr) << diags.str() << text;
  lir::PassManager pm(true);
  pm.add(adaptor::createGepCanonicalizePass());
  ASSERT_TRUE(pm.run(*module, diags)) << diags.str();
  EXPECT_EQ(pm.totalStats().at("adaptor.geps-delinearized"), 1);

  // Interpret both index expressions: evaluate the shaped GEP's indices
  // at iv=1 and compare with the original linear form.
  lir::Function *fn = module->getFunction("k");
  const lir::Instruction *gep = nullptr;
  for (lir::BasicBlock *bb : fn->blockPtrs())
    for (auto &inst : *bb)
      if (inst->opcode() == lir::Opcode::GEP &&
          inst->sourceElemType()->isArray())
        gep = inst.get();
  ASSERT_NE(gep, nullptr);
  // Expected: [0][cI*iv][cC] with strides d1, 1 — reconstruct linear.
  // Evaluate indices symbolically via linearizeInIV.
  const lir::Value *iv = nullptr;
  for (lir::BasicBlock *bb : fn->blockPtrs())
    for (lir::Instruction *phi : bb->phis())
      iv = phi;
  ASSERT_NE(iv, nullptr);
  int64_t reconstructed = 0;
  std::vector<int64_t> strides = {d1, 1};
  for (unsigned idx = 2; idx < gep->numOperands(); ++idx) {
    lir::LinearSubscript sub = lir::linearizeInIV(gep->operand(idx), iv);
    ASSERT_TRUE(sub.valid);
    ASSERT_TRUE(sub.symbols.empty());
    reconstructed += (sub.ivCoef * 1 + sub.constant) * strides[idx - 2];
  }
  EXPECT_EQ(reconstructed, cI * d1 * 1 + cC);
}
