// Tests for the MiniMLIR core: context uniquing, affine expressions, op
// construction, printing/parsing and verification.
#include "mir/Builder.h"
#include "mir/MContext.h"
#include "mir/Parser.h"
#include "mir/Printer.h"
#include "mir/Verifier.h"
#include "mir/transforms/MirTransforms.h"

#include <gtest/gtest.h>

using namespace mha;
using namespace mha::mir;

TEST(MirTypes, Uniquing) {
  MContext ctx;
  EXPECT_EQ(ctx.indexTy(), ctx.indexTy());
  EXPECT_EQ(ctx.intTy(32), ctx.i32());
  EXPECT_EQ(ctx.memrefTy({4, 4}, ctx.f64()), ctx.memrefTy({4, 4}, ctx.f64()));
  EXPECT_NE(ctx.memrefTy({4, 4}, ctx.f64()), ctx.memrefTy({4, 8}, ctx.f64()));
  EXPECT_NE(ctx.memrefTy({4}, ctx.f64()), ctx.memrefTy({4}, ctx.f32()));
}

TEST(MirTypes, MemRefGeometry) {
  MContext ctx;
  MemRefType *mt = ctx.memrefTy({2, 3, 4}, ctx.f64());
  EXPECT_EQ(mt->rank(), 3u);
  EXPECT_EQ(mt->numElements(), 24);
  EXPECT_EQ(mt->strides(), (std::vector<int64_t>{12, 4, 1}));
  EXPECT_EQ(mt->str(), "memref<2x3x4xf64>");
}

TEST(MirAttrs, Uniquing) {
  MContext ctx;
  EXPECT_EQ(ctx.intAttr(5), ctx.intAttr(5));
  EXPECT_NE(ctx.intAttr(5), ctx.intAttr(6));
  EXPECT_EQ(ctx.stringAttr("x"), ctx.stringAttr("x"));
  EXPECT_EQ(ctx.unitAttr(), ctx.unitAttr());
  EXPECT_EQ(ctx.arrayAttr({ctx.intAttr(1)}), ctx.arrayAttr({ctx.intAttr(1)}));
}

TEST(AffineExpr, FoldingOnConstruction) {
  MContext ctx;
  const AffineExpr *two = ctx.affineConst(2);
  const AffineExpr *three = ctx.affineConst(3);
  EXPECT_EQ(ctx.affineAdd(two, three), ctx.affineConst(5));
  EXPECT_EQ(ctx.affineMul(two, three), ctx.affineConst(6));
  const AffineExpr *d0 = ctx.affineDim(0);
  EXPECT_EQ(ctx.affineAdd(d0, ctx.affineConst(0)), d0);
  EXPECT_EQ(ctx.affineMul(d0, ctx.affineConst(1)), d0);
  EXPECT_EQ(ctx.affineMul(d0, ctx.affineConst(0)), ctx.affineConst(0));
  // Structural uniquing of compound expressions.
  EXPECT_EQ(ctx.affineAdd(d0, two), ctx.affineAdd(d0, two));
}

TEST(AffineExpr, Evaluation) {
  MContext ctx;
  // d0*32 + d1
  const AffineExpr *expr = ctx.affineAdd(
      ctx.affineMul(ctx.affineDim(0), ctx.affineConst(32)), ctx.affineDim(1));
  EXPECT_EQ(expr->evaluate({2, 5}), 69);
  // floordiv/mod semantics are euclidean for negatives.
  const AffineExpr *mod = ctx.affineMod(ctx.affineDim(0), ctx.affineConst(4));
  EXPECT_EQ(mod->evaluate({-1}), 3);
  const AffineExpr *fd =
      ctx.affineFloorDiv(ctx.affineDim(0), ctx.affineConst(4));
  EXPECT_EQ(fd->evaluate({-1}), -1);
  EXPECT_EQ(fd->evaluate({7}), 1);
  const AffineExpr *cd =
      ctx.affineCeilDiv(ctx.affineDim(0), ctx.affineConst(4));
  EXPECT_EQ(cd->evaluate({7}), 2);
}

TEST(AffineMap, IdentityAndEvaluate) {
  MContext ctx;
  AffineMap id = AffineMap::identity(ctx, 2);
  EXPECT_EQ(id.numDims(), 2u);
  EXPECT_EQ(id.numResults(), 2u);
  EXPECT_EQ(id.evaluate({7, 9}), (std::vector<int64_t>{7, 9}));
  EXPECT_EQ(id.str(), "(d0, d1) -> (d0, d1)");
}

static Value *loadAtHelper(OpBuilder &b, Value *mem, Value *iv) {
  return b.affineLoad(mem, AffineMap::identity(b.context(), 1), {iv});
}

TEST(MirOps, BuildFunctionAndLoop) {
  MContext ctx;
  OpBuilder builder(ctx);
  OwnedModule module = OpBuilder::createModule();
  builder.setInsertPoint(module.get().body());
  FuncOp fn = builder.createFunc(
      "k", ctx.fnTy({ctx.memrefTy({8}, ctx.f64())}, {}));
  builder.setInsertPoint(fn.entryBlock());
  ForOp loop = builder.affineFor(0, 8, 2);
  builder.setInsertPointToLoopBody(loop);
  Value *v = loadAtHelper(builder, fn.arg(0), loop.inductionVar());
  builder.affineStore(v, fn.arg(0), AffineMap::identity(ctx, 1),
                      {loop.inductionVar()});
  builder.setInsertPoint(fn.entryBlock());
  builder.createReturn();

  EXPECT_EQ(loop.lowerBound(), 0);
  EXPECT_EQ(loop.upperBound(), 8);
  EXPECT_EQ(loop.step(), 2);
  EXPECT_EQ(loop.tripCount(), 4);
  EXPECT_FALSE(loop.pipelineII().has_value());

  DiagnosticEngine diags;
  EXPECT_TRUE(verifyModule(module.get(), diags)) << diags.str();
  EXPECT_EQ(module.get().lookupFunc("k").op, fn.op);
  EXPECT_FALSE(module.get().lookupFunc("nope"));
}

TEST(MirOps, UseDefAndRAUW) {
  MContext ctx;
  OpBuilder builder(ctx);
  OwnedModule module = OpBuilder::createModule();
  builder.setInsertPoint(module.get().body());
  FuncOp fn = builder.createFunc("k", ctx.fnTy({}, {}));
  builder.setInsertPoint(fn.entryBlock());
  Value *a = builder.constantIndex(1);
  Value *b = builder.constantIndex(2);
  Value *sum = builder.binary(ops::AddI, a, b);
  builder.createReturn();

  EXPECT_EQ(a->uses().size(), 1u);
  Value *c = builder.constantIndex(3);
  a->replaceAllUsesWith(c);
  EXPECT_TRUE(a->uses().empty());
  EXPECT_EQ(sum->definingOp()->operand(0), c);
}

TEST(MirOps, CloneWithRegions) {
  MContext ctx;
  OpBuilder builder(ctx);
  OwnedModule module = OpBuilder::createModule();
  builder.setInsertPoint(module.get().body());
  FuncOp fn = builder.createFunc("k", ctx.fnTy({}, {}));
  builder.setInsertPoint(fn.entryBlock());
  ForOp loop = builder.affineFor(0, 4);
  builder.setInsertPointToLoopBody(loop);
  Value *doubled = builder.binary(ops::AddI, loop.inductionVar(),
                                  loop.inductionVar());
  (void)doubled;
  builder.setInsertPoint(fn.entryBlock());
  builder.createReturn();

  std::map<Value *, Value *> remap;
  auto clone = loop.op->clone(remap);
  ForOp clonedLoop = ForOp::wrap(clone.get());
  EXPECT_EQ(clonedLoop.tripCount(), 4);
  // Cloned body uses the cloned induction variable.
  Operation *clonedAdd = clonedLoop.bodyBlock()->front();
  EXPECT_EQ(clonedAdd->operand(0), clonedLoop.inductionVar());
  EXPECT_NE(clonedLoop.inductionVar(), loop.inductionVar());
}

TEST(MirVerifier, CatchesBadIndexCount) {
  MContext ctx;
  OpBuilder builder(ctx);
  OwnedModule module = OpBuilder::createModule();
  builder.setInsertPoint(module.get().body());
  FuncOp fn =
      builder.createFunc("k", ctx.fnTy({ctx.memrefTy({4, 4}, ctx.f64())}, {}));
  builder.setInsertPoint(fn.entryBlock());
  Value *idx = builder.constantIndex(0);
  // memref.load with one index on a 2-D memref: build generically to dodge
  // the builder's assert.
  builder.createOp(ops::MemRefLoad, {fn.arg(0), idx}, {ctx.f64()});
  builder.createReturn();
  DiagnosticEngine diags;
  EXPECT_FALSE(verifyModule(module.get(), diags));
  EXPECT_NE(diags.str().find("rank"), std::string::npos);
}

TEST(MirVerifier, CatchesUseBeforeDef) {
  MContext ctx;
  OpBuilder builder(ctx);
  OwnedModule module = OpBuilder::createModule();
  builder.setInsertPoint(module.get().body());
  FuncOp fn = builder.createFunc("k", ctx.fnTy({}, {}));
  builder.setInsertPoint(fn.entryBlock());
  Value *a = builder.constantIndex(1);
  Value *b = builder.constantIndex(2);
  Operation *sum = builder.createOp(ops::AddI, {a, b}, {ctx.indexTy()});
  builder.createReturn();
  // Move the constant AFTER its use.
  Operation *aOp = a->definingOp();
  fn.entryBlock()->insert(fn.entryBlock()->positionOf(sum)++,
                          aOp->removeFromParent());
  // Rebuild order: a now after sum? (insert before sum's next position.)
  // Simply verify the verifier notices when order is wrong.
  DiagnosticEngine diags;
  bool ok = verifyModule(module.get(), diags);
  // Depending on exact insertion the order may still be fine; enforce the
  // broken order explicitly if needed.
  if (ok) {
    auto owned = aOp->removeFromParent();
    fn.entryBlock()->append(std::move(owned)); // after return, clearly bad
    DiagnosticEngine diags2;
    EXPECT_FALSE(verifyModule(module.get(), diags2));
  } else {
    SUCCEED();
  }
}

TEST(MirPrintParse, RoundTrip) {
  MContext ctx;
  OpBuilder builder(ctx);
  OwnedModule module = OpBuilder::createModule();
  builder.setInsertPoint(module.get().body());
  FuncOp fn = builder.createFunc(
      "k", ctx.fnTy({ctx.memrefTy({4, 4}, ctx.f64())}, {}));
  builder.setInsertPoint(fn.entryBlock());
  ForOp loop = builder.affineFor(0, 4);
  setPipelineDirective(loop, 1);
  builder.setInsertPointToLoopBody(loop);
  Value *iv = loop.inductionVar();
  Value *v = builder.affineLoad(fn.arg(0), AffineMap::identity(ctx, 2),
                                {iv, iv});
  Value *doubled = builder.binary(ops::MulF, v, v);
  builder.affineStore(doubled, fn.arg(0), AffineMap::identity(ctx, 2),
                      {iv, iv});
  builder.setInsertPoint(fn.entryBlock());
  builder.createReturn();

  std::string printed = printModule(module.get());
  MContext ctx2;
  DiagnosticEngine diags;
  auto reparsed = parseModule(printed, ctx2, diags);
  ASSERT_TRUE(reparsed.has_value()) << diags.str() << "\n" << printed;
  EXPECT_EQ(printModule(reparsed->get()), printed);

  DiagnosticEngine verifyDiags;
  EXPECT_TRUE(verifyModule(reparsed->get(), verifyDiags))
      << verifyDiags.str();
}

TEST(MirPrintParse, SignedExponentFloatRoundTrip) {
  // The shortest-round-trip printer emits forms like 1e-05; the lexer's
  // shape guard (32x32) must still accept a signed exponent. Regression:
  // reparsing cached MLIR stage text failed on exactly this.
  MContext ctx;
  OpBuilder builder(ctx);
  OwnedModule module = OpBuilder::createModule();
  builder.setInsertPoint(module.get().body());
  FuncOp fn = builder.createFunc("eps", ctx.fnTy({}, {}));
  builder.setInsertPoint(fn.entryBlock());
  builder.constantFloat(1e-5, ctx.f64());
  builder.constantFloat(-2.5e+17, ctx.f64());
  builder.createReturn();

  std::string printed = printModule(module.get());
  EXPECT_NE(printed.find("1e-05"), std::string::npos) << printed;
  MContext ctx2;
  DiagnosticEngine diags;
  auto reparsed = parseModule(printed, ctx2, diags);
  ASSERT_TRUE(reparsed.has_value()) << diags.str() << "\n" << printed;
  EXPECT_EQ(printModule(reparsed->get()), printed);
}

TEST(MirParseErrors, UnknownValue) {
  MContext ctx;
  DiagnosticEngine diags;
  auto module = parseModule(R"(builtin.module {
  func.func @k(%arg0: memref<4xf64>) {
    "func.return"(%ghost) : (index) -> ()
  }
})",
                            ctx, diags);
  EXPECT_FALSE(module.has_value());
  EXPECT_NE(diags.str().find("unknown value"), std::string::npos);
}

TEST(MirParseErrors, BadType) {
  MContext ctx;
  DiagnosticEngine diags;
  auto module = parseModule(R"(builtin.module {
  func.func @k(%arg0: quux<4xf64>) {
    "func.return"() : () -> ()
  }
})",
                            ctx, diags);
  EXPECT_FALSE(module.has_value());
}

TEST(MirParseErrors, MissingModule) {
  MContext ctx;
  DiagnosticEngine diags;
  auto module = parseModule("func.func @k() {}", ctx, diags);
  EXPECT_FALSE(module.has_value());
}

TEST(MirParse, AffineMapAttrRoundTrip) {
  MContext ctx;
  DiagnosticEngine diags;
  const char *text = R"(builtin.module {
  func.func @k(%arg0: memref<4x8xf64>) {
    %0 = "arith.constant"() {value = 1} : () -> (index)
    %1 = "affine.apply"(%0) {map = affine_map<(d0) -> ((d0 * 8) + 3)>} : (index) -> (index)
    "func.return"() : () -> ()
  }
})";
  auto module = parseModule(text, ctx, diags);
  ASSERT_TRUE(module.has_value()) << diags.str();
  // Find the apply op and evaluate its map.
  const AffineMap *map = nullptr;
  module->get().op->walk([&](Operation *op) {
    if (op->is(ops::AffineApply))
      map = &cast<AffineMapAttr>(op->attr("map"))->value();
  });
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(map->evaluate({5})[0], 43);
}

TEST(MirParse, ModFloorDivExpressions) {
  MContext ctx;
  DiagnosticEngine diags;
  const char *text = R"(builtin.module {
  func.func @k() {
    %0 = "arith.constant"() {value = 13} : () -> (index)
    %1 = "affine.apply"(%0) {map = affine_map<(d0) -> ((d0 mod 4) + (d0 floordiv 4))>} : (index) -> (index)
    "func.return"() : () -> ()
  }
})";
  auto module = parseModule(text, ctx, diags);
  ASSERT_TRUE(module.has_value()) << diags.str();
  const AffineMap *map = nullptr;
  module->get().op->walk([&](Operation *op) {
    if (op->is(ops::AffineApply))
      map = &cast<AffineMapAttr>(op->attr("map"))->value();
  });
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(map->evaluate({13})[0], 13 % 4 + 13 / 4);
}

// Regression: the lexer used to hand float words to std::stod, which
// throws on out-of-range values instead of diagnosing them.
TEST(MirParseErrors, HugeFloatLiteralRejected) {
  MContext ctx;
  DiagnosticEngine diags;
  auto module = parseModule(R"(builtin.module {
  func.func @k() {
    %0 = "arith.constant"() {value = 1.0e999} : () -> (f64)
    "func.return"() : () -> ()
  }
})",
                            ctx, diags);
  EXPECT_FALSE(module.has_value());
  EXPECT_NE(diags.str().find("float literal"), std::string::npos);
}
