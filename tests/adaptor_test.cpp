// Tests for the HLS adaptor (the paper's contribution): each stage in
// isolation, the full pipeline, and the ablation behaviour — disabling a
// stage must leave IR the HLS frontend rejects.
#include "adaptor/Adaptor.h"
#include "adaptor/ShapeInfo.h"
#include "flow/Kernels.h"
#include "lir/LContext.h"
#include "lir/HlsCompat.h"
#include "lir/Parser.h"
#include "lir/Printer.h"
#include "lir/Verifier.h"
#include "lir/transforms/Transforms.h"
#include "lowering/Lowering.h"
#include "mir/Pass.h"
#include "mir/transforms/MirTransforms.h"

#include <gtest/gtest.h>

using namespace mha;

namespace {

/// Lowers a kernel to the modern IR the adaptor consumes.
struct ModernIR {
  mir::MContext mctx;
  lir::LContext lctx;
  std::unique_ptr<lir::Module> module;

  explicit ModernIR(const std::string &kernel,
                    flow::KernelConfig config = {}) {
    const flow::KernelSpec *spec = flow::findKernel(kernel);
    DiagnosticEngine diags;
    mir::OwnedModule mod = spec->build(mctx, config);
    mir::MPassManager pm;
    pm.add(mir::createCanonicalizePass());
    pm.add(mir::createAffineToScfPass());
    pm.add(mir::createCanonicalizePass());
    EXPECT_TRUE(pm.run(mod.get(), diags)) << diags.str();
    module = lowering::lowerToLIR(mod.get(), lctx, {}, diags);
    EXPECT_NE(module, nullptr) << diags.str();
  }

  lir::PassStats run(const adaptor::AdaptorOptions &options) {
    lir::PassManager pm(/*verifyEach=*/true);
    adaptor::buildAdaptorPipeline(pm, options);
    DiagnosticEngine diags;
    EXPECT_TRUE(pm.run(*module, diags)) << diags.str();
    return pm.totalStats();
  }

  lir::PassStats runSingle(std::unique_ptr<lir::ModulePass> pass) {
    lir::PassManager pm(/*verifyEach=*/true);
    pm.add(std::move(pass));
    DiagnosticEngine diags;
    EXPECT_TRUE(pm.run(*module, diags)) << diags.str();
    return pm.totalStats();
  }

  lir::HlsCompatReport compat() {
    DiagnosticEngine diags;
    return lir::checkHlsCompatibility(*module, diags);
  }
};

} // namespace

TEST(AdaptorPipeline, GemmBecomesAccepted) {
  ModernIR ir("gemm");
  // Before: rejected for multiple reasons.
  lir::HlsCompatReport before = ir.compat();
  EXPECT_FALSE(before.accepted);
  EXPECT_GT(before.violations["opaque-pointers"], 0);
  EXPECT_GT(before.violations["descriptor-arg"], 0);
  EXPECT_GT(before.violations["intrinsic-call"], 0);
  EXPECT_GT(before.violations["modern-metadata"], 0);
  EXPECT_GT(before.violations["bad-attribute"], 0);

  lir::PassStats stats = ir.run({});
  EXPECT_EQ(stats["adaptor.descriptors-eliminated"], 3);
  EXPECT_GT(stats["adaptor.geps-delinearized"], 0);
  EXPECT_GT(stats["adaptor.pointers-typed"], 0);
  EXPECT_GT(stats["adaptor.loop-directives-converted"], 0);

  lir::HlsCompatReport after = ir.compat();
  EXPECT_TRUE(after.accepted) << lir::printModule(*ir.module);
  EXPECT_EQ(after.warnings, 0);
}

TEST(AdaptorPipeline, AllKernelsBecomeAccepted) {
  for (const flow::KernelSpec &spec : flow::allKernels()) {
    flow::KernelConfig config;
    config.partitionFactor = 2;
    ModernIR ir(spec.name, config);
    ir.run({});
    lir::HlsCompatReport report = ir.compat();
    EXPECT_TRUE(report.accepted) << spec.name;
    EXPECT_EQ(report.warnings, 0) << spec.name;
  }
}

TEST(DescriptorElimination, FlattensSignature) {
  ModernIR ir("gemm");
  lir::Function *fn = ir.module->getFunction("gemm");
  EXPECT_EQ(fn->numArgs(), 21u);
  lir::PassStats stats =
      ir.runSingle(adaptor::createDescriptorEliminationPass());
  EXPECT_EQ(stats["adaptor.descriptors-eliminated"], 3);
  EXPECT_EQ(stats["adaptor.descriptor-args-folded"], 18);
  EXPECT_EQ(fn->numArgs(), 3u);
  for (const auto &arg : fn->args()) {
    EXPECT_TRUE(arg->type()->isPointer());
    EXPECT_NE(arg->getMetadata("mha.shape"), nullptr);
    EXPECT_TRUE(arg->hasAttr("noalias"));
  }
  DiagnosticEngine diags;
  EXPECT_TRUE(lir::verifyModule(*ir.module, diags)) << diags.str();
}

TEST(GepCanonicalize, RecoversShapedGeps) {
  ModernIR ir("gemm");
  ir.runSingle(adaptor::createDescriptorEliminationPass());
  ir.runSingle(lir::createInstCombinePass());
  lir::PassStats stats = ir.runSingle(adaptor::createGepCanonicalizePass());
  EXPECT_GT(stats["adaptor.geps-delinearized"], 0);
  EXPECT_EQ(stats["adaptor.geps-kept-flat"], 0);
  std::string out = lir::printModule(*ir.module);
  EXPECT_NE(out.find("getelementptr [32 x [32 x double]]"),
            std::string::npos);
}

TEST(GepCanonicalize, ReshapesAllocas) {
  ModernIR ir("mm2");
  ir.runSingle(adaptor::createDescriptorEliminationPass());
  ir.runSingle(lir::createInstCombinePass());
  lir::PassStats stats = ir.runSingle(adaptor::createGepCanonicalizePass());
  EXPECT_EQ(stats["adaptor.allocas-reshaped"], 1);
  std::string out = lir::printModule(*ir.module);
  EXPECT_NE(out.find("alloca [32 x [32 x double]]"), std::string::npos);
}

TEST(GepCanonicalize, Delinearization) {
  // Direct unit test of the linear decomposition helper.
  lir::LContext ctx;
  auto linear = adaptor::decomposeLinear(ctx.constI64(77));
  ASSERT_TRUE(linear.has_value());
  EXPECT_EQ(linear->constant, 77);
  EXPECT_TRUE(linear->terms.empty());
}

TEST(IntrinsicLegalize, ExpandsFMulAdd) {
  ModernIR ir("gemm");
  ir.runSingle(adaptor::createDescriptorEliminationPass());
  lir::PassStats stats = ir.runSingle(adaptor::createIntrinsicLegalizePass());
  EXPECT_EQ(stats["adaptor.fmuladd-expanded"], 1);
  std::string out = lir::printModule(*ir.module);
  EXPECT_EQ(out.find("llvm.fmuladd"), std::string::npos);
  EXPECT_NE(out.find("fmul"), std::string::npos);
  EXPECT_NE(out.find("fadd"), std::string::npos);
}

TEST(IntrinsicLegalize, ExpandsMemcpyToLoopNest) {
  // Build IR with a memcpy via the parser.
  lir::LContext ctx;
  DiagnosticEngine diags;
  auto module = lir::parseModule(R"(
!flag opaque-pointers = "true"
declare void @llvm.memcpy.p0.p0.i64(ptr, ptr, i64)

define void @f(ptr !mha.shape !{!"f64", i64 2, i64 4, i64 4} %dst, ptr !mha.shape !{!"f64", i64 2, i64 4, i64 4} %src) {
entry:
  call void @llvm.memcpy.p0.p0.i64(ptr %dst, ptr %src, i64 128)
  ret void
}
)",
                                 ctx, diags);
  ASSERT_NE(module, nullptr) << diags.str();
  lir::PassManager pm(true);
  pm.add(adaptor::createIntrinsicLegalizePass());
  ASSERT_TRUE(pm.run(*module, diags)) << diags.str();
  EXPECT_EQ(pm.totalStats().at("adaptor.memcpy-expanded"), 1);
  std::string out = lir::printModule(*module);
  EXPECT_EQ(out.find("llvm.memcpy"), std::string::npos);
  // Rank-2 copy nest: two loop headers.
  EXPECT_NE(out.find("copy0.header"), std::string::npos);
  EXPECT_NE(out.find("copy1.header"), std::string::npos);
  EXPECT_NE(out.find("xlx.pipeline"), std::string::npos);
}

TEST(PointerTypeRecovery, TypesEverything) {
  ModernIR ir("gemm");
  ir.runSingle(adaptor::createDescriptorEliminationPass());
  ir.runSingle(adaptor::createIntrinsicLegalizePass());
  ir.runSingle(lir::createInstCombinePass());
  ir.runSingle(adaptor::createGepCanonicalizePass());
  lir::PassStats stats =
      ir.runSingle(adaptor::createPointerTypeRecoveryPass());
  EXPECT_GT(stats["adaptor.pointers-typed"], 0);
  EXPECT_TRUE(ir.module->flagIs("opaque-pointers", "false"));
  std::string out = lir::printModule(*ir.module);
  EXPECT_EQ(out.find(" ptr "), std::string::npos) << out;
  EXPECT_NE(out.find("[32 x [32 x double]]*"), std::string::npos);
}

TEST(MetadataConvert, RenamesDirectives) {
  flow::KernelConfig config;
  config.pipelineII = 2;
  config.partitionFactor = 4;
  ModernIR ir("gemm", config);
  ir.runSingle(adaptor::createDescriptorEliminationPass());
  lir::PassStats stats = ir.runSingle(adaptor::createMetadataConvertPass());
  EXPECT_GT(stats["adaptor.loop-directives-converted"], 0);
  EXPECT_EQ(stats["adaptor.partitions-converted"], 2);
  std::string out = lir::printModule(*ir.module);
  EXPECT_EQ(out.find("llvm.loop."), std::string::npos);
  EXPECT_NE(out.find("!xlx.pipeline !{i64 2}"), std::string::npos);
  EXPECT_NE(out.find("xlx.array_partition"), std::string::npos);
  EXPECT_EQ(out.find("mha.partition="), std::string::npos);
}

TEST(AttributeScrub, RemovesModernAttrs) {
  ModernIR ir("gemm");
  lir::Function *fn = ir.module->getFunction("gemm");
  EXPECT_TRUE(fn->hasAttr("mustprogress"));
  lir::PassStats stats = ir.runSingle(adaptor::createAttributeScrubPass());
  EXPECT_GE(stats["adaptor.fn-attrs-scrubbed"], 5);
  EXPECT_FALSE(fn->hasAttr("mustprogress"));
  EXPECT_FALSE(fn->hasAttr("memory(argmem: readwrite)"));
  // noalias on pointer args survives.
  // (args are still descriptor-form here; aligned ptr had noalias)
  bool anyNoalias = false;
  for (const auto &arg : fn->args())
    anyNoalias |= arg->hasAttr("noalias");
  EXPECT_TRUE(anyNoalias);
}

// --- Ablation: removing any stage leaves rejected IR. ---

namespace {

lir::HlsCompatReport runAblation(const std::string &kernel,
                                 void (*disable)(adaptor::AdaptorOptions &)) {
  flow::KernelConfig config;
  config.pipelineII = 1;
  config.partitionFactor = 2;
  ModernIR ir(kernel, config);
  adaptor::AdaptorOptions options;
  options.verifyCompat = false; // we check manually
  disable(options);
  lir::PassManager pm(true);
  adaptor::buildAdaptorPipeline(pm, options);
  DiagnosticEngine diags;
  EXPECT_TRUE(pm.run(*ir.module, diags)) << diags.str();
  return ir.compat();
}

} // namespace

TEST(AdaptorAblation, WithoutDescriptorElimination) {
  auto report = runAblation("gemm", [](adaptor::AdaptorOptions &o) {
    o.runDescriptorElimination = false;
  });
  EXPECT_FALSE(report.accepted);
  EXPECT_GT(report.violations["descriptor-arg"] +
                report.violations["opaque-pointers"],
            0);
}

TEST(AdaptorAblation, WithoutIntrinsicLegalize) {
  auto report = runAblation("gemm", [](adaptor::AdaptorOptions &o) {
    o.runIntrinsicLegalize = false;
  });
  EXPECT_FALSE(report.accepted);
  EXPECT_GT(report.violations["intrinsic-call"], 0);
}

TEST(AdaptorAblation, WithoutPointerRecovery) {
  auto report = runAblation("gemm", [](adaptor::AdaptorOptions &o) {
    o.runPointerTypeRecovery = false;
  });
  EXPECT_FALSE(report.accepted);
  EXPECT_GT(report.violations["opaque-pointers"], 0);
}

TEST(AdaptorAblation, WithoutMetadataConvert) {
  auto report = runAblation("gemm", [](adaptor::AdaptorOptions &o) {
    o.runMetadataConvert = false;
  });
  EXPECT_FALSE(report.accepted);
  EXPECT_GT(report.violations["modern-metadata"], 0);
}

TEST(AdaptorAblation, WithoutAttributeScrub) {
  auto report = runAblation("gemm", [](adaptor::AdaptorOptions &o) {
    o.runAttributeScrub = false;
  });
  EXPECT_FALSE(report.accepted);
  EXPECT_GT(report.violations["bad-attribute"], 0);
}

TEST(AdaptorAblation, WithoutGepCanonicalizeOnlyWarns) {
  // Flat GEPs are a QoR problem, not a rejection: warnings, no errors.
  auto report = runAblation("gemm", [](adaptor::AdaptorOptions &o) {
    o.runGepCanonicalize = false;
  });
  EXPECT_TRUE(report.accepted);
  EXPECT_GT(report.violations["unshaped-gep"], 0);
}
