// Printer/parser round-trip tests for MiniLLVM textual IR.
#include "lir/IRBuilder.h"
#include "lir/LContext.h"
#include "lir/Parser.h"
#include "lir/Printer.h"
#include "lir/Verifier.h"

#include <gtest/gtest.h>

using namespace mha;
using namespace mha::lir;

namespace {

/// Parses, reprints, reparses and expects fixpoint text equality.
void expectRoundTrip(const std::string &text) {
  LContext ctx1;
  DiagnosticEngine diags;
  auto m1 = parseModule(text, ctx1, diags);
  ASSERT_NE(m1, nullptr) << diags.str();
  std::string printed1 = printModule(*m1);

  LContext ctx2;
  DiagnosticEngine diags2;
  auto m2 = parseModule(printed1, ctx2, diags2);
  ASSERT_NE(m2, nullptr) << diags2.str() << "\nfirst print:\n" << printed1;
  EXPECT_EQ(printed1, printModule(*m2));

  DiagnosticEngine verifyDiags;
  EXPECT_TRUE(verifyModule(*m2, verifyDiags)) << verifyDiags.str();
}

} // namespace

TEST(LirParse, MinimalFunction) {
  expectRoundTrip(R"(
define void @f() {
entry:
  ret void
}
)");
}

TEST(LirParse, ArithmeticChain) {
  expectRoundTrip(R"(
define void @f(i64 %a, i64 %b) {
entry:
  %0 = add i64 %a, %b
  %1 = mul i64 %0, 3
  %2 = sub i64 %1, -2
  %3 = sdiv i64 %2, %a
  %4 = and i64 %3, 255
  %5 = shl i64 %4, 2
  ret void
}
)");
}

TEST(LirParse, FloatOpsAndCalls) {
  expectRoundTrip(R"(
declare double @hls_sqrt(double)

define void @f(double %x) {
entry:
  %0 = fmul double %x, 2.0
  %1 = fadd double %0, 0.5
  %2 = call double @hls_sqrt(double %1)
  %3 = fcmp olt double %2, 10.0
  %4 = select i1 %3, double %2, double 10.0
  ret void
}
)");
}

TEST(LirParse, MemoryAndGEP) {
  expectRoundTrip(R"(
define void @f([4 x [8 x double]]* %A, i64 %i) {
entry:
  %0 = getelementptr [4 x [8 x double]], [4 x [8 x double]]* %A, i64 0, i64 %i, i64 3
  %1 = load double, double* %0
  store double %1, double* %0
  ret void
}
)");
}

TEST(LirParse, OpaquePointers) {
  expectRoundTrip(R"(
!flag opaque-pointers = "true"

define void @f(ptr %p) {
entry:
  %0 = getelementptr double, ptr %p, i64 4
  %1 = load double, ptr %0
  ret void
}
)");
}

TEST(LirParse, LoopWithPhiAndMetadata) {
  expectRoundTrip(R"(
define void @f(ptr %p) {
entry:
  br label %header

header:
  %iv = phi i64 [ 0, %entry ], [ %iv.next, %body ]
  %cmp = icmp slt i64 %iv, 32
  br i1 %cmp, label %body, label %exit

body:
  %addr = getelementptr double, ptr %p, i64 %iv
  %v = load double, ptr %addr
  store double %v, ptr %addr
  %iv.next = add i64 %iv, 1
  br label %header, !xlx.pipeline !{i64 1}, !xlx.tripcount !{i64 32}

exit:
  ret void
}
)");
}

TEST(LirParse, ArgumentAttributesAndMetadata) {
  expectRoundTrip(R"(
define void @f(ptr noalias !mha.shape !{!"f64", i64 2, i64 4, i64 4} %A, i64 %n) #[mustprogress, nofree] {
entry:
  ret void
}
)");
}

TEST(LirParse, CastsAndFreeze) {
  expectRoundTrip(R"(
define void @f(i32 %x, double %d) {
entry:
  %0 = sext i32 %x to i64
  %1 = trunc i64 %0 to i8
  %2 = sitofp i32 %x to double
  %3 = fptosi double %d to i32
  %4 = freeze i64 %0
  %5 = fneg double %2
  ret void
}
)");
}

TEST(LirParse, NestedMetadata) {
  expectRoundTrip(R"(
define void @f(ptr !xlx.array_partition !{!{i64 1, i64 4, !"cyclic"}} %A) {
entry:
  ret void
}
)");
}

TEST(LirParse, UndefAndSelect) {
  expectRoundTrip(R"(
define void @f(i1 %c) {
entry:
  %0 = select i1 %c, i64 undef, i64 9
  ret void
}
)");
}

TEST(LirParseErrors, UndefinedValue) {
  LContext ctx;
  DiagnosticEngine diags;
  auto module = parseModule(R"(
define void @f() {
entry:
  %0 = add i64 %missing, 1
  ret void
}
)",
                            ctx, diags);
  EXPECT_EQ(module, nullptr);
  EXPECT_NE(diags.str().find("undefined value"), std::string::npos);
}

TEST(LirParseErrors, UnknownInstruction) {
  LContext ctx;
  DiagnosticEngine diags;
  auto module = parseModule(R"(
define void @f() {
entry:
  %0 = frobnicate i64 1, 2
  ret void
}
)",
                            ctx, diags);
  EXPECT_EQ(module, nullptr);
  EXPECT_TRUE(diags.hadError());
}

TEST(LirParseErrors, BadType) {
  LContext ctx;
  DiagnosticEngine diags;
  auto module = parseModule("define void @f(quux %x) { entry: ret void }",
                            ctx, diags);
  EXPECT_EQ(module, nullptr);
}

TEST(LirPrint, BuilderOutputParsesBack) {
  // Build IR programmatically, print, and reparse.
  LContext ctx;
  Module module(ctx, "m");
  Function *fn =
      module.createFunction(ctx.fnTy(ctx.voidTy(), {ctx.opaquePtrTy()}), "k");
  module.flags()["opaque-pointers"] = "true";
  BasicBlock *entry = fn->createBlock("entry");
  IRBuilder builder(ctx);
  builder.setInsertPoint(entry);
  Instruction *gep =
      builder.createGEP(ctx.doubleTy(), fn->arg(0), {ctx.constI64(5)});
  Instruction *load = builder.createLoad(ctx.doubleTy(), gep);
  builder.createStore(load, gep);
  builder.createRet();

  std::string text = printModule(module);
  LContext ctx2;
  DiagnosticEngine diags;
  auto reparsed = parseModule(text, ctx2, diags);
  ASSERT_NE(reparsed, nullptr) << diags.str() << text;
  EXPECT_EQ(printModule(*reparsed), text);
}

// Regression: float literals used to go through std::stod, which throws
// std::out_of_range on overflow instead of reporting a parse diagnostic.
TEST(LirParseErrors, HugeFloatLiteralRejected) {
  LContext ctx;
  DiagnosticEngine diags;
  auto module = parseModule(R"(
define double @f() {
entry:
  %0 = fadd double 1.0e999, 0.0
  ret double %0
}
)",
                            ctx, diags);
  EXPECT_EQ(module, nullptr);
  EXPECT_NE(diags.str().find("float literal"), std::string::npos);
}

TEST(LirParseErrors, HugeIntegerLiteralRejected) {
  LContext ctx;
  DiagnosticEngine diags;
  auto module = parseModule(R"(
define i64 @f() {
entry:
  %0 = add i64 9223372036854775808, 1
  ret i64 %0
}
)",
                            ctx, diags);
  EXPECT_EQ(module, nullptr);
  EXPECT_NE(diags.str().find("integer literal"), std::string::npos);
}

// Regression: the parser read function attributes one identifier at a time,
// so printed groups containing non-identifier characters — e.g. the
// lowering's #[memory(argmem: readwrite)] — failed to reparse.
TEST(LirParse, FunctionAttributeGroupsRoundTrip) {
  expectRoundTrip(R"(
define void @f() #[memory(argmem: readwrite), mha.partition.0:1:4:cyclic, mustprogress, nofree, nosync, willreturn] {
entry:
  ret void
}
)");
}

// Regression: lowering reuses fixed instruction names (one "idx.scaled" per
// array subscript). The printer used names verbatim, emitting duplicate
// %defs; the parser binds references by name, so later uses rebound to the
// wrong definition on reparse.
TEST(LirPrint, DuplicateValueNamesAreUniquifiedWhenPrinting) {
  LContext ctx;
  Module module(ctx, "m");
  module.flags()["opaque-pointers"] = "false";
  Function *fn = module.createFunction(
      ctx.fnTy(ctx.voidTy(), {ctx.i64(), ctx.i64()}), "k");
  fn->arg(0)->setName("a");
  fn->arg(1)->setName("b");
  BasicBlock *entry = fn->createBlock("entry");
  IRBuilder builder(ctx);
  builder.setInsertPoint(entry);
  Instruction *first = builder.createAdd(fn->arg(0), fn->arg(1), "idx");
  Instruction *second = builder.createAdd(first, fn->arg(1), "idx");
  builder.createAdd(first, second, "sum");
  builder.createRet();

  std::string text = printModule(module);
  EXPECT_NE(first->name(), second->name());
  LContext ctx2;
  DiagnosticEngine diags;
  auto reparsed = parseModule(text, ctx2, diags);
  ASSERT_NE(reparsed, nullptr) << diags.str() << text;
  EXPECT_EQ(printModule(*reparsed), text);
}
