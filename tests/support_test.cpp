// Unit tests for the support library.
#include "support/Diagnostics.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

using namespace mha;

TEST(StringUtils, StrFmt) {
  EXPECT_EQ(strfmt("x=%d", 42), "x=42");
  EXPECT_EQ(strfmt("%s-%s", "a", "b"), "a-b");
  EXPECT_EQ(strfmt("%.2f", 1.5), "1.50");
  EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(StringUtils, Split) {
  EXPECT_EQ(splitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(splitString("a,,c", ','), (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(splitString("a,,c", ',', /*keepEmpty=*/true),
            (std::vector<std::string>{"a", "", "c"}));
  EXPECT_TRUE(splitString("", ',').empty());
  EXPECT_EQ(splitString("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("\ta b\n"), "a b");
}

TEST(StringUtils, StartsEndsWith) {
  EXPECT_TRUE(startsWith("llvm.memcpy", "llvm."));
  EXPECT_FALSE(startsWith("l", "llvm."));
  EXPECT_TRUE(endsWith("foo.f32", ".f32"));
  EXPECT_FALSE(endsWith("f32", "xf32"));
}

TEST(StringUtils, Join) {
  EXPECT_EQ(joinStrings({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(joinStrings({}, ","), "");
  EXPECT_EQ(joinStrings({"only"}, ","), "only");
}

TEST(StringUtils, ValidIdentifier) {
  EXPECT_TRUE(isValidIdentifier("foo"));
  EXPECT_TRUE(isValidIdentifier("_x1"));
  EXPECT_TRUE(isValidIdentifier("a.b"));
  EXPECT_FALSE(isValidIdentifier(""));
  EXPECT_FALSE(isValidIdentifier("1a"));
  EXPECT_FALSE(isValidIdentifier("a b"));
}

TEST(Diagnostics, CollectsAndCounts) {
  DiagnosticEngine diags;
  EXPECT_FALSE(diags.hadError());
  diags.warning("careful");
  EXPECT_FALSE(diags.hadError());
  diags.error("boom", {3, 7});
  EXPECT_TRUE(diags.hadError());
  EXPECT_EQ(diags.errorCount(), 1u);
  EXPECT_EQ(diags.diagnostics().size(), 2u);
  EXPECT_NE(diags.str().find("3:7: error: boom"), std::string::npos);
  EXPECT_NE(diags.str().find("warning: careful"), std::string::npos);
  diags.clear();
  EXPECT_FALSE(diags.hadError());
  EXPECT_TRUE(diags.diagnostics().empty());
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelFor) {
  ThreadPool pool(3);
  std::vector<int> data(257, 0);
  parallelFor(pool, data.size(), [&](size_t i) { data[i] = static_cast<int>(i); });
  long long sum = std::accumulate(data.begin(), data.end(), 0ll);
  EXPECT_EQ(sum, 257ll * 256 / 2);
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] { counter++; });
  pool.wait();
  pool.submit([&] { counter++; });
  pool.wait();
  EXPECT_EQ(counter.load(), 2);
}
