// Unit tests for the support library.
#include "support/Arena.h"
#include "support/Diagnostics.h"
#include "support/Hash.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <clocale>
#include <cmath>
#include <future>
#include <numeric>
#include <set>
#include <stdexcept>
#include <cwchar>

using namespace mha;

TEST(StringUtils, StrFmt) {
  EXPECT_EQ(strfmt("x=%d", 42), "x=42");
  EXPECT_EQ(strfmt("%s-%s", "a", "b"), "a-b");
  EXPECT_EQ(strfmt("%.2f", 1.5), "1.50");
  EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(StringUtils, Split) {
  EXPECT_EQ(splitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(splitString("a,,c", ','), (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(splitString("a,,c", ',', /*keepEmpty=*/true),
            (std::vector<std::string>{"a", "", "c"}));
  EXPECT_TRUE(splitString("", ',').empty());
  EXPECT_EQ(splitString("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("\ta b\n"), "a b");
}

TEST(StringUtils, StartsEndsWith) {
  EXPECT_TRUE(startsWith("llvm.memcpy", "llvm."));
  EXPECT_FALSE(startsWith("l", "llvm."));
  EXPECT_TRUE(endsWith("foo.f32", ".f32"));
  EXPECT_FALSE(endsWith("f32", "xf32"));
}

TEST(StringUtils, Join) {
  EXPECT_EQ(joinStrings({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(joinStrings({}, ","), "");
  EXPECT_EQ(joinStrings({"only"}, ","), "only");
}

TEST(StringUtils, ValidIdentifier) {
  EXPECT_TRUE(isValidIdentifier("foo"));
  EXPECT_TRUE(isValidIdentifier("_x1"));
  EXPECT_TRUE(isValidIdentifier("a.b"));
  EXPECT_FALSE(isValidIdentifier(""));
  EXPECT_FALSE(isValidIdentifier("1a"));
  EXPECT_FALSE(isValidIdentifier("a b"));
}

TEST(StringUtils, ParseIntAcceptsStrictIntegers) {
  EXPECT_EQ(parseInt("0"), 0);
  EXPECT_EQ(parseInt("42"), 42);
  EXPECT_EQ(parseInt("-7"), -7);
  EXPECT_EQ(parseInt("+7"), std::nullopt); // from_chars: no leading '+'
  EXPECT_EQ(parseInt("9223372036854775807"), INT64_MAX);
  EXPECT_EQ(parseInt("-9223372036854775808"), INT64_MIN);
}

TEST(StringUtils, ParseIntRejectsGarbageAtoiWouldAccept) {
  // atoi("abc") == 0 and atoi("12abc") == 12 — both must be rejected.
  EXPECT_EQ(parseInt(""), std::nullopt);
  EXPECT_EQ(parseInt("abc"), std::nullopt);
  EXPECT_EQ(parseInt("12abc"), std::nullopt);
  EXPECT_EQ(parseInt("1.5"), std::nullopt);
  EXPECT_EQ(parseInt(" 4"), std::nullopt);
  EXPECT_EQ(parseInt("4 "), std::nullopt);
  EXPECT_EQ(parseInt("-"), std::nullopt);
  EXPECT_EQ(parseInt("9223372036854775808"), std::nullopt); // overflow
  EXPECT_EQ(parseInt("0x10"), std::nullopt);
}

TEST(StringUtils, ParseDoubleAcceptsStrictLiterals) {
  EXPECT_EQ(parseDouble("0"), 0.0);
  EXPECT_EQ(parseDouble("1.5"), 1.5);
  EXPECT_EQ(parseDouble("-2.25"), -2.25);
  EXPECT_EQ(parseDouble("1e10"), 1e10);
  EXPECT_EQ(parseDouble("2.5E-3"), 2.5e-3);
  EXPECT_EQ(parseDouble("0.1"), 0.1);
}

TEST(StringUtils, ParseDoubleRejectsWhatStodWouldAccept) {
  // std::stod throws on overflow, honours LC_NUMERIC, accepts trailing
  // garbage via its pos out-param, and parses "inf"/"nan"/hex floats.
  // The strict parser rejects all of these.
  EXPECT_EQ(parseDouble(""), std::nullopt);
  EXPECT_EQ(parseDouble("abc"), std::nullopt);
  EXPECT_EQ(parseDouble("1.5x"), std::nullopt);
  EXPECT_EQ(parseDouble(" 1.5"), std::nullopt);
  EXPECT_EQ(parseDouble("1,5"), std::nullopt);
  EXPECT_EQ(parseDouble("inf"), std::nullopt);
  EXPECT_EQ(parseDouble("nan"), std::nullopt);
  EXPECT_EQ(parseDouble("0x1p4"), std::nullopt);
  EXPECT_EQ(parseDouble("1e999"), std::nullopt); // overflow, not throw
}

TEST(Json, EscapeHandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(json::escape("plain"), "plain");
  EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json::escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json::escape("\t\r\b\f"), "\\t\\r\\b\\f");
  EXPECT_EQ(json::escape(std::string_view("\x01\x1f", 2)),
            "\\u0001\\u001f");
  // Non-control bytes pass through untouched.
  EXPECT_EQ(json::escape("ok: {x} [y], 100%"), "ok: {x} [y], 100%");
}

TEST(Json, NumberFormatsWithDotAndPrecision) {
  EXPECT_EQ(json::number(1.5), "1.500");
  EXPECT_EQ(json::number(0.0), "0.000");
  EXPECT_EQ(json::number(-2.25, 2), "-2.25");
  EXPECT_EQ(json::number(3.14159, 1), "3.1");
  // JSON has no NaN/Inf; they degrade to zero rather than break parsers.
  EXPECT_EQ(json::number(std::nan("")), "0.000");
}

TEST(Json, NumberIgnoresDecimalCommaLocales) {
  // Under e.g. de_DE, printf("%.3f", 1.5) yields "1,500" — invalid JSON.
  // number() must emit '.' regardless of LC_NUMERIC.
  const char *old = std::setlocale(LC_NUMERIC, nullptr);
  std::string saved = old ? old : "C";
  bool haveLocale = std::setlocale(LC_NUMERIC, "de_DE.UTF-8") != nullptr ||
                    std::setlocale(LC_NUMERIC, "de_DE.utf8") != nullptr;
  if (!haveLocale) {
    std::setlocale(LC_NUMERIC, saved.c_str());
    GTEST_SKIP() << "no decimal-comma locale installed";
  }
  std::string formatted = json::number(1234.5);
  std::string escaped = json::escape("x");
  std::setlocale(LC_NUMERIC, saved.c_str());
  EXPECT_EQ(formatted, "1234.500");
  EXPECT_EQ(escaped, "x");
}

TEST(Json, ValidateAcceptsWellFormedDocuments) {
  EXPECT_TRUE(json::validate("{}"));
  EXPECT_TRUE(json::validate("[]"));
  EXPECT_TRUE(json::validate("  {\"a\": [1, 2.5, -3e2], \"b\": {\"c\": "
                             "null}, \"d\": [true, false]}  "));
  EXPECT_TRUE(json::validate("\"just a string\""));
  EXPECT_TRUE(json::validate("-0.5"));
  EXPECT_TRUE(json::validate("{\"esc\": \"a\\n\\\"b\\u00e9\"}"));
}

TEST(Json, ValidateRejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(json::validate("", &error));
  EXPECT_FALSE(json::validate("{", &error));
  EXPECT_FALSE(json::validate("{\"a\": }", &error));
  EXPECT_FALSE(json::validate("[1, 2,]", &error));
  EXPECT_FALSE(json::validate("{\"a\" 1}", &error));
  EXPECT_FALSE(json::validate("{} trailing", &error));
  EXPECT_FALSE(json::validate("{\"a\": 1,500}", &error)); // the locale bug
  EXPECT_FALSE(json::validate("nulL", &error));
  EXPECT_FALSE(json::validate("\"unterminated", &error));
  EXPECT_FALSE(json::validate("\"bad\\escape\"", &error));
  EXPECT_FALSE(json::validate("01", &error));
  // The error message carries an offset for debugging.
  EXPECT_FALSE(json::validate("[1, x]", &error));
  EXPECT_NE(error.find("offset"), std::string::npos);
}

TEST(Json, ParseBuildsValueTree) {
  std::string error;
  std::optional<json::Value> doc = json::parse(
      R"(  {"name": "dse", "count": 3, "ratio": -2.5, "on": true,
           "off": false, "none": null, "list": [1, 2, 3]}  )",
      &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_TRUE(doc->isObject());
  EXPECT_EQ(doc->get("name")->asString(), "dse");
  EXPECT_EQ(doc->get("count")->asInt(), 3);
  EXPECT_DOUBLE_EQ(doc->get("ratio")->asDouble(), -2.5);
  EXPECT_TRUE(doc->get("on")->asBool());
  EXPECT_FALSE(doc->get("off")->asBool(true));
  EXPECT_TRUE(doc->get("none")->isNull());
  ASSERT_TRUE(doc->get("list")->isArray());
  ASSERT_EQ(doc->get("list")->elements().size(), 3u);
  EXPECT_EQ(doc->get("list")->elements()[2].asInt(), 3);
  EXPECT_EQ(doc->get("missing"), nullptr);
}

TEST(Json, ParsePreservesMemberOrderAndDecodesEscapes) {
  std::optional<json::Value> doc = json::parse(
      "{\"z\": 1, \"a\": 2, \"s\": \"tab\\tquote\\\"u\\u00e9\"}");
  ASSERT_TRUE(doc.has_value());
  ASSERT_EQ(doc->members().size(), 3u);
  EXPECT_EQ(doc->members()[0].first, "z"); // emission order, not sorted
  EXPECT_EQ(doc->members()[1].first, "a");
  // é re-encodes as two-byte UTF-8.
  EXPECT_EQ(doc->get("s")->asString(), "tab\tquote\"u\xc3\xa9");
}

TEST(Json, ParseRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(json::parse("", &error).has_value());
  EXPECT_FALSE(json::parse("{", &error).has_value());
  EXPECT_FALSE(json::parse("[1, 2,]", &error).has_value());
  EXPECT_FALSE(json::parse("{} trailing", &error).has_value());
  EXPECT_FALSE(json::parse("{\"a\": 1,5}", &error).has_value());
  EXPECT_FALSE(json::parse("\"unterminated", &error).has_value());
  EXPECT_FALSE(json::parse("01", &error).has_value());
}

TEST(Json, ParseRoundTripsEmittedDocuments) {
  // Whatever the emission helpers produce, the parser reads back.
  std::string text = "{\"label\": \"" + json::escape("a\"b\\c\nd") +
                     "\", \"value\": " + json::number(12.625) + "}";
  ASSERT_TRUE(json::validate(text));
  std::optional<json::Value> doc = json::parse(text);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get("label")->asString(), "a\"b\\c\nd");
  EXPECT_DOUBLE_EQ(doc->get("value")->asDouble(), 12.625);
}

TEST(Diagnostics, CollectsAndCounts) {
  DiagnosticEngine diags;
  EXPECT_FALSE(diags.hadError());
  diags.warning("careful");
  EXPECT_FALSE(diags.hadError());
  diags.error("boom", {3, 7});
  EXPECT_TRUE(diags.hadError());
  EXPECT_EQ(diags.errorCount(), 1u);
  EXPECT_EQ(diags.diagnostics().size(), 2u);
  EXPECT_NE(diags.str().find("3:7: error: boom"), std::string::npos);
  EXPECT_NE(diags.str().find("warning: careful"), std::string::npos);
  diags.clear();
  EXPECT_FALSE(diags.hadError());
  EXPECT_TRUE(diags.diagnostics().empty());
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelFor) {
  ThreadPool pool(3);
  std::vector<int> data(257, 0);
  parallelFor(pool, data.size(), [&](size_t i) { data[i] = static_cast<int>(i); });
  long long sum = std::accumulate(data.begin(), data.end(), 0ll);
  EXPECT_EQ(sum, 257ll * 256 / 2);
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] { counter++; });
  pool.wait();
  pool.submit([&] { counter++; });
  pool.wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, ThrowingTaskDoesNotHangWait) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The error state is cleared and the pool stays usable.
  std::atomic<int> counter{0};
  pool.submit([&] { counter++; });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, FirstExceptionSurvivesManyThrows) {
  ThreadPool pool(4);
  for (int i = 0; i < 32; ++i)
    pool.submit([] { throw std::runtime_error("boom"); });
  try {
    pool.wait();
    FAIL() << "wait() must rethrow";
  } catch (const std::runtime_error &e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  pool.wait(); // all work already drained; no stale exception
}

TEST(ThreadPool, StressMixedThrowingTasks) {
  ThreadPool pool(8);
  std::atomic<int> completed{0};
  for (int i = 0; i < 500; ++i)
    pool.submit([&completed, i] {
      if (i % 7 == 0)
        throw std::runtime_error("x");
      completed.fetch_add(1);
    });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  EXPECT_EQ(completed.load(), 500 - 72); // every 7th task threw
}

TEST(ThreadPool, TasksSubmittingTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i)
    pool.submit([&] {
      counter.fetch_add(1);
      pool.submit([&] { counter.fetch_add(1); });
    });
  pool.wait();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, RepeatedWaitReuseCycles) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (int i = 0; i < 8; ++i)
      pool.submit([&] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), (cycle + 1) * 8);
  }
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallelFor(pool, 8,
                           [](size_t i) {
                             if (i == 3)
                               throw std::runtime_error("iteration 3");
                           }),
               std::runtime_error);
  // The pool is unaffected afterwards.
  std::atomic<int> counter{0};
  parallelFor(pool, 4, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 4);
}

TEST(ThreadPool, ConcurrentParallelForWaitsOnlyItsOwnWork) {
  // Regression: parallelFor used to call pool.wait(), which waits for ALL
  // in-flight work. Here two of four workers sit blocked on a gate that
  // only opens after the second parallelFor returned — if the second call
  // waited for the gated group too, this test would deadlock.
  ThreadPool pool(4);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::thread blocked([&] {
    parallelFor(pool, 2, [&](size_t) { gate.wait(); });
  });
  std::atomic<int> fast{0};
  parallelFor(pool, 16, [&](size_t) { fast.fetch_add(1); });
  EXPECT_EQ(fast.load(), 16);
  release.set_value();
  blocked.join();
}

TEST(ThreadPool, TaskGroupIsolatesExceptions) {
  ThreadPool pool(2);
  TaskGroup bad(pool);
  TaskGroup good(pool);
  bad.submit([] { throw std::runtime_error("bad group"); });
  std::atomic<int> counter{0};
  good.submit([&] { counter.fetch_add(1); });
  good.wait(); // must not observe the other group's exception
  EXPECT_EQ(counter.load(), 1);
  EXPECT_THROW(bad.wait(), std::runtime_error);
  pool.wait(); // group errors never leak into the pool-level wait
}

TEST(ThreadPool, WorkerIndexVisibleInTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(ThreadPool::currentWorkerIndex(), -1);
  std::mutex mutex;
  std::set<int> seen;
  parallelFor(pool, 64, [&](size_t) {
    int index = ThreadPool::currentWorkerIndex();
    std::lock_guard<std::mutex> lock(mutex);
    seen.insert(index);
  });
  EXPECT_FALSE(seen.empty());
  for (int index : seen) {
    EXPECT_GE(index, 0);
    EXPECT_LT(index, 3);
  }
}

TEST(StringUtils, StrFmtSurfacesEncodingErrors) {
  // An out-of-range wide character makes vsnprintf("%ls", ...) fail with
  // a negative length (EILSEQ). The result must flag the failure in-band
  // instead of returning an empty or garbage string.
  wchar_t bad[2] = {static_cast<wchar_t>(0x110000), L'\0'};
  std::string out = strfmt("ctx %ls", bad);
  if (out == "ctx \xEF\xBF\xBF" || out.rfind("ctx ", 0) == 0)
    GTEST_SKIP() << "libc formats out-of-range wchar_t without error";
  EXPECT_EQ(out.rfind("<strfmt-error:", 0), 0u) << out;
}

TEST(Json, ShortestDoubleRoundTripsExactly) {
  for (double v : {0.0, -0.0, 1.0, 0.5, 0.1, 1e20, -1e-20, 3.14159,
                   1.0 / 3.0, 2.2250738585072014e-308}) {
    std::string s = json::shortestDouble(v);
    double back = std::strtod(s.c_str(), nullptr);
    EXPECT_EQ(back, v) << s;
    // Parsers of the IR grammar require a '.' or exponent marker.
    EXPECT_TRUE(s.find('.') != std::string::npos ||
                s.find('e') != std::string::npos ||
                s.find('E') != std::string::npos)
        << s;
  }
  EXPECT_EQ(json::shortestDouble(1.0), "1.0");
  EXPECT_EQ(json::shortestDouble(0.5), "0.5");
  EXPECT_EQ(json::shortestDouble(std::nan("")), "nan");
  EXPECT_EQ(json::shortestDouble(HUGE_VAL), "inf");
  EXPECT_EQ(json::shortestDouble(-HUGE_VAL), "-inf");
}

TEST(Json, ShortestDoubleIgnoresDecimalCommaLocales) {
  // Float constants printed into IR text must lex back; a ','-decimal
  // locale would corrupt them if the formatter went through printf.
  const char *old = std::setlocale(LC_NUMERIC, nullptr);
  std::string saved = old ? old : "C";
  bool haveLocale = std::setlocale(LC_NUMERIC, "de_DE.UTF-8") != nullptr ||
                    std::setlocale(LC_NUMERIC, "de_DE.utf8") != nullptr;
  if (!haveLocale) {
    std::setlocale(LC_NUMERIC, saved.c_str());
    GTEST_SKIP() << "no decimal-comma locale installed";
  }
  std::string half = json::shortestDouble(0.5);
  std::string big = json::shortestDouble(1234.5);
  std::setlocale(LC_NUMERIC, saved.c_str());
  EXPECT_EQ(half, "0.5");
  EXPECT_EQ(big, "1234.5");
}

TEST(Hash, BuilderDistinguishesBoundariesAndBitPatterns) {
  EXPECT_EQ(hashString("abc"), hashString("abc"));
  EXPECT_NE(hashString("abc"), hashString("abd"));
  // Length-prefixed strings: ("ab","c") != ("a","bc").
  EXPECT_NE(HashBuilder().str("ab").str("c").get(),
            HashBuilder().str("a").str("bc").get());
  // Bit-pattern float hashing keeps +0.0/-0.0 and NaNs distinct.
  EXPECT_NE(HashBuilder().f64Bits(0.0).get(),
            HashBuilder().f64Bits(-0.0).get());
  EXPECT_EQ(HashBuilder().f64Bits(std::nan("")).get(),
            HashBuilder().f64Bits(std::nan("")).get());
  EXPECT_EQ(HashBuilder().u64(7).boolean(true).get(),
            HashBuilder().u64(7).boolean(true).get());
  EXPECT_NE(HashBuilder().u64(7).boolean(true).get(),
            HashBuilder().u64(7).boolean(false).get());
}

namespace {
struct DtorCounter {
  explicit DtorCounter(int *counter) : counter(counter) {}
  ~DtorCounter() { ++*counter; }
  int *counter;
  // Non-trivial payload so the arena must register a destructor.
  std::string payload = "payload";
};
} // namespace

TEST(Arena, AllocatesAlignsAndRunsDestructors) {
  int destroyed = 0;
  {
    BumpAllocator arena;
    for (int i = 0; i < 100; ++i)
      arena.create<DtorCounter>(&destroyed);
    // Alignment for over-aligned types.
    void *p = arena.allocate(64, 64);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u);
    // Large allocation forces a dedicated slab.
    void *big = arena.allocate(1 << 21, 8);
    EXPECT_NE(big, nullptr);
    EXPECT_GT(arena.bytesAllocated(), 0u);
    EXPECT_EQ(destroyed, 0);
  }
  EXPECT_EQ(destroyed, 100);
}

TEST(Arena, InternerDeduplicatesStrings) {
  BumpAllocator arena;
  StringInterner interner(arena);
  std::string a = "hello";
  std::string b = "hello";
  std::string_view ia = interner.intern(a);
  std::string_view ib = interner.intern(b);
  EXPECT_EQ(ia, "hello");
  EXPECT_EQ(ia.data(), ib.data()); // same storage
  EXPECT_NE(interner.intern("world").data(), ia.data());
}
