// Unit tests for the support library.
#include "support/Diagnostics.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <set>
#include <stdexcept>

using namespace mha;

TEST(StringUtils, StrFmt) {
  EXPECT_EQ(strfmt("x=%d", 42), "x=42");
  EXPECT_EQ(strfmt("%s-%s", "a", "b"), "a-b");
  EXPECT_EQ(strfmt("%.2f", 1.5), "1.50");
  EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(StringUtils, Split) {
  EXPECT_EQ(splitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(splitString("a,,c", ','), (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(splitString("a,,c", ',', /*keepEmpty=*/true),
            (std::vector<std::string>{"a", "", "c"}));
  EXPECT_TRUE(splitString("", ',').empty());
  EXPECT_EQ(splitString("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("\ta b\n"), "a b");
}

TEST(StringUtils, StartsEndsWith) {
  EXPECT_TRUE(startsWith("llvm.memcpy", "llvm."));
  EXPECT_FALSE(startsWith("l", "llvm."));
  EXPECT_TRUE(endsWith("foo.f32", ".f32"));
  EXPECT_FALSE(endsWith("f32", "xf32"));
}

TEST(StringUtils, Join) {
  EXPECT_EQ(joinStrings({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(joinStrings({}, ","), "");
  EXPECT_EQ(joinStrings({"only"}, ","), "only");
}

TEST(StringUtils, ValidIdentifier) {
  EXPECT_TRUE(isValidIdentifier("foo"));
  EXPECT_TRUE(isValidIdentifier("_x1"));
  EXPECT_TRUE(isValidIdentifier("a.b"));
  EXPECT_FALSE(isValidIdentifier(""));
  EXPECT_FALSE(isValidIdentifier("1a"));
  EXPECT_FALSE(isValidIdentifier("a b"));
}

TEST(Diagnostics, CollectsAndCounts) {
  DiagnosticEngine diags;
  EXPECT_FALSE(diags.hadError());
  diags.warning("careful");
  EXPECT_FALSE(diags.hadError());
  diags.error("boom", {3, 7});
  EXPECT_TRUE(diags.hadError());
  EXPECT_EQ(diags.errorCount(), 1u);
  EXPECT_EQ(diags.diagnostics().size(), 2u);
  EXPECT_NE(diags.str().find("3:7: error: boom"), std::string::npos);
  EXPECT_NE(diags.str().find("warning: careful"), std::string::npos);
  diags.clear();
  EXPECT_FALSE(diags.hadError());
  EXPECT_TRUE(diags.diagnostics().empty());
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelFor) {
  ThreadPool pool(3);
  std::vector<int> data(257, 0);
  parallelFor(pool, data.size(), [&](size_t i) { data[i] = static_cast<int>(i); });
  long long sum = std::accumulate(data.begin(), data.end(), 0ll);
  EXPECT_EQ(sum, 257ll * 256 / 2);
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] { counter++; });
  pool.wait();
  pool.submit([&] { counter++; });
  pool.wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, ThrowingTaskDoesNotHangWait) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The error state is cleared and the pool stays usable.
  std::atomic<int> counter{0};
  pool.submit([&] { counter++; });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, FirstExceptionSurvivesManyThrows) {
  ThreadPool pool(4);
  for (int i = 0; i < 32; ++i)
    pool.submit([] { throw std::runtime_error("boom"); });
  try {
    pool.wait();
    FAIL() << "wait() must rethrow";
  } catch (const std::runtime_error &e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  pool.wait(); // all work already drained; no stale exception
}

TEST(ThreadPool, StressMixedThrowingTasks) {
  ThreadPool pool(8);
  std::atomic<int> completed{0};
  for (int i = 0; i < 500; ++i)
    pool.submit([&completed, i] {
      if (i % 7 == 0)
        throw std::runtime_error("x");
      completed.fetch_add(1);
    });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  EXPECT_EQ(completed.load(), 500 - 72); // every 7th task threw
}

TEST(ThreadPool, TasksSubmittingTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i)
    pool.submit([&] {
      counter.fetch_add(1);
      pool.submit([&] { counter.fetch_add(1); });
    });
  pool.wait();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, RepeatedWaitReuseCycles) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (int i = 0; i < 8; ++i)
      pool.submit([&] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), (cycle + 1) * 8);
  }
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallelFor(pool, 8,
                           [](size_t i) {
                             if (i == 3)
                               throw std::runtime_error("iteration 3");
                           }),
               std::runtime_error);
  // The pool is unaffected afterwards.
  std::atomic<int> counter{0};
  parallelFor(pool, 4, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 4);
}

TEST(ThreadPool, ConcurrentParallelForWaitsOnlyItsOwnWork) {
  // Regression: parallelFor used to call pool.wait(), which waits for ALL
  // in-flight work. Here two of four workers sit blocked on a gate that
  // only opens after the second parallelFor returned — if the second call
  // waited for the gated group too, this test would deadlock.
  ThreadPool pool(4);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::thread blocked([&] {
    parallelFor(pool, 2, [&](size_t) { gate.wait(); });
  });
  std::atomic<int> fast{0};
  parallelFor(pool, 16, [&](size_t) { fast.fetch_add(1); });
  EXPECT_EQ(fast.load(), 16);
  release.set_value();
  blocked.join();
}

TEST(ThreadPool, TaskGroupIsolatesExceptions) {
  ThreadPool pool(2);
  TaskGroup bad(pool);
  TaskGroup good(pool);
  bad.submit([] { throw std::runtime_error("bad group"); });
  std::atomic<int> counter{0};
  good.submit([&] { counter.fetch_add(1); });
  good.wait(); // must not observe the other group's exception
  EXPECT_EQ(counter.load(), 1);
  EXPECT_THROW(bad.wait(), std::runtime_error);
  pool.wait(); // group errors never leak into the pool-level wait
}

TEST(ThreadPool, WorkerIndexVisibleInTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(ThreadPool::currentWorkerIndex(), -1);
  std::mutex mutex;
  std::set<int> seen;
  parallelFor(pool, 64, [&](size_t) {
    int index = ThreadPool::currentWorkerIndex();
    std::lock_guard<std::mutex> lock(mutex);
    seen.insert(index);
  });
  EXPECT_FALSE(seen.empty());
  for (int index : seen) {
    EXPECT_GE(index, 0);
    EXPECT_LT(index, 3);
  }
}
