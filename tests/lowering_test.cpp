// Tests for the direct MLIR -> LLVM IR lowering: descriptor argument
// expansion, loop CFG shape, directive metadata, intrinsic emission, and
// functional correctness through the interpreter.
#include "flow/Kernels.h"
#include "lir/LContext.h"
#include "interp/Interp.h"
#include "lir/Printer.h"
#include "lir/Verifier.h"
#include "lir/analysis/Dominators.h"
#include "lir/analysis/LoopInfo.h"
#include "lowering/Lowering.h"
#include "mir/Pass.h"
#include "mir/transforms/MirTransforms.h"

#include <gtest/gtest.h>

using namespace mha;

namespace {

/// Builds a kernel, converts to scf, lowers to LLVM IR.
struct Lowered {
  mir::MContext mctx;
  lir::LContext lctx;
  std::unique_ptr<lir::Module> module;
  std::string error;

  Lowered(const std::string &kernel, const flow::KernelConfig &config,
          lowering::LoweringOptions options = {}) {
    const flow::KernelSpec *spec = flow::findKernel(kernel);
    EXPECT_NE(spec, nullptr);
    DiagnosticEngine diags;
    mir::OwnedModule mod = spec->build(mctx, config);
    mir::MPassManager pm;
    pm.add(mir::createCanonicalizePass());
    pm.add(mir::createAffineToScfPass());
    pm.add(mir::createCanonicalizePass());
    if (!pm.run(mod.get(), diags)) {
      error = diags.str();
      return;
    }
    module = lowering::lowerToLIR(mod.get(), lctx, options, diags);
    if (!module)
      error = diags.str();
  }

  lir::Function *fn(const std::string &name) {
    return module->getFunction(name);
  }
};

} // namespace

TEST(Lowering, GemmDescriptorSignature) {
  Lowered l("gemm", {});
  ASSERT_NE(l.module, nullptr) << l.error;
  lir::Function *fn = l.fn("gemm");
  ASSERT_NE(fn, nullptr);
  // 3 memrefs of rank 2 -> 3 * (2 ptr + 1 offset + 2 sizes + 2 strides).
  EXPECT_EQ(fn->numArgs(), 21u);
  // Group-start args carry the descriptor metadata.
  int descriptors = 0;
  for (const auto &arg : fn->args())
    if (arg->getMetadata(lowering::kMemRefGroupMD))
      ++descriptors;
  EXPECT_EQ(descriptors, 3);
  // Modern attributes on the function.
  EXPECT_TRUE(fn->hasAttr("mustprogress"));
  // Opaque pointers everywhere.
  EXPECT_TRUE(l.module->flagIs("opaque-pointers", "true"));
  auto *pt = dyn_cast<lir::PointerType>(fn->arg(0)->type());
  ASSERT_NE(pt, nullptr);
  EXPECT_TRUE(pt->isOpaque());

  DiagnosticEngine diags;
  EXPECT_TRUE(lir::verifyModule(*l.module, diags)) << diags.str();
}

TEST(Lowering, LoopStructureIsCanonical) {
  Lowered l("gemm", {});
  ASSERT_NE(l.module, nullptr) << l.error;
  lir::Function *fn = l.fn("gemm");
  lir::DominatorTree domTree(*fn);
  lir::LoopInfo loopInfo(*fn, domTree);
  EXPECT_EQ(loopInfo.loops().size(), 3u);
  for (const auto &loop : loopInfo.loops()) {
    auto canonical = lir::matchCanonicalLoop(loop.get());
    ASSERT_TRUE(canonical.has_value());
    EXPECT_EQ(*canonical->tripCount, 32);
  }
}

TEST(Lowering, DirectiveMetadataOnLatch) {
  flow::KernelConfig config;
  config.pipelineII = 3;
  config.unrollFactor = 4;
  Lowered l("gemm", config);
  ASSERT_NE(l.module, nullptr) << l.error;
  std::string out = lir::printModule(*l.module);
  EXPECT_NE(out.find(lowering::kLoopPipelineMD), std::string::npos);
  EXPECT_NE(out.find(lowering::kLoopUnrollMD), std::string::npos);
  EXPECT_NE(out.find("!llvm.loop.pipeline.enable !{i64 3}"),
            std::string::npos);
}

TEST(Lowering, PartitionDirectiveBecomesAttr) {
  flow::KernelConfig config;
  config.partitionFactor = 4;
  Lowered l("gemm", config);
  ASSERT_NE(l.module, nullptr) << l.error;
  lir::Function *fn = l.fn("gemm");
  bool found = false;
  for (const std::string &attr : fn->attrs())
    if (attr.find("mha.partition=") == 0)
      found = true;
  EXPECT_TRUE(found);
}

TEST(Lowering, FMulAddFusion) {
  Lowered l("gemm", {});
  ASSERT_NE(l.module, nullptr) << l.error;
  std::string out = lir::printModule(*l.module);
  EXPECT_NE(out.find("llvm.fmuladd.f64"), std::string::npos);
  // The raw fmul feeding it must be gone.
  EXPECT_EQ(out.find("= fmul "), std::string::npos);
}

TEST(Lowering, FMulAddFusionDisabled) {
  lowering::LoweringOptions options;
  options.fuseMulAdd = false;
  Lowered l("gemm", {}, options);
  ASSERT_NE(l.module, nullptr) << l.error;
  std::string out = lir::printModule(*l.module);
  EXPECT_EQ(out.find("llvm.fmuladd"), std::string::npos);
  EXPECT_NE(out.find("fmul"), std::string::npos);
}

TEST(Lowering, LinearizedAddressing) {
  Lowered l("gemm", {});
  std::string out = lir::printModule(*l.module);
  // Modern lowering: flat GEPs over the element type, not shaped ones.
  EXPECT_NE(out.find("getelementptr double, ptr"), std::string::npos);
  EXPECT_EQ(out.find("getelementptr [32 x"), std::string::npos);
}

TEST(Lowering, AllocaForLocalBuffer) {
  Lowered l("mm2", {});
  ASSERT_NE(l.module, nullptr) << l.error;
  std::string out = lir::printModule(*l.module);
  // tmp buffer is a flat alloca with shape metadata.
  EXPECT_NE(out.find("alloca [1024 x double]"), std::string::npos);
  EXPECT_NE(out.find("mha.shape"), std::string::npos);
}

TEST(Lowering, ExecutesCorrectlyViaDescriptors) {
  // The lowered (pre-adaptor) IR must already compute the right values
  // when called with expanded descriptor arguments.
  const flow::KernelSpec *spec = flow::findKernel("gemm");
  Lowered l("gemm", {});
  ASSERT_NE(l.module, nullptr) << l.error;

  flow::Buffers device = flow::makeBuffers(*spec);
  flow::seedBuffers(device);
  flow::Buffers host = device;
  spec->reference(host);

  std::vector<void *> pointers;
  for (auto &buffer : device)
    pointers.push_back(buffer.data());
  DiagnosticEngine diags;
  interp::Interpreter interpreter(*l.module);
  auto result = interpreter.run(
      l.fn("gemm"), interp::descriptorArgs(pointers, spec->bufferShapes),
      diags);
  ASSERT_TRUE(result.has_value()) << diags.str();
  for (unsigned out : spec->outputs)
    for (size_t i = 0; i < device[out].size(); ++i)
      ASSERT_EQ(device[out][i], host[out][i]) << "element " << i;
}

TEST(Lowering, AllKernelsLowerAndVerify) {
  for (const flow::KernelSpec &spec : flow::allKernels()) {
    Lowered l(spec.name, {});
    ASSERT_NE(l.module, nullptr) << spec.name << ": " << l.error;
    DiagnosticEngine diags;
    EXPECT_TRUE(lir::verifyModule(*l.module, diags))
        << spec.name << ": " << diags.str();
  }
}
