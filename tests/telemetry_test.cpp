// Telemetry tests: spans and lanes, Chrome trace export, the statistic
// registry, pass instrumentation hooks (lir and mir), --time-passes
// aggregation, and the flow drivers' span integration.
#include "support/Telemetry.h"

#include "flow/Flow.h"
#include "lir/Function.h"
#include "lir/LContext.h"
#include "lir/Parser.h"
#include "lir/transforms/Transforms.h"
#include "mir/Builder.h"
#include "mir/transforms/MirTransforms.h"
#include "support/Json.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

using namespace mha;
using namespace mha::telemetry;

namespace {

/// Every telemetry test shares the process-wide tracer, so each one starts
/// from a clean slate and leaves the tracer disabled for its neighbors.
struct TracerGuard {
  TracerGuard(bool enable = false, bool timePasses = false) {
    Tracer &tracer = Tracer::global();
    tracer.setEnabled(enable);
    tracer.setTimePasses(timePasses);
    tracer.reset();
  }
  ~TracerGuard() {
    Tracer &tracer = Tracer::global();
    tracer.setEnabled(false);
    tracer.setTimePasses(false);
    tracer.reset();
  }
};

struct Parsed {
  lir::LContext ctx;
  std::unique_ptr<lir::Module> module;

  explicit Parsed(const std::string &text) {
    DiagnosticEngine diags;
    module = lir::parseModule(text, ctx, diags);
    EXPECT_NE(module, nullptr) << diags.str();
  }
};

// A function with a promotable alloca and (after mem2reg) dead
// arithmetic, so mem2reg and dce both report changes.
const char *kPromotableIR = R"(
define void @f(i64 %x) {
entry:
  %slot = alloca i64
  store i64 %x, i64* %slot
  %v = load i64, i64* %slot
  %r = add i64 %v, 1
  ret void
}
)";

/// Records the hook sequence as strings like "A:before:dce".
struct RecordingInstr : lir::PassInstrumentation {
  RecordingInstr(std::string tag, std::vector<std::string> &log)
      : tag(std::move(tag)), log(log) {}
  void beforePass(const lir::ModulePass &pass, const lir::Module &) override {
    log.push_back(tag + ":before:" + pass.name());
  }
  void afterPass(const lir::ModulePass &pass, const lir::Module &,
                 const lir::PassRunRecord &record) override {
    lastRecord = record;
    log.push_back(tag + ":after:" + pass.name());
  }
  std::string tag;
  std::vector<std::string> &log;
  lir::PassRunRecord lastRecord;
};

const TraceEvent *findEvent(const std::vector<TraceEvent> &events,
                            const std::string &name) {
  auto it = std::find_if(events.begin(), events.end(),
                         [&](const TraceEvent &e) { return e.name == name; });
  return it == events.end() ? nullptr : &*it;
}

bool contains(const TraceEvent &outer, const TraceEvent &inner) {
  return inner.startUs >= outer.startUs &&
         inner.startUs + inner.durUs <= outer.startUs + outer.durUs;
}

} // namespace

TEST(Span, MeasuresWithoutRecordingWhenDisabled) {
  TracerGuard guard;
  Span span("unrecorded", "test");
  EXPECT_GE(span.finish(), 0.0);
  EXPECT_TRUE(Tracer::global().events().empty());
}

TEST(Span, FinishIsIdempotent) {
  TracerGuard guard;
  Span span("once", "test");
  double first = span.finish();
  EXPECT_EQ(span.finish(), first);
}

TEST(Span, RecordsNestedSpansWithTimeContainment) {
  TracerGuard guard(/*enable=*/true);
  {
    Span outer("outer", "test");
    {
      Span inner("inner", "test");
      (void)inner;
    }
  }
  std::vector<TraceEvent> events = Tracer::global().events();
  ASSERT_EQ(events.size(), 2u);
  // Inner finishes (and records) first; both are complete spans in the
  // same lane and the inner interval nests within the outer one — which
  // is exactly what Chrome/Perfetto use to render the stack.
  const TraceEvent *outer = findEvent(events, "outer");
  const TraceEvent *inner = findEvent(events, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->phase, 'X');
  EXPECT_EQ(inner->phase, 'X');
  EXPECT_EQ(outer->lane, inner->lane);
  EXPECT_TRUE(contains(*outer, *inner));
}

TEST(Span, ArgsAreRecorded) {
  TracerGuard guard(/*enable=*/true);
  { Span span("with-args", "test", {{"kernel", "gemm"}, {"flow", "adaptor"}}); }
  std::vector<TraceEvent> events = Tracer::global().events();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_EQ(events[0].args.size(), 2u);
  EXPECT_EQ(events[0].args[0].first, "kernel");
  EXPECT_EQ(events[0].args[0].second, "gemm");
}

TEST(Tracer, InstantEventsAndReset) {
  TracerGuard guard(/*enable=*/true);
  Tracer::global().instant("marker", "test");
  std::vector<TraceEvent> events = Tracer::global().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, 'i');
  Tracer::global().reset();
  EXPECT_TRUE(Tracer::global().events().empty());
}

TEST(Tracer, ThreadLaneClaimAndName) {
  TracerGuard guard(/*enable=*/true);
  Tracer::setThreadLane(7, "lane seven");
  { Span span("on-lane-7", "test"); }
  std::vector<TraceEvent> events = Tracer::global().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].lane, 7);
  std::string json = Tracer::global().chromeTraceJson();
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("lane seven"), std::string::npos);
}

TEST(Tracer, UnclaimedThreadsGetDistinctAutoLanes) {
  TracerGuard guard(/*enable=*/true);
  int laneA = -1, laneB = -1;
  std::thread a([&] {
    Span span("thread-a", "test");
    span.finish();
    laneA = Tracer::global().events().back().lane;
  });
  a.join();
  std::thread b([&] {
    Span span("thread-b", "test");
    span.finish();
    laneB = Tracer::global().events().back().lane;
  });
  b.join();
  EXPECT_GE(laneA, 1000);
  EXPECT_GE(laneB, 1000);
  EXPECT_NE(laneA, laneB);
}

TEST(Tracer, ChromeTraceIsWellFormedJsonEvenWithHostileNames) {
  TracerGuard guard(/*enable=*/true);
  Tracer::setThreadLane(3, "na\"me\\with\nnasties");
  { Span span("sp\"an\\\n\t", "cat\"egory", {{"k\"ey", "val\\ue\n"}}); }
  Tracer::global().instant("inst\"ant", "test");
  std::string json = Tracer::global().chromeTraceJson();
  std::string error;
  EXPECT_TRUE(json::validate(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
}

TEST(Tracer, WriteChromeTraceRoundTrips) {
  TracerGuard guard(/*enable=*/true);
  { Span span("to-disk", "test"); }
  const char *path = "telemetry_chrome_test.json";
  std::string error;
  ASSERT_TRUE(Tracer::global().writeChromeTrace(path, &error)) << error;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(json::validate(buffer.str(), &error)) << error;
  EXPECT_NE(buffer.str().find("to-disk"), std::string::npos);
  std::remove(path);
}

TEST(Statistic, CountsAtomicallyAcrossThreads) {
  static Statistic counter("telemetry-test", "increments",
                           "test counter bumped from a pool");
  int64_t before = counter.value();
  ThreadPool pool(8);
  parallelFor(pool, 8000, [&](size_t) { ++counter; });
  EXPECT_EQ(counter.value() - before, 8000);
  counter += 5;
  EXPECT_EQ(counter.value() - before, 8005);

  // The registry sees the counter and the report renders it.
  std::vector<StatisticValue> values = statisticValues();
  auto it = std::find_if(values.begin(), values.end(),
                         [](const StatisticValue &v) {
                           return v.group == "telemetry-test" &&
                                  v.name == "increments";
                         });
  ASSERT_NE(it, values.end());
  EXPECT_EQ(it->value, counter.value());
  std::string report = statisticsReport();
  EXPECT_NE(report.find("telemetry-test"), std::string::npos);
  EXPECT_NE(report.find("increments"), std::string::npos);
}

TEST(Statistic, TransformPassesBumpRegisteredCounters) {
  // dce registers a process-wide "dce.removed" style counter; running the
  // pass on IR with (post-mem2reg) dead code must move it.
  std::vector<StatisticValue> before = statisticValues(/*includeZero=*/true);
  auto valueOf = [](const std::vector<StatisticValue> &values,
                    const char *group) {
    int64_t total = 0;
    for (const StatisticValue &v : values)
      if (v.group == group)
        total += v.value;
    return total;
  };

  Parsed p(kPromotableIR);
  ASSERT_NE(p.module, nullptr);
  lir::PassManager pm(/*verifyEach=*/true);
  pm.add(lir::createMem2RegPass());
  pm.add(lir::createDCEPass());
  DiagnosticEngine diags;
  ASSERT_TRUE(pm.run(*p.module, diags)) << diags.str();

  std::vector<StatisticValue> after = statisticValues(/*includeZero=*/true);
  EXPECT_GT(valueOf(after, "mem2reg"), valueOf(before, "mem2reg"));
  EXPECT_GT(valueOf(after, "dce"), valueOf(before, "dce"));
}

TEST(PassInstrumentation, BeforeInOrderAfterInReverse) {
  TracerGuard guard;
  Parsed p(kPromotableIR);
  ASSERT_NE(p.module, nullptr);

  std::vector<std::string> log;
  RecordingInstr a("A", log), b("B", log);
  lir::PassManager pm(/*verifyEach=*/true);
  pm.addInstrumentation(&a);
  pm.addInstrumentation(&b);
  pm.add(lir::createMem2RegPass());
  pm.add(lir::createDCEPass());
  DiagnosticEngine diags;
  ASSERT_TRUE(pm.run(*p.module, diags)) << diags.str();

  // LLVM-style nesting: A wraps B wraps the pass.
  std::vector<std::string> expected = {
      "A:before:mem2reg", "B:before:mem2reg", "B:after:mem2reg",
      "A:after:mem2reg",  "A:before:dce",     "B:before:dce",
      "B:after:dce",      "A:after:dce",
  };
  EXPECT_EQ(log, expected);
}

TEST(PassInstrumentation, AfterHookSeesPopulatedRecordWithIRDelta) {
  TracerGuard guard;
  Parsed p(kPromotableIR);
  ASSERT_NE(p.module, nullptr);

  std::vector<std::string> log;
  RecordingInstr instr("A", log);
  lir::PassManager pm(/*verifyEach=*/true);
  pm.addInstrumentation(&instr);
  pm.add(lir::createMem2RegPass());
  DiagnosticEngine diags;
  ASSERT_TRUE(pm.run(*p.module, diags)) << diags.str();

  const lir::PassRunRecord &record = instr.lastRecord;
  EXPECT_EQ(record.passName, "mem2reg");
  EXPECT_TRUE(record.changed);
  EXPECT_GE(record.millis, 0.0);
  // mem2reg deletes the alloca/store/load triple: the module must shrink.
  EXPECT_GT(record.instsBefore, record.instsAfter);
  EXPECT_EQ(record.blocksBefore, record.blocksAfter);
  EXPECT_FALSE(record.stats.empty());
  // The manager's own record matches what the hook saw.
  ASSERT_EQ(pm.records().size(), 1u);
  EXPECT_EQ(pm.records()[0].instsAfter, record.instsAfter);
}

TEST(PassInstrumentation, PrintIRBannersRespectFilters) {
  TracerGuard guard;
  Parsed p(kPromotableIR);
  ASSERT_NE(p.module, nullptr);

  std::ostringstream os;
  lir::PrintIRInstrumentation::Options options;
  options.beforeAll = true;
  options.afterPasses = {"dce"};
  lir::PrintIRInstrumentation printer(options, os);
  lir::PassManager pm(/*verifyEach=*/true);
  pm.addInstrumentation(&printer);
  pm.add(lir::createMem2RegPass());
  pm.add(lir::createDCEPass());
  DiagnosticEngine diags;
  ASSERT_TRUE(pm.run(*p.module, diags)) << diags.str();

  std::string out = os.str();
  EXPECT_NE(out.find("*** IR before pass 'mem2reg' ***"), std::string::npos);
  EXPECT_NE(out.find("*** IR before pass 'dce' ***"), std::string::npos);
  // after-filter lists only dce:
  EXPECT_EQ(out.find("*** IR after pass 'mem2reg'"), std::string::npos);
  EXPECT_NE(out.find("*** IR after pass 'dce' (changed) ***"),
            std::string::npos);
}

TEST(PassInstrumentation, TimePassesAggregationMatchesRecords) {
  TracerGuard guard(/*enable=*/false, /*timePasses=*/true);
  Parsed p(kPromotableIR);
  ASSERT_NE(p.module, nullptr);

  lir::PassManager pm(/*verifyEach=*/true);
  pm.add(lir::createMem2RegPass());
  pm.add(lir::createDCEPass());
  pm.add(lir::createDCEPass()); // second run: aggregation must merge rows
  DiagnosticEngine diags;
  ASSERT_TRUE(pm.run(*p.module, diags)) << diags.str();

  std::vector<PassTime> times = Tracer::global().passTimes();
  double recordTotal = 0;
  for (const lir::PassRunRecord &record : pm.records())
    recordTotal += record.millis;
  double tableTotal = 0;
  int64_t runs = 0;
  for (const PassTime &time : times) {
    EXPECT_EQ(time.pipeline, "lir");
    tableTotal += time.totalMs;
    runs += time.runs;
  }
  EXPECT_EQ(runs, 3);
  EXPECT_NEAR(tableTotal, recordTotal, 1e-6);
  auto dce = std::find_if(times.begin(), times.end(),
                          [](const PassTime &t) { return t.pass == "dce"; });
  ASSERT_NE(dce, times.end());
  EXPECT_EQ(dce->runs, 2);

  std::string table = Tracer::global().passTimesTable();
  EXPECT_NE(table.find("dce"), std::string::npos);
  EXPECT_NE(table.find("mem2reg"), std::string::npos);
}

TEST(PassInstrumentation, DisabledTimePassesRecordsNothing) {
  TracerGuard guard;
  Parsed p(kPromotableIR);
  ASSERT_NE(p.module, nullptr);
  lir::PassManager pm(/*verifyEach=*/true);
  pm.add(lir::createMem2RegPass());
  DiagnosticEngine diags;
  ASSERT_TRUE(pm.run(*p.module, diags)) << diags.str();
  EXPECT_TRUE(Tracer::global().passTimes().empty());
  EXPECT_EQ(Tracer::global().passTimesTable(), "");
}

namespace {

/// Records mir hook order, mirroring RecordingInstr.
struct MirRecordingInstr : mir::MPassInstrumentation {
  MirRecordingInstr(std::string tag, std::vector<std::string> &log)
      : tag(std::move(tag)), log(log) {}
  void beforePass(const mir::MPass &pass, mir::ModuleOp) override {
    log.push_back(tag + ":before:" + pass.name());
  }
  void afterPass(const mir::MPass &pass, mir::ModuleOp,
                 const mir::MPassRecord &record) override {
    lastRecord = record;
    log.push_back(tag + ":after:" + pass.name());
  }
  std::string tag;
  std::vector<std::string> &log;
  mir::MPassRecord lastRecord;
};

} // namespace

TEST(MirPassInstrumentation, HookOrderAndOpDelta) {
  TracerGuard guard(/*enable=*/false, /*timePasses=*/true);
  mir::MContext ctx;
  mir::OpBuilder builder(ctx);
  mir::OwnedModule module(mir::OpBuilder::createModule());
  builder.setInsertPoint(module.get().body());
  mir::FuncOp fn = builder.createFunc("k", ctx.fnTy({}, {}));
  builder.setInsertPoint(fn.entryBlock());
  builder.createReturn();

  std::vector<std::string> log;
  MirRecordingInstr a("A", log), b("B", log);
  mir::MPassManager pm;
  pm.addInstrumentation(&a);
  pm.addInstrumentation(&b);
  pm.add(mir::createCanonicalizePass());
  DiagnosticEngine diags;
  ASSERT_TRUE(pm.run(module.get(), diags)) << diags.str();

  std::vector<std::string> expected = {
      "A:before:mir-canonicalize", "B:before:mir-canonicalize",
      "B:after:mir-canonicalize", "A:after:mir-canonicalize"};
  EXPECT_EQ(log, expected);

  // Op counting includes the module op: module + func + return >= 3, and
  // canonicalize on this trivial module must not grow it.
  EXPECT_GE(a.lastRecord.opsBefore, 3);
  EXPECT_LE(a.lastRecord.opsAfter, a.lastRecord.opsBefore);
  EXPECT_EQ(a.lastRecord.opsAfter, mir::countOps(module.get()));

  // The mir pipeline feeds the same --time-passes aggregation.
  std::vector<PassTime> times = Tracer::global().passTimes();
  auto it = std::find_if(times.begin(), times.end(), [](const PassTime &t) {
    return t.pipeline == "mir" && t.pass == "mir-canonicalize";
  });
  ASSERT_NE(it, times.end());
  EXPECT_EQ(it->runs, 1);
}

TEST(FlowTelemetry, StageSpansStillPopulateTimings) {
  TracerGuard guard;
  const flow::KernelSpec *spec = flow::findKernel("fir");
  ASSERT_NE(spec, nullptr);
  flow::KernelConfig config;
  config.pipelineII = 1;
  config.partitionFactor = 2;
  flow::FlowResult result = flow::runAdaptorFlow(*spec, config);
  ASSERT_TRUE(result.ok) << result.diagnostics;
  // Table 4 semantics: the three windows and the total are measured even
  // with tracing disabled, and sub-stage spans attribute into them.
  EXPECT_GT(result.timings.mlirOptMs, 0);
  EXPECT_GT(result.timings.bridgeMs, 0);
  EXPECT_GT(result.timings.synthMs, 0);
  EXPECT_GE(result.timings.totalMs, result.timings.mlirOptMs +
                                        result.timings.bridgeMs +
                                        result.timings.synthMs);
  EXPECT_FALSE(result.spans.empty());
  // With tracing off, nothing leaks into the global tracer.
  EXPECT_TRUE(Tracer::global().events().empty());
}

TEST(FlowTelemetry, AdaptorFlowEmitsNestedSpans) {
  TracerGuard guard(/*enable=*/true, /*timePasses=*/true);
  const flow::KernelSpec *spec = flow::findKernel("fir");
  ASSERT_NE(spec, nullptr);
  flow::KernelConfig config;
  config.pipelineII = 1;
  config.partitionFactor = 2;
  flow::FlowResult result = flow::runAdaptorFlow(*spec, config);
  ASSERT_TRUE(result.ok) << result.diagnostics;

  std::vector<TraceEvent> events = Tracer::global().events();
  const TraceEvent *total = findEvent(events, "flow:adaptor:fir");
  const TraceEvent *bridge = findEvent(events, "bridge");
  const TraceEvent *mlirOpt = findEvent(events, "mlirOpt");
  const TraceEvent *synth = findEvent(events, "synth");
  ASSERT_NE(total, nullptr);
  ASSERT_NE(bridge, nullptr);
  ASSERT_NE(mlirOpt, nullptr);
  ASSERT_NE(synth, nullptr);
  EXPECT_EQ(bridge->category, "flow-stage");
  EXPECT_TRUE(contains(*total, *bridge));
  EXPECT_TRUE(contains(*total, *mlirOpt));
  EXPECT_TRUE(contains(*total, *synth));
  // The total span carries kernel/flow args for trace filtering.
  ASSERT_FALSE(total->args.empty());
  EXPECT_EQ(total->args[0].first, "kernel");
  EXPECT_EQ(total->args[0].second, "fir");

  // Adaptor (lir) pass spans nest within the bridge window...
  double lirPassUs = 0;
  for (const TraceEvent &event : events)
    if (event.category == "lir-pass") {
      EXPECT_TRUE(contains(*bridge, event)) << event.name;
      lirPassUs += event.durUs;
    }
  EXPECT_GT(lirPassUs, 0);
  // ...so their summed time fits inside it, and --time-passes agrees with
  // the per-stage window within tolerance.
  EXPECT_LE(lirPassUs / 1000.0, result.timings.bridgeMs * 1.05 + 1.0);
  double lirTableMs = 0;
  for (const PassTime &time : Tracer::global().passTimes())
    if (time.pipeline == "lir")
      lirTableMs += time.totalMs;
  EXPECT_NEAR(lirTableMs, lirPassUs / 1000.0, 0.5);

  // The whole trace renders as valid Chrome JSON.
  std::string error;
  EXPECT_TRUE(json::validate(Tracer::global().chromeTraceJson(), &error))
      << error;
}
