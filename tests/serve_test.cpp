// serve_test.cpp - the mha-serve daemon: protocol parsing, admission
// control, session isolation, cancellation, warm-cache equivalence and
// graceful shutdown, all against a real in-process Server on a real
// Unix-domain socket.

#include "flow/Kernels.h"
#include "flow/StageCache.h"
#include "mir/MContext.h"
#include "mir/Printer.h"
#include "serve/Client.h"
#include "serve/Protocol.h"
#include "serve/Server.h"
#include "serve/Session.h"
#include "support/Json.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include <unistd.h>

using namespace mha;
using namespace mha::serve;

namespace {

/// Short unique socket path in /tmp (sun_path is ~108 bytes; the ctest
/// working directory can easily exceed that).
std::string testSocketPath() {
  static std::atomic<int> counter{0};
  return strfmt("/tmp/mha_serve_test_%d_%d.sock", static_cast<int>(getpid()),
                counter.fetch_add(1));
}

ServerOptions testOptions(const std::string &socket, int maxInflight = 2,
                          int maxQueue = 8) {
  ServerOptions options;
  options.socketPath = socket;
  options.maxInflight = maxInflight;
  options.maxQueue = maxQueue;
  return options;
}

Request compileRequest(const std::string &id, const std::string &kernel,
                       int64_t ii = 1) {
  Request req;
  req.id = id;
  req.kernel = kernel;
  req.config.pipelineII = ii;
  return req;
}

/// The printed mir text of a built-in kernel — a known-good inline-MLIR
/// payload whose top function name collides across requests.
std::string kernelMlirText(const std::string &kernel, int64_t unroll) {
  const flow::KernelSpec *spec = flow::findKernel(kernel);
  EXPECT_NE(spec, nullptr);
  mir::MContext ctx;
  flow::KernelConfig config;
  config.unrollFactor = unroll;
  mir::OwnedModule module = spec->build(ctx, config);
  return mir::printModule(module.get());
}

/// An inline module that takes hundreds of milliseconds to compile: many
/// renamed copies of conv2d with a backend unroll directive. Admission
/// tests use it as a blocker so that "the worker is still busy when the
/// next request lines arrive" holds even on a single-CPU machine where
/// the CPU-bound worker can starve the reader thread for a scheduler
/// timeslice.
std::string replicatedKernelMlir(int copies) {
  std::string one = kernelMlirText("conv2d", 32);
  size_t open = one.find('{');
  size_t close = one.rfind('}');
  std::string body = one.substr(open + 1, close - open - 1);
  std::string text = "builtin.module {\n";
  for (int i = 0; i < copies; ++i) {
    std::string fn = body;
    std::string to = strfmt("@conv2d_%d", i);
    for (size_t pos = fn.find("@conv2d"); pos != std::string::npos;
         pos = fn.find("@conv2d", pos + to.size()))
      fn.replace(pos, 7, to);
    text += fn;
  }
  text += "}\n";
  return text;
}

Request blockerRequest(int copies = 16) {
  Request req;
  req.id = "blocker";
  req.mlir = replicatedKernelMlir(copies);
  req.top = "conv2d_0"; // multi-function inline MLIR needs an explicit top
  return req;
}

int64_t jsonInt(const std::string &line, const char *field) {
  std::optional<json::Value> doc = json::parse(line);
  EXPECT_TRUE(doc.has_value()) << line;
  const json::Value *value = doc->get(field);
  return value ? value->asInt() : -1;
}

} // namespace

// --- Protocol parsing ---------------------------------------------------

TEST(ServeProtocol, ParsesCanonicalCompileRequest) {
  Request req = compileRequest("r1", "gemm", 2);
  req.config.unrollFactor = 4;
  req.config.dataflow = true;
  ParsedRequest parsed = parseRequest(renderCompileRequest("r1", req));
  ASSERT_TRUE(parsed.ok) << parsed.errorMessage;
  EXPECT_EQ(parsed.request.id, "r1");
  EXPECT_EQ(parsed.request.kernel, "gemm");
  EXPECT_EQ(parsed.request.config.pipelineII, 2);
  EXPECT_EQ(parsed.request.config.unrollFactor, 4);
  EXPECT_TRUE(parsed.request.config.dataflow);
  EXPECT_EQ(parsed.request.type, RequestType::Compile);
}

TEST(ServeProtocol, RejectsMalformedJson) {
  ParsedRequest parsed = parseRequest("{\"schema\": ");
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.errorCode, errc::ParseError);
}

TEST(ServeProtocol, RejectsUnknownFieldsButRecoversId) {
  ParsedRequest parsed = parseRequest(
      "{\"schema\": \"mha.serve.req.v1\", \"id\": \"r9\", \"type\": "
      "\"compile\", \"kernel\": \"fir\", \"frobnicate\": 1}");
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.errorCode, errc::BadRequest);
  EXPECT_EQ(parsed.request.id, "r9");
  EXPECT_NE(parsed.errorMessage.find("frobnicate"), std::string::npos);
}

TEST(ServeProtocol, RejectsOversizedInlineMlir) {
  Request req;
  req.id = "big";
  req.mlir = std::string(kMaxInlineMlirBytes + 1, 'x');
  ParsedRequest parsed = parseRequest(renderCompileRequest("big", req));
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.errorCode, errc::BadRequest);
  EXPECT_NE(parsed.errorMessage.find("too large"), std::string::npos);
}

TEST(ServeProtocol, RejectsKernelAndMlirTogetherOrNeither) {
  ParsedRequest both = parseRequest(
      "{\"schema\": \"mha.serve.req.v1\", \"id\": \"b\", \"type\": "
      "\"compile\", \"kernel\": \"fir\", \"mlir\": \"module {}\"}");
  EXPECT_FALSE(both.ok);
  ParsedRequest neither = parseRequest(
      "{\"schema\": \"mha.serve.req.v1\", \"id\": \"n\", \"type\": "
      "\"compile\"}");
  EXPECT_FALSE(neither.ok);
}

TEST(ServeProtocol, RejectsOutOfRangeKnobsAndWrongTypes) {
  EXPECT_FALSE(parseRequest("{\"schema\": \"mha.serve.req.v1\", \"id\": "
                            "\"k\", \"type\": \"compile\", \"kernel\": "
                            "\"fir\", \"ii\": -1}")
                   .ok);
  EXPECT_FALSE(parseRequest("{\"schema\": \"mha.serve.req.v1\", \"id\": "
                            "\"k\", \"type\": \"compile\", \"kernel\": "
                            "\"fir\", \"unroll\": 1.5}")
                   .ok);
  EXPECT_FALSE(parseRequest("{\"schema\": \"mha.serve.req.v1\", \"id\": "
                            "\"k\", \"type\": \"compile\", \"kernel\": "
                            "\"fir\", \"estimate\": \"yes\"}")
                   .ok);
}

TEST(ServeProtocol, RejectsForeignSchemaAndAdminPayloads) {
  EXPECT_FALSE(parseRequest("{\"schema\": \"mha.other.v1\", \"id\": \"s\", "
                            "\"type\": \"ping\"}")
                   .ok);
  EXPECT_FALSE(parseRequest("{\"schema\": \"mha.serve.req.v1\", \"id\": "
                            "\"p\", \"type\": \"ping\", \"kernel\": "
                            "\"fir\"}")
                   .ok);
}

TEST(ServeProtocol, TopFieldRoundTripsThroughCanonicalRequest) {
  Request req;
  req.id = "t";
  req.mlir = "module {}";
  req.top = "gemm_tile";
  ParsedRequest parsed = parseRequest(renderCompileRequest("t", req));
  ASSERT_TRUE(parsed.ok) << parsed.errorMessage;
  EXPECT_EQ(parsed.request.top, "gemm_tile");
  EXPECT_EQ(parsed.request.mlir, "module {}");
}

TEST(ServeProtocol, RejectsTopWithoutMlirOrEmptyOrOnAdmin) {
  // 'top' only makes sense for inline-mlir compiles: a named kernel
  // defines its own top, and admin requests carry no payload at all.
  ParsedRequest withKernel = parseRequest(
      "{\"schema\": \"mha.serve.req.v1\", \"id\": \"k\", \"type\": "
      "\"compile\", \"kernel\": \"fir\", \"top\": \"fir\"}");
  EXPECT_FALSE(withKernel.ok);
  EXPECT_EQ(withKernel.errorCode, errc::BadRequest);
  ParsedRequest empty = parseRequest(
      "{\"schema\": \"mha.serve.req.v1\", \"id\": \"e\", \"type\": "
      "\"compile\", \"mlir\": \"module {}\", \"top\": \"\"}");
  EXPECT_FALSE(empty.ok);
  ParsedRequest onPing = parseRequest(
      "{\"schema\": \"mha.serve.req.v1\", \"id\": \"p\", \"type\": "
      "\"ping\", \"top\": \"f\"}");
  EXPECT_FALSE(onPing.ok);
}

TEST(ServeProtocol, EveryRenderedEventValidatesAsJson) {
  Request req = compileRequest("r", "fir");
  flow::FlowResult result;
  result.kernelName = "fir";
  for (const std::string &line :
       {renderAccepted("r", 3), renderStage("r", "synth"),
        renderResult("r", req, result),
        renderEstimateResult("r", req, 100, 1, 2, 3, 4),
        renderError("r", errc::UnknownKernel, "nope", true),
        renderDone("r", true, "", true, 10, 20), renderPong("r"),
        renderCancelAck("r", false), renderShutdownAck("r"),
        renderCompileRequest("r", req),
        renderAdminRequest("r", RequestType::Cancel)}) {
    std::string error;
    EXPECT_TRUE(json::validate(line, &error)) << error << "\n" << line;
    EXPECT_EQ(line.find('\n'), std::string::npos) << line;
  }
}

TEST(ServeProtocol, InlineKernelNameIsContentAddressed) {
  EXPECT_EQ(inlineKernelName("module {}"), inlineKernelName("module {}"));
  EXPECT_NE(inlineKernelName("module {}"), inlineKernelName("module { }"));
  EXPECT_TRUE(startsWith(inlineKernelName("x"), "inline-"));
}

TEST(JsonCompact, StripsWhitespaceOutsideStringsOnly) {
  EXPECT_EQ(json::compact("{ \"a\" : [ 1 , 2 ] ,\n \"b\" : \"x y\\\" z\" }"),
            "{\"a\":[1,2],\"b\":\"x y\\\" z\"}");
}

// --- Server behaviour ---------------------------------------------------

TEST(ServeServer, WarmCompileIsByteIdenticalAndCached) {
  flow::StageCache::global().clear();
  std::string socket = testSocketPath();
  Server server(testOptions(socket));
  ASSERT_TRUE(server.start());

  Client client;
  ASSERT_TRUE(client.connect(socket));
  Client::CompileOutcome cold = client.runCompile(compileRequest("c", "fir"));
  ASSERT_TRUE(cold.transportOk) << cold.error;
  EXPECT_TRUE(cold.ok);
  EXPECT_FALSE(cold.cached);
  EXPECT_EQ(cold.stages,
            (std::vector<std::string>{"mlirOpt", "bridge", "synth"}));

  Client::CompileOutcome warm = client.runCompile(compileRequest("w", "fir"));
  ASSERT_TRUE(warm.transportOk) << warm.error;
  EXPECT_TRUE(warm.ok);
  EXPECT_TRUE(warm.cached);
  // The result event is deterministic: only the ids differ.
  std::string coldLine = cold.resultLine, warmLine = warm.resultLine;
  size_t coldId = coldLine.find("\"id\": \"c\"");
  size_t warmId = warmLine.find("\"id\": \"w\"");
  ASSERT_NE(coldId, std::string::npos);
  ASSERT_NE(warmId, std::string::npos);
  coldLine.replace(coldId, 9, "\"id\": \"X\"");
  warmLine.replace(warmId, 9, "\"id\": \"X\"");
  EXPECT_EQ(coldLine, warmLine);

  server.stop();
  EXPECT_EQ(server.stats().completedOk, 2);
}

TEST(ServeServer, ConcurrentSessionsWithSameKernelNameStayIsolated) {
  flow::StageCache::global().clear();
  std::string socket = testSocketPath();
  Server server(testOptions(socket, /*maxInflight=*/2));
  ASSERT_TRUE(server.start());

  // Two inline modules whose top function is named "conv2d" in both, but
  // with different unroll directives — distinct designs with distinct
  // latencies. Run them concurrently; each client must get its own
  // report back.
  std::string mlirA = kernelMlirText("conv2d", 1);
  std::string mlirB = kernelMlirText("conv2d", 2);
  ASSERT_NE(mlirA, mlirB);

  Client::CompileOutcome outcomeA, outcomeB;
  std::thread threadA([&] {
    Client client;
    ASSERT_TRUE(client.connect(socket));
    Request req;
    req.id = "a";
    req.mlir = mlirA;
    outcomeA = client.runCompile(req);
  });
  std::thread threadB([&] {
    Client client;
    ASSERT_TRUE(client.connect(socket));
    Request req;
    req.id = "b";
    req.mlir = mlirB;
    outcomeB = client.runCompile(req);
  });
  threadA.join();
  threadB.join();
  ASSERT_TRUE(outcomeA.transportOk) << outcomeA.error;
  ASSERT_TRUE(outcomeB.transportOk) << outcomeB.error;
  EXPECT_TRUE(outcomeA.ok);
  EXPECT_TRUE(outcomeB.ok);
  // Different designs, different QoR; and each result names its own
  // content-addressed inline kernel, so the reports cannot be swapped.
  EXPECT_NE(jsonInt(outcomeA.resultLine, "latency_cycles"),
            jsonInt(outcomeB.resultLine, "latency_cycles"));
  EXPECT_NE(outcomeA.resultLine.find(inlineKernelName(mlirA)),
            std::string::npos);
  EXPECT_NE(outcomeB.resultLine.find(inlineKernelName(mlirB)),
            std::string::npos);
  server.stop();
}

TEST(ServeServer, QueueFullReturnsTypedBusy) {
  flow::StageCache::global().clear();
  std::string socket = testSocketPath();
  // One worker, one queue slot: blocker runs, filler queues, the third
  // must be rejected with `busy` (admission counts outstanding work —
  // admitted but not yet done — so the outcome is exact once the blocker
  // is known to occupy the worker).
  Server server(testOptions(socket, /*maxInflight=*/1, /*maxQueue=*/1));
  ASSERT_TRUE(server.start());

  Client client;
  ASSERT_TRUE(client.connect(socket));
  ASSERT_TRUE(
      client.sendLine(renderCompileRequest("blocker", blockerRequest())));
  // Wait until the worker is demonstrably inside the blocker's flow (its
  // first stage event) before queueing more work: the blocker still has
  // hundreds of milliseconds to run, so both follow-up lines are admitted
  // or rejected while it holds the only worker.
  std::string line;
  do {
    ASSERT_TRUE(client.readLine(line));
  } while (line.find("\"event\": \"stage\"") == std::string::npos);
  ASSERT_TRUE(client.sendLine(
      renderCompileRequest("filler", compileRequest("filler", "fir"))));
  ASSERT_TRUE(client.sendLine(
      renderCompileRequest("third", compileRequest("third", "fir"))));

  // Collect every event until all three requests reach `done`.
  std::map<std::string, std::string> doneCode;
  std::map<std::string, std::vector<std::string>> events;
  while (doneCode.size() < 3 && client.readLine(line)) {
    std::optional<json::Value> doc = json::parse(line);
    ASSERT_TRUE(doc.has_value()) << line;
    std::string id = doc->get("id")->asString();
    std::string event = doc->get("event")->asString();
    events[id].push_back(event);
    if (event == "done") {
      const json::Value *code = doc->get("code");
      doneCode[id] = code && code->isString() ? code->asString() : "";
    }
  }
  EXPECT_EQ(doneCode["blocker"], "");
  EXPECT_EQ(doneCode["filler"], "");
  EXPECT_EQ(doneCode["third"], errc::Busy);
  // The rejected request got error -> done and never an accepted event.
  EXPECT_EQ(events["third"],
            (std::vector<std::string>{"error", "done"}));
  server.stop();
  Server::Stats stats = server.stats();
  EXPECT_EQ(stats.rejectedBusy, 1);
  EXPECT_EQ(stats.admitted, 2);
  EXPECT_EQ(stats.completedOk, 2);
}

TEST(ServeServer, CancelWhileQueuedNeverStartsTheFlow) {
  flow::StageCache::global().clear();
  std::string socket = testSocketPath();
  Server server(testOptions(socket, /*maxInflight=*/1, /*maxQueue=*/4));
  ASSERT_TRUE(server.start());

  Client client;
  ASSERT_TRUE(client.connect(socket));
  ASSERT_TRUE(
      client.sendLine(renderCompileRequest("blocker", blockerRequest())));
  // As in QueueFullReturnsTypedBusy: only queue the victim once the
  // long-running blocker owns the single worker, so the cancel line is
  // processed while the victim is still waiting for a worker.
  std::string line;
  do {
    ASSERT_TRUE(client.readLine(line));
  } while (line.find("\"event\": \"stage\"") == std::string::npos);
  ASSERT_TRUE(client.sendLine(
      renderCompileRequest("victim", compileRequest("victim", "fir"))));
  ASSERT_TRUE(
      client.sendLine(renderAdminRequest("victim", RequestType::Cancel)));

  bool sawCancelAck = false, ackFound = false;
  std::map<std::string, std::string> doneCode;
  std::map<std::string, std::vector<std::string>> stages;
  while (doneCode.size() < 2 && client.readLine(line)) {
    std::optional<json::Value> doc = json::parse(line);
    ASSERT_TRUE(doc.has_value()) << line;
    std::string id = doc->get("id")->asString();
    std::string event = doc->get("event")->asString();
    if (event == "cancel_ack") {
      sawCancelAck = true;
      ackFound = doc->get("found")->asBool();
    } else if (event == "stage") {
      stages[id].push_back(doc->get("stage")->asString());
    } else if (event == "done") {
      const json::Value *code = doc->get("code");
      doneCode[id] = code && code->isString() ? code->asString() : "";
    }
  }
  EXPECT_TRUE(sawCancelAck);
  EXPECT_TRUE(ackFound);
  EXPECT_EQ(doneCode["blocker"], "");
  EXPECT_EQ(doneCode["victim"], errc::Cancelled);
  // Cancelled while queued: no stage of the victim's flow ever ran.
  EXPECT_TRUE(stages["victim"].empty());
  server.stop();
  EXPECT_EQ(server.stats().cancelled, 1);
}

TEST(ServeSession, PresetCancelFlagAbandonsAtFirstStageBoundary) {
  std::atomic<bool> cancel{true};
  std::vector<std::string> lines;
  SessionOutcome outcome =
      runSession(compileRequest("c", "fir"), SessionOptions{}, &cancel,
                 [&](const std::string &line) { lines.push_back(line); });
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.code, errc::Cancelled);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"error\""), std::string::npos);
  EXPECT_NE(lines[0].find(errc::Cancelled), std::string::npos);
}

TEST(ServeSession, MultiFunctionModuleWithoutTopIsAmbiguous) {
  Request req;
  req.id = "amb";
  req.mlir = replicatedKernelMlir(2); // defines @conv2d_0 and @conv2d_1
  std::vector<std::string> lines;
  SessionOutcome outcome =
      runSession(req, SessionOptions{}, nullptr,
                 [&](const std::string &line) { lines.push_back(line); });
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.code, errc::AmbiguousTop);
  // The single error event names the code and lists both candidates in a
  // structured array the client can retry from.
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find(errc::AmbiguousTop), std::string::npos);
  EXPECT_NE(lines[0].find("\"candidates\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"conv2d_0\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"conv2d_1\""), std::string::npos);
  std::string error;
  EXPECT_TRUE(json::validate(lines[0], &error)) << error << "\n" << lines[0];
}

TEST(ServeSession, UnknownTopIsBadRequestWithCandidates) {
  Request req;
  req.id = "bad-top";
  req.mlir = replicatedKernelMlir(2);
  req.top = "conv2d_9";
  std::vector<std::string> lines;
  SessionOutcome outcome =
      runSession(req, SessionOptions{}, nullptr,
                 [&](const std::string &line) { lines.push_back(line); });
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.code, errc::BadRequest);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("conv2d_9"), std::string::npos);
  EXPECT_NE(lines[0].find("\"candidates\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"conv2d_0\""), std::string::npos);
}

TEST(ServeServer, ExplicitTopCompilesMultiFunctionModuleDeterministically) {
  flow::StageCache::global().clear();
  std::string socket = testSocketPath();
  Server server(testOptions(socket));
  ASSERT_TRUE(server.start());
  Client client;
  ASSERT_TRUE(client.connect(socket));

  Request req;
  req.id = "t1";
  req.mlir = replicatedKernelMlir(2);
  req.top = "conv2d_1";
  Client::CompileOutcome cold = client.runCompile(req);
  ASSERT_TRUE(cold.transportOk) << cold.error;
  EXPECT_TRUE(cold.ok) << cold.code;
  EXPECT_FALSE(cold.cached);

  req.id = "t2";
  Client::CompileOutcome warm = client.runCompile(req);
  ASSERT_TRUE(warm.transportOk) << warm.error;
  EXPECT_TRUE(warm.ok);
  EXPECT_TRUE(warm.cached);
  // Byte-deterministic result: only the ids differ between cold and warm.
  std::string coldLine = cold.resultLine, warmLine = warm.resultLine;
  size_t coldId = coldLine.find("\"id\": \"t1\"");
  size_t warmId = warmLine.find("\"id\": \"t2\"");
  ASSERT_NE(coldId, std::string::npos);
  ASSERT_NE(warmId, std::string::npos);
  coldLine.replace(coldId, 10, "\"id\": \"X\"");
  warmLine.replace(warmId, 10, "\"id\": \"X\"");
  EXPECT_EQ(coldLine, warmLine);

  // The other function of the same module is a distinct design point:
  // same module text, different top, no cache collision.
  req.id = "t3";
  req.top = "conv2d_0";
  Client::CompileOutcome other = client.runCompile(req);
  ASSERT_TRUE(other.transportOk) << other.error;
  EXPECT_TRUE(other.ok);
  EXPECT_FALSE(other.cached);
  server.stop();
}

TEST(ServeServer, UnknownKernelErrorTeachesAvailableNames) {
  std::string socket = testSocketPath();
  Server server(testOptions(socket));
  ASSERT_TRUE(server.start());
  Client client;
  ASSERT_TRUE(client.connect(socket));
  Client::CompileOutcome outcome =
      client.runCompile(compileRequest("u", "frobnicate"));
  ASSERT_TRUE(outcome.transportOk) << outcome.error;
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.code, errc::UnknownKernel);

  // The raw error line carries the structured kernel list.
  Client client2;
  ASSERT_TRUE(client2.connect(socket));
  ASSERT_TRUE(client2.sendLine(
      renderCompileRequest("u2", compileRequest("u2", "frobnicate"))));
  std::string line;
  bool sawKernels = false;
  while (client2.readLine(line)) {
    if (line.find("\"error\"") != std::string::npos) {
      EXPECT_NE(line.find("available_kernels"), std::string::npos);
      EXPECT_NE(line.find("\"gemm\""), std::string::npos);
      sawKernels = true;
      break;
    }
  }
  EXPECT_TRUE(sawKernels);
  server.stop();
}

TEST(ServeServer, MalformedLineGetsTypedParseError) {
  std::string socket = testSocketPath();
  Server server(testOptions(socket));
  ASSERT_TRUE(server.start());
  Client client;
  ASSERT_TRUE(client.connect(socket));
  ASSERT_TRUE(client.sendLine("this is not json"));
  std::string line;
  ASSERT_TRUE(client.readLine(line));
  EXPECT_NE(line.find(errc::ParseError), std::string::npos);
  ASSERT_TRUE(client.readLine(line));
  EXPECT_NE(line.find("\"done\""), std::string::npos);
  // The connection survives a bad line.
  EXPECT_TRUE(client.ping("still-alive"));
  server.stop();
}

TEST(ServeServer, EstimateRequestReturnsAnalyticalQoR) {
  flow::StageCache::global().clear();
  std::string socket = testSocketPath();
  Server server(testOptions(socket));
  ASSERT_TRUE(server.start());
  Client client;
  ASSERT_TRUE(client.connect(socket));
  Request req = compileRequest("est", "fir", 2);
  req.estimate = true;
  Client::CompileOutcome outcome = client.runCompile(req);
  ASSERT_TRUE(outcome.transportOk) << outcome.error;
  EXPECT_TRUE(outcome.ok) << outcome.error;
  EXPECT_NE(outcome.resultLine.find("\"estimate\": true"),
            std::string::npos);
  EXPECT_GT(jsonInt(outcome.resultLine, "latency_cycles"), 0);
  server.stop();
}

TEST(ServeServer, ShutdownRequestDrainsAndStops) {
  std::string socket = testSocketPath();
  Server server(testOptions(socket));
  ASSERT_TRUE(server.start());
  Client client;
  ASSERT_TRUE(client.connect(socket));
  ASSERT_TRUE(client.ping());
  ASSERT_TRUE(client.shutdown());
  server.wait();
  EXPECT_FALSE(server.running());
  // Socket file is gone; new connections fail.
  Client late;
  EXPECT_FALSE(late.connect(socket));
}

TEST(ServeServer, RejectsCompileDuringShutdownTyped) {
  std::string socket = testSocketPath();
  Server server(testOptions(socket));
  ASSERT_TRUE(server.start());
  Client client;
  ASSERT_TRUE(client.connect(socket));
  server.requestStop(); // flag flips immediately; socket drains async
  Client::CompileOutcome outcome =
      client.runCompile(compileRequest("late", "fir"));
  if (outcome.transportOk) {
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.code, errc::ShuttingDown);
  } // else: the drain already closed the connection — also correct.
  server.wait();
}

TEST(ServeServer, HlsCppFlowReturnsEmittedSource) {
  flow::StageCache::global().clear();
  std::string socket = testSocketPath();
  Server server(testOptions(socket));
  ASSERT_TRUE(server.start());
  Client client;
  ASSERT_TRUE(client.connect(socket));
  Request req = compileRequest("cpp", "fir");
  req.flowKind = flow::FlowKind::HlsCpp;
  Client::CompileOutcome outcome = client.runCompile(req);
  ASSERT_TRUE(outcome.transportOk) << outcome.error;
  EXPECT_TRUE(outcome.ok) << outcome.error;
  EXPECT_NE(outcome.resultLine.find("\"hls_cpp\""), std::string::npos);
  EXPECT_NE(outcome.resultLine.find("\"flow\": \"hls-c++\""),
            std::string::npos);
  server.stop();
}
