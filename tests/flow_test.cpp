// End-to-end flow tests: every kernel goes through both flows, is accepted
// by the virtual HLS frontend, co-simulates bit-exactly, and the two flows
// produce comparable results (the paper's headline claim).
#include "flow/Flow.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace mha;
using namespace mha::flow;

namespace {

class AllKernels : public ::testing::TestWithParam<std::string> {
protected:
  const KernelSpec &spec() { return *findKernel(GetParam()); }
};

std::vector<std::string> kernelNames() {
  std::vector<std::string> names;
  for (const KernelSpec &spec : allKernels())
    names.push_back(spec.name);
  return names;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Kernels, AllKernels,
                         ::testing::ValuesIn(kernelNames()),
                         [](const auto &info) {
                           std::string name = info.param;
                           for (char &c : name)
                             if (!isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return name;
                         });

TEST_P(AllKernels, AdaptorFlowAcceptedAndCorrect) {
  KernelConfig config;
  config.pipelineII = 1;
  config.partitionFactor = 2;
  FlowResult result = runAdaptorFlow(spec(), config);
  ASSERT_TRUE(result.ok) << result.diagnostics;
  EXPECT_TRUE(result.synth.accepted);
  EXPECT_EQ(result.synth.compat.warnings, 0) << result.diagnostics;
  std::string error;
  EXPECT_TRUE(cosimAgainstReference(result, spec(), error)) << error;
}

TEST_P(AllKernels, HlsCppFlowAcceptedAndCorrect) {
  KernelConfig config;
  config.pipelineII = 1;
  config.partitionFactor = 2;
  FlowResult result = runHlsCppFlow(spec(), config);
  ASSERT_TRUE(result.ok) << result.diagnostics << "\n" << result.hlsCpp;
  EXPECT_TRUE(result.synth.accepted);
  std::string error;
  EXPECT_TRUE(cosimAgainstReference(result, spec(), error)) << error;
}

TEST_P(AllKernels, FlowsProduceComparableLatency) {
  // The paper's claim: the adaptor flow performs comparably to the HLS C++
  // flow. Enforce a generous band (within 25% either way).
  KernelConfig config;
  config.pipelineII = 1;
  config.partitionFactor = 2;
  FlowResult adaptorResult = runAdaptorFlow(spec(), config);
  FlowResult cppResult = runHlsCppFlow(spec(), config);
  ASSERT_TRUE(adaptorResult.ok) << adaptorResult.diagnostics;
  ASSERT_TRUE(cppResult.ok) << cppResult.diagnostics;
  double a = static_cast<double>(adaptorResult.synth.top()->latencyCycles);
  double c = static_cast<double>(cppResult.synth.top()->latencyCycles);
  EXPECT_GT(a, 0);
  EXPECT_GT(c, 0);
  double ratio = a / c;
  EXPECT_GT(ratio, 0.75) << "adaptor=" << a << " hls-c++=" << c;
  EXPECT_LT(ratio, 1.25) << "adaptor=" << a << " hls-c++=" << c;
}

TEST_P(AllKernels, UnoptimizedBaselineIsSlower) {
  KernelConfig plain;
  plain.applyDirectives = false;
  KernelConfig optimized;
  optimized.pipelineII = 1;
  optimized.partitionFactor = 2;
  FlowResult baseline = runAdaptorFlow(spec(), plain);
  FlowResult tuned = runAdaptorFlow(spec(), optimized);
  ASSERT_TRUE(baseline.ok) << baseline.diagnostics;
  ASSERT_TRUE(tuned.ok) << tuned.diagnostics;
  // Directives must never make things slower.
  EXPECT_LE(tuned.synth.top()->latencyCycles,
            baseline.synth.top()->latencyCycles);
}

TEST(Flow, AdaptorStatsPopulated) {
  KernelConfig config;
  config.pipelineII = 1;
  config.partitionFactor = 4;
  FlowResult result = runAdaptorFlow(*findKernel("gemm"), config);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.adaptorStats.at("adaptor.descriptors-eliminated"), 3);
  EXPECT_GT(result.adaptorStats.at("adaptor.geps-delinearized"), 0);
  EXPECT_GT(result.adaptorStats.at("adaptor.loop-directives-converted"), 0);
  EXPECT_EQ(result.adaptorStats.at("compat.errors"), 0);
}

TEST(Flow, TimingsRecorded) {
  FlowResult result = runAdaptorFlow(*findKernel("fir"), {});
  ASSERT_TRUE(result.ok);
  EXPECT_GT(result.timings.totalMs, 0);
  EXPECT_GE(result.timings.totalMs,
            result.timings.mlirOptMs + result.timings.bridgeMs);
}

TEST(Flow, TimingWindowsAreSymmetricAcrossFlows) {
  // Table 4 compares compile time per stage, so both flows must charge
  // the same work to mlirOptMs: exactly the shared MLIR preparation.
  // Flow-specific legs (the adaptor flow's affine->scf conversion, the
  // C++ flow's emission) belong to bridgeMs.
  FlowResult a = runAdaptorFlow(*findKernel("gemm"), {});
  FlowResult c = runHlsCppFlow(*findKernel("gemm"), {});
  ASSERT_TRUE(a.ok && c.ok) << a.diagnostics << c.diagnostics;

  auto stageNames = [](const FlowResult &result, const char *stage) {
    std::vector<std::string> names;
    for (const StageSpan &span : result.spans)
      if (span.stage == stage)
        names.push_back(span.name);
    return names;
  };
  EXPECT_EQ(stageNames(a, "mlirOpt"), stageNames(c, "mlirOpt"));
  EXPECT_EQ(stageNames(a, "mlirOpt"),
            std::vector<std::string>{"prepare-mlir"});
  std::vector<std::string> bridge = stageNames(a, "bridge");
  EXPECT_NE(std::find(bridge.begin(), bridge.end(), "affine-to-scf"),
            bridge.end())
      << "scf conversion must be charged to the bridge window";

  // Each stage window covers at least the spans attributed to it.
  for (const FlowResult *result : {&a, &c}) {
    double mlirSpanMs = 0, bridgeSpanMs = 0;
    for (const StageSpan &span : result->spans) {
      if (span.stage == "mlirOpt")
        mlirSpanMs += span.ms;
      if (span.stage == "bridge")
        bridgeSpanMs += span.ms;
    }
    EXPECT_GE(result->timings.mlirOptMs, mlirSpanMs - 0.5);
    EXPECT_GE(result->timings.bridgeMs, bridgeSpanMs - 0.5);
  }
}

TEST(Flow, HlsCppFlowEmitsCode) {
  FlowResult result = runHlsCppFlow(*findKernel("fir"), {});
  ASSERT_TRUE(result.ok);
  EXPECT_NE(result.hlsCpp.find("void fir("), std::string::npos);
  // The adaptor flow never emits C++.
  FlowResult adaptorResult = runAdaptorFlow(*findKernel("fir"), {});
  EXPECT_TRUE(adaptorResult.hlsCpp.empty());
}

TEST(Flow, PipelineIIRespondsToDirective) {
  KernelConfig fast;
  fast.pipelineII = 1;
  KernelConfig slow;
  slow.pipelineII = 8;
  FlowResult fastResult = runAdaptorFlow(*findKernel("conv2d"), fast);
  FlowResult slowResult = runAdaptorFlow(*findKernel("conv2d"), slow);
  ASSERT_TRUE(fastResult.ok && slowResult.ok);
  auto innerII = [](const FlowResult &r) {
    int64_t ii = 0;
    for (const auto &loop : r.synth.top()->loops)
      if (loop.pipelined)
        ii = std::max(ii, loop.achievedII);
    return ii;
  };
  EXPECT_GE(innerII(slowResult), innerII(fastResult));
  EXPECT_GE(innerII(slowResult), 8);
}

TEST(Flow, PartitioningImprovesOrMatchesLatency) {
  KernelConfig one;
  one.pipelineII = 1;
  one.unrollFactor = 4;
  one.partitionFactor = 1;
  KernelConfig four = one;
  four.partitionFactor = 4;
  FlowResult p1 = runAdaptorFlow(*findKernel("gemm"), one);
  FlowResult p4 = runAdaptorFlow(*findKernel("gemm"), four);
  ASSERT_TRUE(p1.ok && p4.ok);
  EXPECT_LE(p4.synth.top()->latencyCycles, p1.synth.top()->latencyCycles);
}

TEST(Flow, DataflowOverlapsMvt) {
  KernelConfig off;
  off.pipelineII = 1;
  KernelConfig on = off;
  on.dataflow = true;
  FlowResult plain = runAdaptorFlow(*findKernel("mvt"), off);
  FlowResult df = runAdaptorFlow(*findKernel("mvt"), on);
  ASSERT_TRUE(plain.ok && df.ok) << plain.diagnostics << df.diagnostics;
  EXPECT_TRUE(df.synth.top()->dataflow);
  EXPECT_FALSE(plain.synth.top()->dataflow);
  // mvt's two nests are symmetric: dataflow halves the latency (~2x).
  double speedup = static_cast<double>(plain.synth.top()->latencyCycles) /
                   static_cast<double>(df.synth.top()->latencyCycles);
  EXPECT_GT(speedup, 1.8);
  std::string error;
  EXPECT_TRUE(cosimAgainstReference(df, *findKernel("mvt"), error)) << error;
}

TEST(Flow, DataflowMatchesAcrossFlows) {
  KernelConfig config;
  config.pipelineII = 1;
  config.dataflow = true;
  FlowResult a = runAdaptorFlow(*findKernel("mm2"), config);
  FlowResult c = runHlsCppFlow(*findKernel("mm2"), config);
  ASSERT_TRUE(a.ok && c.ok) << a.diagnostics << c.diagnostics;
  EXPECT_EQ(a.synth.top()->latencyCycles, c.synth.top()->latencyCycles);
  EXPECT_TRUE(a.synth.top()->dataflow);
  EXPECT_TRUE(c.synth.top()->dataflow);
}

TEST(Flow, MlirLevelUnrollMatchesBackendUnroll) {
  KernelConfig config;
  config.pipelineII = 1;
  config.unrollFactor = 4;
  config.partitionFactor = 4;
  FlowOptions backend;
  FlowOptions mlirLevel;
  mlirLevel.unrollAtMlirLevel = true;
  for (const char *name : {"jacobi2d", "conv2d"}) {
    FlowResult b = runAdaptorFlow(*findKernel(name), config, backend);
    FlowResult m = runAdaptorFlow(*findKernel(name), config, mlirLevel);
    ASSERT_TRUE(b.ok && m.ok) << name;
    EXPECT_EQ(b.synth.top()->latencyCycles, m.synth.top()->latencyCycles)
        << name;
    std::string error;
    EXPECT_TRUE(cosimAgainstReference(m, *findKernel(name), error))
        << name << ": " << error;
  }
}

TEST(Flow, MlirLevelUnrollThroughCppFlow) {
  KernelConfig config;
  config.pipelineII = 1;
  config.unrollFactor = 4;
  config.partitionFactor = 4;
  FlowOptions mlirLevel;
  mlirLevel.unrollAtMlirLevel = true;
  FlowResult m = runHlsCppFlow(*findKernel("jacobi2d"), config, mlirLevel);
  ASSERT_TRUE(m.ok) << m.diagnostics;
  // The emitted C++ carries the pre-unrolled body: no unroll pragma left.
  EXPECT_EQ(m.hlsCpp.find("unroll"), std::string::npos);
  std::string error;
  EXPECT_TRUE(cosimAgainstReference(m, *findKernel("jacobi2d"), error))
      << error;
}
