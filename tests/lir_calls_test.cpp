// Call legalization for multi-function MiniLLVM modules: the bottom-up
// Inliner, the Rec2Iter explicit-stack rewrite and CallSitePrivatization.
// Transform correctness is checked two ways: structurally (what the
// printed module contains, which stats fired, which notes explain a skip)
// and behaviourally (the interpreter computes the same values before and
// after — the same oracle the fuzzer uses).
#include "interp/Interp.h"
#include "lir/Function.h"
#include "lir/LContext.h"
#include "lir/Parser.h"
#include "lir/Printer.h"
#include "lir/Verifier.h"
#include "lir/transforms/Transforms.h"

#include <gtest/gtest.h>

using namespace mha;
using namespace mha::lir;

namespace {

struct Parsed {
  LContext ctx;
  std::unique_ptr<Module> module;

  explicit Parsed(const std::string &text) {
    DiagnosticEngine diags;
    module = parseModule(text, ctx, diags);
    EXPECT_NE(module, nullptr) << diags.str();
  }

  /// Runs one pass (verifying after it) and returns its stats; the pass's
  /// notes land in `notes` when provided.
  PassStats runPass(std::unique_ptr<ModulePass> pass,
                    std::string *notes = nullptr) {
    PassManager pm(/*verifyEach=*/true);
    pm.add(std::move(pass));
    DiagnosticEngine diags;
    EXPECT_TRUE(pm.run(*module, diags)) << diags.str();
    if (notes)
      *notes = diags.str();
    return pm.totalStats();
  }

  int64_t interp(const std::string &fn, std::vector<int64_t> args) {
    std::vector<interp::RtValue> rtArgs;
    for (int64_t a : args)
      rtArgs.push_back(interp::RtValue::ofInt(a));
    DiagnosticEngine diags;
    interp::Interpreter interpreter(*module);
    auto result = interpreter.run(module->getFunction(fn),
                                  std::move(rtArgs), diags);
    EXPECT_TRUE(result.has_value()) << diags.str();
    return result ? result->i : 0;
  }

  std::string print() { return printModule(*module); }
};

const char *kFactorialModule = R"(
define i64 @fact(i64 %n) {
entry:
  %cmp = icmp sle i64 %n, 1
  br i1 %cmp, label %base, label %rec
base:
  ret i64 1
rec:
  %n1 = sub i64 %n, 1
  %r = call i64 @fact(i64 %n1)
  %v = mul i64 %n, %r
  ret i64 %v
}
)";

const char *kFibModule = R"(
define i64 @fib(i64 %n) #[mha.rec_depth=24] {
entry:
  %cmp = icmp sle i64 %n, 1
  br i1 %cmp, label %base, label %rec
base:
  ret i64 %n
rec:
  %n1 = sub i64 %n, 1
  %r1 = call i64 @fib(i64 %n1)
  %n2 = sub i64 %n, 2
  %r2 = call i64 @fib(i64 %n2)
  %v = add i64 %r1, %r2
  ret i64 %v
}
)";

} // namespace

// --- Inliner ------------------------------------------------------------

TEST(Inliner, InlinesHelperAndErasesIt) {
  Parsed p(R"(
define i64 @helper(i64 %a, i64 %b) {
entry:
  %m = mul i64 %a, %b
  %v = add i64 %m, 7
  ret i64 %v
}

define i64 @top(i64 %x) {
entry:
  %r = call i64 @helper(i64 %x, i64 3)
  %v = add i64 %r, 1
  ret i64 %v
}
)");
  int64_t before = p.interp("top", {5});
  PassStats stats = p.runPass(createInlinerPass());
  EXPECT_EQ(stats["inline.count"], 1);
  EXPECT_EQ(stats["inline.removed"], 1);
  std::string out = p.print();
  EXPECT_EQ(out.find("call"), std::string::npos) << out;
  EXPECT_EQ(out.find("@helper"), std::string::npos) << out;
  EXPECT_EQ(p.interp("top", {5}), before);
}

TEST(Inliner, BudgetSkipIsCountedAndExplained) {
  Parsed p(R"(
define i64 @big(i64 %a) {
entry:
  %v1 = add i64 %a, 1
  %v2 = add i64 %v1, 2
  %v3 = add i64 %v2, 3
  %v4 = add i64 %v3, 4
  %v5 = add i64 %v4, 5
  ret i64 %v5
}

define i64 @top(i64 %x) {
entry:
  %r = call i64 @big(i64 %x)
  ret i64 %r
}
)");
  std::string notes;
  InlinerOptions options;
  options.sizeBudget = 3; // @big has 6 instructions
  PassStats stats = p.runPass(createInlinerPass(options), &notes);
  EXPECT_EQ(stats["inline.count"], 0);
  EXPECT_EQ(stats["inline.skipped.budget"], 1);
  EXPECT_NE(notes.find("exceeds budget"), std::string::npos) << notes;
  EXPECT_NE(notes.find("'big'"), std::string::npos) << notes;
  EXPECT_NE(p.print().find("call i64 @big"), std::string::npos);
}

TEST(Inliner, NoinlineAndExternalCalleesLeftWithNotes) {
  Parsed p(R"(
define i64 @opaque(i64 %a) #[noinline] {
entry:
  %v = add i64 %a, 1
  ret i64 %v
}

define i64 @top(i64 %x) {
entry:
  %a = call i64 @opaque(i64 %x)
  %b = call i64 @extern_fn(i64 %a)
  ret i64 %b
}
)");
  std::string notes;
  PassStats stats = p.runPass(createInlinerPass(), &notes);
  EXPECT_EQ(stats["inline.skipped.noinline"], 1);
  EXPECT_EQ(stats["inline.skipped.external"], 1);
  EXPECT_NE(notes.find("'noinline' callee 'opaque'"), std::string::npos)
      << notes;
  EXPECT_NE(notes.find("external 'extern_fn'"), std::string::npos) << notes;
}

TEST(Inliner, PreservedFunctionSurvivesFullInlining) {
  Parsed p(R"(
define i64 @helper(i64 %a) {
entry:
  %v = add i64 %a, 1
  ret i64 %v
}

define i64 @top(i64 %x) {
entry:
  %r = call i64 @helper(i64 %x)
  ret i64 %r
}
)");
  InlinerOptions options;
  options.preservedFunction = "helper";
  PassStats stats = p.runPass(createInlinerPass(options));
  EXPECT_EQ(stats["inline.count"], 1);
  EXPECT_EQ(stats["inline.removed"], 0);
  EXPECT_NE(p.module->getFunction("helper"), nullptr);
}

// A pure noinline helper whose result is unused: the Inliner cannot
// inline it, but marks it `readnone`, which makes the leftover call
// trivially dead for the cleanup DCE that follows in the pipeline.
TEST(Inliner, ReadnoneMarkingMakesDeadCallsCollectable) {
  Parsed p(R"(
define i64 @pure(i64 %a) #[noinline] {
entry:
  %v = mul i64 %a, 3
  ret i64 %v
}

define i64 @top(i64 %x) {
entry:
  %unused = call i64 @pure(i64 %x)
  %v = add i64 %x, 1
  ret i64 %v
}
)");
  PassStats inlineStats = p.runPass(createInlinerPass());
  // Both @pure and (transitively) @top become readnone.
  EXPECT_GE(inlineStats["inline.readnone"], 1);
  EXPECT_TRUE(p.module->getFunction("pure")->hasAttr("readnone"));
  ASSERT_NE(p.print().find("call i64 @pure"), std::string::npos);
  PassStats dceStats = p.runPass(createDCEPass());
  EXPECT_GE(dceStats["dce.removed"], 1);
  EXPECT_EQ(p.print().find("call i64 @pure"), std::string::npos) << p.print();
}

// --- Rec2Iter -----------------------------------------------------------

TEST(Rec2Iter, FactorialRewriteIsInterpEquivalent) {
  Parsed p(kFactorialModule);
  std::vector<int64_t> before;
  for (int64_t n : {0, 1, 5, 10})
    before.push_back(p.interp("fact", {n}));
  PassStats stats = p.runPass(createRec2IterPass());
  EXPECT_EQ(stats["rec2iter.rewritten"], 1);
  std::string out = p.print();
  EXPECT_EQ(out.find("call"), std::string::npos) << out;
  size_t i = 0;
  for (int64_t n : {0, 1, 5, 10})
    EXPECT_EQ(p.interp("fact", {n}), before[i++]) << "n=" << n;
  EXPECT_EQ(p.interp("fact", {10}), 3628800);
}

TEST(Rec2Iter, FibWithDepthAttributeIsInterpEquivalent) {
  Parsed p(kFibModule);
  std::vector<int64_t> before;
  for (int64_t n : {0, 1, 2, 7, 15})
    before.push_back(p.interp("fib", {n}));
  PassStats stats = p.runPass(createRec2IterPass());
  EXPECT_EQ(stats["rec2iter.rewritten"], 1);
  EXPECT_EQ(p.print().find("call"), std::string::npos);
  size_t i = 0;
  for (int64_t n : {0, 1, 2, 7, 15})
    EXPECT_EQ(p.interp("fib", {n}), before[i++]) << "n=" << n;
  EXPECT_EQ(p.interp("fib", {15}), 610);
}

TEST(Rec2Iter, MutualRecursionIsSkippedWithNote) {
  Parsed p(R"(
define i64 @even(i64 %n) {
entry:
  %cmp = icmp eq i64 %n, 0
  br i1 %cmp, label %yes, label %rec
yes:
  ret i64 1
rec:
  %n1 = sub i64 %n, 1
  %r = call i64 @odd(i64 %n1)
  ret i64 %r
}

define i64 @odd(i64 %n) {
entry:
  %cmp = icmp eq i64 %n, 0
  br i1 %cmp, label %no, label %rec
no:
  ret i64 0
rec:
  %n1 = sub i64 %n, 1
  %r = call i64 @even(i64 %n1)
  ret i64 %r
}
)");
  std::string notes;
  PassStats stats = p.runPass(createRec2IterPass(), &notes);
  EXPECT_EQ(stats["rec2iter.rewritten"], 0);
  EXPECT_GE(stats["rec2iter.skipped.mutual"], 1);
  EXPECT_NE(notes.find("mutually recursive"), std::string::npos) << notes;
}

// --- CallSitePrivatization ----------------------------------------------

TEST(CallSitePrivatization, ClonesPerDistinctBufferBinding) {
  Parsed p(R"(
define i64 @read2(i64* %buf) {
entry:
  %v = load i64, i64* %buf
  ret i64 %v
}

define i64 @top(i64* noalias %a, i64* noalias %b) {
entry:
  %x = call i64 @read2(i64* %a)
  %y = call i64 @read2(i64* %b)
  %z = call i64 @read2(i64* %a)
  %v = add i64 %x, %y
  %w = add i64 %v, %z
  ret i64 %w
}
)");
  std::string notes;
  PassStats stats = p.runPass(createCallSitePrivatizationPass(), &notes);
  // Two distinct bindings (%a, %b): the %a sites keep the original, the
  // %b site gets one clone.
  EXPECT_EQ(stats["privatize.clones"], 1);
  ASSERT_NE(p.module->getFunction("read2.priv1"), nullptr);
  std::string out = p.print();
  EXPECT_NE(out.find("call i64 @read2(i64* %a)"), std::string::npos) << out;
  EXPECT_NE(out.find("call i64 @read2.priv1(i64* %b)"), std::string::npos)
      << out;
  EXPECT_NE(notes.find("cloned 'read2' as 'read2.priv1'"),
            std::string::npos)
      << notes;
}

TEST(CallSitePrivatization, SameBindingEverywhereNeedsNoClones) {
  Parsed p(R"(
define i64 @read2(i64* %buf) {
entry:
  %v = load i64, i64* %buf
  ret i64 %v
}

define i64 @top(i64* %a) {
entry:
  %x = call i64 @read2(i64* %a)
  %y = call i64 @read2(i64* %a)
  %v = add i64 %x, %y
  ret i64 %v
}
)");
  PassStats stats = p.runPass(createCallSitePrivatizationPass());
  EXPECT_EQ(stats["privatize.clones"], 0);
  EXPECT_EQ(p.module->getFunction("read2.priv1"), nullptr);
}

// --- Full legalization pipeline ----------------------------------------

// The adaptor's call-legalization group end-to-end: recursion unrolled to
// a loop, helpers inlined, the result a single-function module that still
// computes the same values.
TEST(CallLegalization, PipelineReducesToSingleFunction) {
  Parsed p(R"(
define i64 @scale(i64 %x, i64 %k) {
entry:
  %m = mul i64 %x, %k
  %v = add i64 %m, 3
  ret i64 %v
}

define i64 @fact(i64 %n) #[mha.rec_depth=16] {
entry:
  %cmp = icmp sle i64 %n, 1
  br i1 %cmp, label %base, label %rec
base:
  ret i64 1
rec:
  %n1 = sub i64 %n, 1
  %r = call i64 @fact(i64 %n1)
  %v = mul i64 %n, %r
  ret i64 %v
}

define i64 @top(i64 %x) {
entry:
  %n = and i64 %x, 7
  %f = call i64 @fact(i64 %n)
  %s = call i64 @scale(i64 %f, i64 5)
  ret i64 %s
}
)");
  std::vector<int64_t> before;
  for (int64_t x : {0, 3, 7, 100})
    before.push_back(p.interp("top", {x}));

  PassManager pm(/*verifyEach=*/true);
  pm.add(createRec2IterPass());
  InlinerOptions io;
  io.preservedFunction = "top";
  pm.add(createInlinerPass(io));
  pm.add(createCallSitePrivatizationPass());
  pm.add(createDCEPass());
  pm.add(createSimplifyCFGPass());
  DiagnosticEngine diags;
  ASSERT_TRUE(pm.run(*p.module, diags)) << diags.str();

  EXPECT_EQ(p.module->functions().size(), 1u) << p.print();
  EXPECT_EQ(p.print().find("call"), std::string::npos) << p.print();
  size_t i = 0;
  for (int64_t x : {0, 3, 7, 100})
    EXPECT_EQ(p.interp("top", {x}), before[i++]) << "x=" << x;
}
