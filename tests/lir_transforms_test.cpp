// Tests for the MiniLLVM scalar transforms and the loop-unroll utility.
#include "lir/Function.h"
#include "lir/LContext.h"
#include "lir/Parser.h"
#include "lir/Printer.h"
#include "lir/Verifier.h"
#include "lir/analysis/Dominators.h"
#include "lir/analysis/LoopInfo.h"
#include "lir/transforms/LoopUnroll.h"
#include "lir/transforms/Transforms.h"

#include <gtest/gtest.h>

using namespace mha;
using namespace mha::lir;

namespace {

struct Parsed {
  LContext ctx;
  std::unique_ptr<Module> module;

  explicit Parsed(const std::string &text) {
    DiagnosticEngine diags;
    module = parseModule(text, ctx, diags);
    EXPECT_NE(module, nullptr) << diags.str();
  }

  Function *fn() { return module->functions().front(); }

  PassStats runPass(std::unique_ptr<ModulePass> pass) {
    PassManager pm(/*verifyEach=*/true);
    pm.add(std::move(pass));
    DiagnosticEngine diags;
    EXPECT_TRUE(pm.run(*module, diags)) << diags.str();
    return pm.totalStats();
  }

  std::string print() { return printModule(*module); }
};

} // namespace

TEST(Mem2Reg, PromotesScalarAlloca) {
  Parsed p(R"(
define void @f(i64 %x) {
entry:
  %slot = alloca i64
  store i64 %x, i64* %slot
  %v = load i64, i64* %slot
  %r = add i64 %v, 1
  ret void
}
)");
  PassStats stats = p.runPass(createMem2RegPass());
  EXPECT_EQ(stats["mem2reg.promoted"], 1);
  std::string out = p.print();
  EXPECT_EQ(out.find("alloca"), std::string::npos);
  EXPECT_EQ(out.find("load"), std::string::npos);
  EXPECT_NE(out.find("add i64 %x, 1"), std::string::npos);
}

TEST(Mem2Reg, InsertsPhiAtJoin) {
  Parsed p(R"(
define void @f(i1 %c) {
entry:
  %slot = alloca i64
  store i64 1, i64* %slot
  br i1 %c, label %then, label %join
then:
  store i64 2, i64* %slot
  br label %join
join:
  %v = load i64, i64* %slot
  %r = add i64 %v, 1
  ret void
}
)");
  p.runPass(createMem2RegPass());
  std::string out = p.print();
  EXPECT_NE(out.find("phi i64"), std::string::npos);
  EXPECT_EQ(out.find("alloca"), std::string::npos);
}

TEST(Mem2Reg, PromotesLoopCounter) {
  // The HLS C++ frontend shape: iv as alloca in a loop.
  Parsed p(R"(
define void @f() {
entry:
  %iv.addr = alloca i64
  store i64 0, i64* %iv.addr
  br label %header
header:
  %iv = load i64, i64* %iv.addr
  %cmp = icmp slt i64 %iv, 8
  br i1 %cmp, label %body, label %exit
body:
  %iv2 = load i64, i64* %iv.addr
  %next = add i64 %iv2, 1
  store i64 %next, i64* %iv.addr
  br label %header
exit:
  ret void
}
)");
  p.runPass(createMem2RegPass());
  std::string out = p.print();
  EXPECT_EQ(out.find("alloca"), std::string::npos);
  EXPECT_NE(out.find("phi i64"), std::string::npos);
}

TEST(Mem2Reg, SkipsEscapedAlloca) {
  Parsed p(R"(
declare void @sink(i64*)

define void @f() {
entry:
  %slot = alloca i64
  call void @sink(i64* %slot)
  ret void
}
)");
  PassStats stats = p.runPass(createMem2RegPass());
  EXPECT_EQ(stats["mem2reg.promoted"], 0);
  EXPECT_NE(p.print().find("alloca"), std::string::npos);
}

TEST(SimplifyCFG, RemovesUnreachableBlocks) {
  Parsed p(R"(
define void @f() {
entry:
  ret void
dead:
  %x = add i64 1, 2
  br label %dead2
dead2:
  br label %dead
}
)");
  PassStats stats = p.runPass(createSimplifyCFGPass());
  EXPECT_EQ(stats["simplifycfg.unreachable-removed"], 2);
  EXPECT_EQ(p.fn()->numBlocks(), 1u);
}

TEST(SimplifyCFG, FoldsConstantBranch) {
  Parsed p(R"(
define void @f() {
entry:
  br i1 1, label %taken, label %nottaken
taken:
  ret void
nottaken:
  ret void
}
)");
  PassStats stats = p.runPass(createSimplifyCFGPass());
  EXPECT_GE(stats["simplifycfg.condbr-folded"], 1);
  EXPECT_EQ(p.fn()->numBlocks(), 1u);
}

TEST(SimplifyCFG, MergesChainsAndKeepsMetadata) {
  Parsed p(R"(
define void @f() {
entry:
  br label %next, !xlx.pipeline !{i64 1}
next:
  %x = add i64 1, 2
  ret void
}
)");
  p.runPass(createSimplifyCFGPass());
  EXPECT_EQ(p.fn()->numBlocks(), 1u);
  // The directive must survive on the new terminator.
  EXPECT_NE(p.print().find("xlx.pipeline"), std::string::npos);
}

TEST(DCE, RemovesDeadChain) {
  Parsed p(R"(
define void @f(i64 %x) {
entry:
  %a = add i64 %x, 1
  %b = mul i64 %a, 2
  %c = add i64 %b, 3
  ret void
}
)");
  PassStats stats = p.runPass(createDCEPass());
  EXPECT_EQ(stats["dce.removed"], 3);
  EXPECT_EQ(p.fn()->entry()->size(), 1u); // just the ret
}

TEST(DCE, KeepsSideEffects) {
  Parsed p(R"(
define void @f(i64* %p) {
entry:
  store i64 1, i64* %p
  %v = load i64, i64* %p
  ret void
}
)");
  PassStats stats = p.runPass(createDCEPass());
  EXPECT_EQ(stats["dce.removed"], 1); // only the unused load
  EXPECT_NE(p.print().find("store"), std::string::npos);
}

TEST(InstCombine, ConstantFolding) {
  Parsed p(R"(
define void @f(i64* %p) {
entry:
  %a = add i64 2, 3
  %b = mul i64 %a, 4
  %c = icmp slt i64 %b, 100
  %d = select i1 %c, i64 %b, i64 0
  store i64 %d, i64* %p
  ret void
}
)");
  p.runPass(createInstCombinePass());
  p.runPass(createDCEPass());
  EXPECT_NE(p.print().find("store i64 20"), std::string::npos) << p.print();
}

TEST(InstCombine, Identities) {
  Parsed p(R"(
define void @f(i64 %x, i64* %p) {
entry:
  %a = add i64 %x, 0
  %b = mul i64 %a, 1
  %c = sub i64 %b, 0
  store i64 %c, i64* %p
  ret void
}
)");
  p.runPass(createInstCombinePass());
  p.runPass(createDCEPass());
  EXPECT_NE(p.print().find("store i64 %x"), std::string::npos) << p.print();
}

TEST(InstCombine, MulByZero) {
  Parsed p(R"(
define void @f(i64 %x, i64* %p) {
entry:
  %a = mul i64 %x, 0
  store i64 %a, i64* %p
  ret void
}
)");
  p.runPass(createInstCombinePass());
  EXPECT_NE(p.print().find("store i64 0"), std::string::npos);
}

TEST(InstCombine, NoFPFastMath) {
  // x + 0.0 must NOT fold (signed-zero semantics).
  Parsed p(R"(
define void @f(double %x, double* %p) {
entry:
  %a = fadd double %x, 0.0
  store double %a, double* %p
  ret void
}
)");
  p.runPass(createInstCombinePass());
  EXPECT_NE(p.print().find("fadd"), std::string::npos);
}

TEST(CSE, EliminatesRedundantExpressions) {
  Parsed p(R"(
define void @f(i64 %x, i64* %p) {
entry:
  %a = add i64 %x, 5
  %b = add i64 %x, 5
  %sum = add i64 %a, %b
  store i64 %sum, i64* %p
  ret void
}
)");
  PassStats stats = p.runPass(createCSEPass());
  EXPECT_EQ(stats["cse.eliminated"], 1);
}

TEST(CSE, CommutativeOperandsUnify) {
  Parsed p(R"(
define void @f(i64 %x, i64 %y, i64* %p) {
entry:
  %a = add i64 %x, %y
  %b = add i64 %y, %x
  %sum = add i64 %a, %b
  store i64 %sum, i64* %p
  ret void
}
)");
  PassStats stats = p.runPass(createCSEPass());
  EXPECT_EQ(stats["cse.eliminated"], 1);
}

TEST(CSE, DoesNotCrossDominanceScopes) {
  Parsed p(R"(
define void @f(i1 %c, i64 %x, i64* %p) {
entry:
  br i1 %c, label %a, label %b
a:
  %e1 = add i64 %x, 7
  store i64 %e1, i64* %p
  ret void
b:
  %e2 = add i64 %x, 7
  store i64 %e2, i64* %p
  ret void
}
)");
  PassStats stats = p.runPass(createCSEPass());
  // Sibling blocks do not dominate each other: nothing to eliminate.
  EXPECT_EQ(stats["cse.eliminated"], 0);
}

TEST(CSE, DoesNotTouchLoads) {
  Parsed p(R"(
define void @f(i64* %p) {
entry:
  %a = load i64, i64* %p
  store i64 0, i64* %p
  %b = load i64, i64* %p
  %sum = add i64 %a, %b
  store i64 %sum, i64* %p
  ret void
}
)");
  PassStats stats = p.runPass(createCSEPass());
  EXPECT_EQ(stats["cse.eliminated"], 0);
}

namespace {

const std::string kUnrollableLoop = R"(
define void @f([32 x double]* %p) {
entry:
  br label %header
header:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %cmp = icmp slt i64 %iv, 32
  br i1 %cmp, label %body, label %exit
body:
  %addr = getelementptr [32 x double], [32 x double]* %p, i64 0, i64 %iv
  %v = load double, double* %addr
  %d = fadd double %v, 1.0
  store double %d, double* %addr
  %next = add i64 %iv, 1
  br label %header
exit:
  ret void
}
)";

} // namespace

TEST(LoopUnroll, ClampFactor) {
  EXPECT_EQ(clampUnrollFactor(32, 4), 4);
  EXPECT_EQ(clampUnrollFactor(32, 5), 4); // largest divisor <= 5
  EXPECT_EQ(clampUnrollFactor(32, 100), 32);
  EXPECT_EQ(clampUnrollFactor(7, 3), 1);
  EXPECT_EQ(clampUnrollFactor(12, 6), 6);
  EXPECT_EQ(clampUnrollFactor(12, 5), 4);
  EXPECT_EQ(clampUnrollFactor(1, 8), 1);
}

TEST(LoopUnroll, ClampFactorEdgeCases) {
  // A requested factor <= 1 or a degenerate/unknown trip count never
  // unrolls.
  EXPECT_EQ(clampUnrollFactor(32, 1), 1);
  EXPECT_EQ(clampUnrollFactor(32, 0), 1);
  EXPECT_EQ(clampUnrollFactor(32, -8), 1);
  EXPECT_EQ(clampUnrollFactor(0, 8), 1);
  EXPECT_EQ(clampUnrollFactor(-16, 8), 1);
  // Requests at or beyond the trip count fully unroll.
  EXPECT_EQ(clampUnrollFactor(6, 6), 6);
  EXPECT_EQ(clampUnrollFactor(6, 100), 6);
  // A prime trip count only admits 1 and itself.
  EXPECT_EQ(clampUnrollFactor(13, 12), 1);
  EXPECT_EQ(clampUnrollFactor(13, 13), 13);
}

TEST(LoopUnroll, FactorOfOneOrLessIsNoOp) {
  Parsed p(kUnrollableLoop);
  DominatorTree domTree(*p.fn());
  LoopInfo loopInfo(*p.fn(), domTree);
  auto canonical = matchCanonicalLoop(loopInfo.loops().front().get());
  ASSERT_TRUE(canonical.has_value());
  // "Nothing to do" is success, and the loop is untouched.
  EXPECT_TRUE(unrollLoopByFactor(*canonical, 1));
  EXPECT_TRUE(unrollLoopByFactor(*canonical, 0));
  EXPECT_TRUE(unrollLoopByFactor(*canonical, -4));
  EXPECT_EQ(canonical->step, 1);
  EXPECT_EQ(*canonical->tripCount, 32);
  DiagnosticEngine diags;
  EXPECT_TRUE(verifyModule(*p.module, diags)) << diags.str();
}

TEST(LoopUnroll, RejectsFactorAboveTripCount) {
  Parsed p(kUnrollableLoop);
  DominatorTree domTree(*p.fn());
  LoopInfo loopInfo(*p.fn(), domTree);
  auto canonical = matchCanonicalLoop(loopInfo.loops().front().get());
  ASSERT_TRUE(canonical.has_value());
  EXPECT_FALSE(unrollLoopByFactor(*canonical, 64)); // trip is 32
  EXPECT_EQ(canonical->step, 1);
}

TEST(LoopUnroll, UnrollByFour) {
  Parsed p(kUnrollableLoop);
  DominatorTree domTree(*p.fn());
  LoopInfo loopInfo(*p.fn(), domTree);
  auto canonical = matchCanonicalLoop(loopInfo.loops().front().get());
  ASSERT_TRUE(canonical.has_value());
  ASSERT_TRUE(unrollLoopByFactor(*canonical, 4));

  DiagnosticEngine diags;
  EXPECT_TRUE(verifyModule(*p.module, diags)) << diags.str();
  // Step widened to 4, trip now 8.
  EXPECT_EQ(canonical->step, 4);
  EXPECT_EQ(*canonical->tripCount, 8);
  // Body now holds 4 loads.
  int loads = 0;
  for (auto &inst : *canonical->loop->latch())
    if (inst->opcode() == Opcode::Load)
      ++loads;
  EXPECT_EQ(loads, 4);
}

TEST(LoopUnroll, RejectsNonDividingFactor) {
  Parsed p(kUnrollableLoop);
  DominatorTree domTree(*p.fn());
  LoopInfo loopInfo(*p.fn(), domTree);
  auto canonical = matchCanonicalLoop(loopInfo.loops().front().get());
  ASSERT_TRUE(canonical.has_value());
  EXPECT_FALSE(unrollLoopByFactor(*canonical, 5));
}

TEST(LoopUnroll, FullUnrollKeepsStructure) {
  Parsed p(kUnrollableLoop);
  DominatorTree domTree(*p.fn());
  LoopInfo loopInfo(*p.fn(), domTree);
  auto canonical = matchCanonicalLoop(loopInfo.loops().front().get());
  ASSERT_TRUE(canonical.has_value());
  ASSERT_TRUE(unrollLoopByFactor(*canonical, 32));
  EXPECT_EQ(*canonical->tripCount, 1);
  DiagnosticEngine diags;
  EXPECT_TRUE(verifyModule(*p.module, diags)) << diags.str();
}

TEST(LICM, HoistsInvariantArithmetic) {
  Parsed p(R"(
define void @f([32 x double]* %p, i64 %n) {
entry:
  br label %header
header:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %cmp = icmp slt i64 %iv, 32
  br i1 %cmp, label %body, label %exit
body:
  %inv = mul i64 %n, 8
  %addr = getelementptr [32 x double], [32 x double]* %p, i64 0, i64 %iv
  %v = load double, double* %addr
  store double %v, double* %addr
  %next = add i64 %iv, 1
  br label %header
exit:
  ret void
}
)");
  PassStats stats = p.runPass(createLICMPass());
  EXPECT_EQ(stats["licm.hoisted"], 1);
  // %inv moved to the preheader (entry).
  bool foundInEntry = false;
  for (auto &inst : *p.fn()->entry())
    if (inst->opcode() == Opcode::Mul)
      foundInEntry = true;
  EXPECT_TRUE(foundInEntry);
  DiagnosticEngine diags;
  EXPECT_TRUE(verifyModule(*p.module, diags)) << diags.str();
}

TEST(LICM, LeavesVariantAndMemoryAlone) {
  Parsed p(R"(
define void @f([32 x double]* %p) {
entry:
  br label %header
header:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %cmp = icmp slt i64 %iv, 32
  br i1 %cmp, label %body, label %exit
body:
  %scaled = mul i64 %iv, 8
  %addr = getelementptr [32 x double], [32 x double]* %p, i64 0, i64 %iv
  %v = load double, double* %addr
  store double %v, double* %addr
  %next = add i64 %iv, 1
  br label %header
exit:
  ret void
}
)");
  PassStats stats = p.runPass(createLICMPass());
  EXPECT_EQ(stats["licm.hoisted"], 0);
}

TEST(LICM, NeverSpeculatesDivision) {
  Parsed p(R"(
define void @f([32 x double]* %p, i64 %n, i64 %d) {
entry:
  br label %header
header:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %cmp = icmp slt i64 %iv, 0
  br i1 %cmp, label %body, label %exit
body:
  %q = sdiv i64 %n, %d
  %addr = getelementptr [32 x double], [32 x double]* %p, i64 0, i64 %q
  %v = load double, double* %addr
  store double %v, double* %addr
  %next = add i64 %iv, 1
  br label %header
exit:
  ret void
}
)");
  PassStats stats = p.runPass(createLICMPass());
  EXPECT_EQ(stats["licm.hoisted"], 0);
}

TEST(LICM, HoistsOutOfNestTransitively) {
  Parsed p(R"(
define void @f([8 x double]* %p, i64 %n) {
entry:
  br label %outer
outer:
  %i = phi i64 [ 0, %entry ], [ %i.next, %outer.latch ]
  %ocmp = icmp slt i64 %i, 8
  br i1 %ocmp, label %inner.pre, label %exit
inner.pre:
  br label %inner
inner:
  %j = phi i64 [ 0, %inner.pre ], [ %j.next, %inner ]
  %inv = mul i64 %n, 3
  %addr = getelementptr [8 x double], [8 x double]* %p, i64 0, i64 %j
  %v = load double, double* %addr
  store double %v, double* %addr
  %j.next = add i64 %j, 1
  %icmp2 = icmp slt i64 %j.next, 8
  br i1 %icmp2, label %inner, label %outer.latch
outer.latch:
  %i.next = add i64 %i, 1
  br label %outer
exit:
  ret void
}
)");
  PassStats stats = p.runPass(createLICMPass());
  EXPECT_GE(stats["licm.hoisted"], 1);
  // The invariant mul ends up all the way in the function entry.
  bool foundInEntry = false;
  for (auto &inst : *p.fn()->entry())
    if (inst->opcode() == Opcode::Mul)
      foundInEntry = true;
  EXPECT_TRUE(foundInEntry) << p.print();
}
