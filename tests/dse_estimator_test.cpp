// Accuracy harness for the analytical QoR estimator: every kernel from
// the table1/table2 experiments, swept over a small directive grid, with
// every point both estimated and synthesized. Three properties hold the
// estimator to its contract:
//
//  * predicted latency stays within the stated error bound (10%; the
//    measured worst case across all kernels on this grid is 4.8%);
//  * the estimator preserves synthesis's ranking of clearly-separated
//    dominated/dominating pairs;
//  * the refine slack rule (15%) promotes every true-frontier point —
//    the containment guarantee the refine strategy is built on.
//
// The per-kernel sweep (synthesis included) is computed once and shared
// across the tests.
#include "dse/Dse.h"
#include "dse/QoREstimation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

using namespace mha;
using namespace mha::dse;

namespace {

/// The calibration grid: II in {0,1,2}, unroll in {1,2,4}, partition in
/// {1,2,4} — the grid the estimator's error bound was measured on.
DesignSpaceOptions calibrationGrid() {
  DesignSpaceOptions options;
  options.pipelineIIs = {0, 1, 2};
  options.unrollFactors = {1, 2, 4};
  options.partitionFactors = {1, 2, 4};
  return options;
}

struct Sweep {
  std::vector<flow::KernelConfig> points;
  std::vector<QoR> estimated;
  std::vector<QoR> synthesized;
};

const Sweep &sweep(const std::string &kernelName) {
  static std::map<std::string, Sweep> cache;
  auto it = cache.find(kernelName);
  if (it != cache.end())
    return it->second;
  const flow::KernelSpec *spec = flow::findKernel(kernelName);
  EXPECT_NE(spec, nullptr) << kernelName;
  DesignSpace space(*spec, calibrationGrid());
  Evaluator evaluator(*spec);
  Sweep result;
  result.points = space.points();
  result.estimated = evaluator.estimateAll(result.points);
  result.synthesized = evaluator.evaluateAll(result.points);
  return cache.emplace(kernelName, std::move(result)).first->second;
}

double latencyErrorPct(const QoR &estimated, const QoR &synthesized) {
  return 100.0 *
         std::abs(double(estimated.latencyCycles) -
                  double(synthesized.latencyCycles)) /
         double(synthesized.latencyCycles);
}

std::vector<std::string> allKernelNames() {
  std::vector<std::string> names;
  for (const flow::KernelSpec &spec : flow::allKernels())
    names.push_back(spec.name);
  return names;
}

} // namespace

TEST(QoREstimator, LatencyWithinStatedBound) {
  constexpr double kBoundPct = 10.0;
  for (const std::string &name : allKernelNames()) {
    const Sweep &s = sweep(name);
    ASSERT_FALSE(s.points.empty()) << name;
    for (size_t i = 0; i < s.points.size(); ++i) {
      ASSERT_TRUE(s.synthesized[i].ok)
          << name << " " << configKey(s.points[i]);
      ASSERT_TRUE(s.estimated[i].ok) << name << " " << configKey(s.points[i]);
      EXPECT_LE(latencyErrorPct(s.estimated[i], s.synthesized[i]), kBoundPct)
          << name << " " << configKey(s.points[i]) << ": estimated "
          << s.estimated[i].latencyCycles << " vs synthesized "
          << s.synthesized[i].latencyCycles;
    }
  }
}

TEST(QoREstimator, BaselineAndProbePointsAreExact) {
  // The estimator anchors on two real synthesis runs; re-estimating those
  // exact configs must reproduce them bit-for-bit.
  for (const std::string &name : allKernelNames()) {
    const flow::KernelSpec *spec = flow::findKernel(name);
    std::string error;
    std::unique_ptr<QoREstimation> model =
        QoREstimation::build(*spec, {}, &error);
    ASSERT_NE(model, nullptr) << name << ": " << error;
    for (const auto &[config, expected] :
         {std::pair(model->baselineProbeConfig(), model->baselineProbeQoR()),
          std::pair(model->pipelinedProbeConfig(),
                    model->pipelinedProbeQoR())}) {
      QoR estimated = model->estimate(config);
      EXPECT_EQ(estimated.latencyCycles, expected.latencyCycles) << name;
      EXPECT_EQ(estimated.dsp, expected.dsp) << name;
      EXPECT_EQ(estimated.bram, expected.bram) << name;
      EXPECT_EQ(estimated.lut, expected.lut) << name;
      EXPECT_EQ(estimated.ff, expected.ff) << name;
    }
  }
}

TEST(QoREstimator, PreservesDominanceOrderOfSeparatedPairs) {
  // When synthesis says one design dominates another with a clear latency
  // gap (>= 25%, well beyond the error bound), the estimator must agree
  // on the latency ordering.
  ParetoArchive archive; // for the dominance predicate
  for (const std::string &name : allKernelNames()) {
    const Sweep &s = sweep(name);
    for (size_t i = 0; i < s.points.size(); ++i) {
      for (size_t j = 0; j < s.points.size(); ++j) {
        if (i == j || !s.synthesized[i].ok || !s.synthesized[j].ok)
          continue;
        if (!archive.dominates(s.synthesized[i], s.synthesized[j]))
          continue;
        if (double(s.synthesized[i].latencyCycles) >
            0.75 * double(s.synthesized[j].latencyCycles))
          continue;
        EXPECT_LT(s.estimated[i].latencyCycles, s.estimated[j].latencyCycles)
            << name << ": " << configKey(s.points[i]) << " dominates "
            << configKey(s.points[j]) << " in synthesis but not in estimate";
      }
    }
  }
}

TEST(QoREstimator, SlackRulePromotesEveryTrueFrontierPoint) {
  // The refine strategy only synthesizes points the 15% slack rule keeps;
  // this is the containment guarantee: no point of the synthesized
  // frontier may be pruned based on estimates.
  const double slack = 0.15;
  for (const std::string &name : allKernelNames()) {
    const Sweep &s = sweep(name);
    ParetoArchive realArchive, estArchive;
    for (size_t i = 0; i < s.points.size(); ++i) {
      realArchive.insert(s.points[i], s.synthesized[i]);
      estArchive.insert(s.points[i], s.estimated[i]);
    }
    for (const ArchiveEntry &entry : realArchive.entries()) {
      size_t idx = 0;
      while (idx < s.points.size() && configKey(s.points[idx]) != entry.key)
        ++idx;
      ASSERT_LT(idx, s.points.size()) << name;
      bool promoted = true;
      for (const ArchiveEntry &q : estArchive.entries()) {
        if (q.key == entry.key)
          continue;
        if (estArchive.dominates(q.qor, s.estimated[idx]) &&
            double(q.qor.latencyCycles) <=
                double(s.estimated[idx].latencyCycles) * (1.0 - slack))
          promoted = false;
      }
      EXPECT_TRUE(promoted)
          << name << ": true-frontier point " << entry.key
          << " would be pruned by the slack rule";
    }
  }
}

TEST(QoREstimator, EstimateIsDeterministic) {
  const flow::KernelSpec *spec = flow::findKernel("gemm");
  ASSERT_NE(spec, nullptr);
  std::unique_ptr<QoREstimation> model = QoREstimation::build(*spec, {});
  ASSERT_NE(model, nullptr);
  flow::KernelConfig config;
  config.pipelineII = 2;
  config.unrollFactor = 2;
  config.partitionFactor = 4;
  QoR first = model->estimate(config);
  QoR second = model->estimate(config);
  EXPECT_EQ(first.latencyCycles, second.latencyCycles);
  EXPECT_EQ(first.dsp, second.dsp);
  EXPECT_EQ(first.lut, second.lut);
}
