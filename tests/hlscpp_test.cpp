// Tests for the baseline flow pieces: the HLS C++ emitter and the C-subset
// HLS frontend.
#include "flow/Kernels.h"
#include "hlscpp/Emitter.h"
#include "lir/LContext.h"
#include "hlscpp/Frontend.h"
#include "interp/Interp.h"
#include "lir/HlsCompat.h"
#include "lir/Printer.h"
#include "lir/Verifier.h"
#include "lir/analysis/Dominators.h"
#include "lir/analysis/LoopInfo.h"
#include "mir/Builder.h"
#include "mir/Pass.h"
#include "mir/transforms/MirTransforms.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

using namespace mha;

namespace {

std::string emitKernel(const std::string &name,
                       const flow::KernelConfig &config) {
  const flow::KernelSpec *spec = flow::findKernel(name);
  mir::MContext mctx;
  DiagnosticEngine diags;
  mir::OwnedModule module = spec->build(mctx, config);
  std::string code = hlscpp::emitHlsCpp(module.get(), diags);
  EXPECT_FALSE(code.empty()) << diags.str();
  return code;
}

} // namespace

TEST(HlsCppEmitter, GemmShape) {
  flow::KernelConfig config;
  config.pipelineII = 1;
  config.unrollFactor = 4;
  config.partitionFactor = 2;
  std::string code = emitKernel("gemm", config);
  EXPECT_NE(code.find("void gemm(double a0[32][32]"), std::string::npos);
  EXPECT_NE(code.find("#pragma HLS pipeline II=1"), std::string::npos);
  EXPECT_NE(code.find("#pragma HLS unroll factor=4"), std::string::npos);
  EXPECT_NE(code.find("#pragma HLS array_partition"), std::string::npos);
  // Vitis pragmas use 1-based dims.
  EXPECT_NE(code.find("dim=2"), std::string::npos);
  // Three nested loops.
  EXPECT_NE(code.find("for (int i0 = 0; i0 < 32; i0 += 1)"),
            std::string::npos);
}

TEST(HlsCppEmitter, NoDirectivesWhenDisabled) {
  flow::KernelConfig config;
  config.applyDirectives = false;
  config.pipelineII = 1;
  config.partitionFactor = 4;
  std::string code = emitKernel("gemm", config);
  EXPECT_EQ(code.find("#pragma"), std::string::npos);
}

TEST(HlsCppEmitter, LocalArrayFor2mm) {
  std::string code = emitKernel("mm2", {});
  // The tmp buffer becomes a local C array.
  EXPECT_NE(code.find("[32][32];"), std::string::npos);
}

TEST(HlsCppEmitter, AllKernelsEmit) {
  for (const flow::KernelSpec &spec : flow::allKernels()) {
    std::string code = emitKernel(spec.name, {});
    EXPECT_NE(code.find("void " + spec.name + "("), std::string::npos)
        << spec.name;
  }
}

TEST(HlsFrontend, ParsesSimpleFunction) {
  lir::LContext ctx;
  DiagnosticEngine diags;
  auto module = hlscpp::parseHlsCpp(R"(
void scale(double a[16], double f) {
  for (int i = 0; i < 16; i += 1) {
    #pragma HLS pipeline II=1
    double v = a[i];
    a[i] = v * f;
  }
}
)",
                                    ctx, diags);
  ASSERT_NE(module, nullptr) << diags.str();
  DiagnosticEngine verifyDiags;
  EXPECT_TRUE(lir::verifyModule(*module, verifyDiags)) << verifyDiags.str();

  lir::Function *fn = module->getFunction("scale");
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn->numArgs(), 2u);
  // Array parameter decays to a typed array pointer.
  auto *pt = dyn_cast<lir::PointerType>(fn->arg(0)->type());
  ASSERT_NE(pt, nullptr);
  EXPECT_FALSE(pt->isOpaque());
  EXPECT_TRUE(pt->pointee()->isArray());

  // The pipeline pragma landed as xlx metadata, O2-lite promoted locals.
  std::string out = lir::printModule(*module);
  EXPECT_NE(out.find("xlx.pipeline"), std::string::npos);
  EXPECT_NE(out.find("xlx.tripcount !{i64 16}"), std::string::npos);
  EXPECT_EQ(out.find("alloca"), std::string::npos) << out;
}

TEST(HlsFrontend, ProducesAcceptedIR) {
  lir::LContext ctx;
  DiagnosticEngine diags;
  auto module = hlscpp::parseHlsCpp(R"(
void k(double a[8][8]) {
#pragma HLS array_partition variable=a cyclic factor=2 dim=2
  for (int i = 0; i < 8; i += 1) {
    for (int j = 0; j < 8; j += 1) {
      #pragma HLS pipeline II=1
      a[i][j] = a[i][j] + 1.0;
    }
  }
}
)",
                                    ctx, diags);
  ASSERT_NE(module, nullptr) << diags.str();
  DiagnosticEngine compatDiags;
  lir::HlsCompatReport report =
      lir::checkHlsCompatibility(*module, compatDiags);
  EXPECT_TRUE(report.accepted) << compatDiags.str();
  EXPECT_EQ(report.warnings, 0) << compatDiags.str();
  // Partition metadata on the argument.
  lir::Function *fn = module->getFunction("k");
  EXPECT_NE(fn->arg(0)->getMetadata("xlx.array_partition"), nullptr);
}

TEST(HlsFrontend, CanonicalLoopShapeAfterO2) {
  lir::LContext ctx;
  DiagnosticEngine diags;
  auto module = hlscpp::parseHlsCpp(R"(
void k(double a[32]) {
  for (int i = 0; i < 32; i += 1) {
    a[i] = a[i] * 2.0;
  }
}
)",
                                    ctx, diags);
  ASSERT_NE(module, nullptr) << diags.str();
  lir::Function *fn = module->getFunction("k");
  lir::DominatorTree domTree(*fn);
  lir::LoopInfo loopInfo(*fn, domTree);
  ASSERT_EQ(loopInfo.loops().size(), 1u);
  auto canonical = lir::matchCanonicalLoop(loopInfo.loops().front().get());
  ASSERT_TRUE(canonical.has_value()) << lir::printModule(*fn->parentModule());
  EXPECT_EQ(*canonical->tripCount, 32);
  // Pipelinable shape: header + single body/latch block.
  EXPECT_EQ(canonical->loop->blocks().size(), 2u);
}

TEST(HlsFrontend, ScalarParamsAndCasts) {
  lir::LContext ctx;
  DiagnosticEngine diags;
  auto module = hlscpp::parseHlsCpp(R"(
void k(double a[4], int n) {
  double s = (double)n;
  a[0] = s + 0.5;
}
)",
                                    ctx, diags);
  ASSERT_NE(module, nullptr) << diags.str();
  std::string out = lir::printModule(*module);
  EXPECT_NE(out.find("sitofp"), std::string::npos);
}

TEST(HlsFrontend, MathCallsMapToHlsCores) {
  lir::LContext ctx;
  DiagnosticEngine diags;
  auto module = hlscpp::parseHlsCpp(R"(
void k(double a[4]) {
  a[0] = sqrt(a[1]);
  a[2] = fabs(a[3]);
}
)",
                                    ctx, diags);
  ASSERT_NE(module, nullptr) << diags.str();
  std::string out = lir::printModule(*module);
  EXPECT_NE(out.find("call double @hls_sqrt"), std::string::npos);
  EXPECT_NE(out.find("call double @hls_fabs"), std::string::npos);
}

TEST(HlsFrontend, TernaryExpression) {
  lir::LContext ctx;
  DiagnosticEngine diags;
  auto module = hlscpp::parseHlsCpp(R"(
void k(double a[4]) {
  double x = a[0];
  a[1] = x > 0.0 ? x : -x;
}
)",
                                    ctx, diags);
  ASSERT_NE(module, nullptr) << diags.str();
  std::string out = lir::printModule(*module);
  EXPECT_NE(out.find("select"), std::string::npos);
  EXPECT_NE(out.find("fcmp ogt"), std::string::npos);
}

TEST(HlsFrontend, RejectsUnknownVariable) {
  lir::LContext ctx;
  DiagnosticEngine diags;
  auto module = hlscpp::parseHlsCpp("void k(double a[4]) { a[0] = bogus; }",
                                    ctx, diags);
  EXPECT_EQ(module, nullptr);
  EXPECT_NE(diags.str().find("unknown variable"), std::string::npos);
}

TEST(HlsFrontend, RejectsUnsupportedCall) {
  lir::LContext ctx;
  DiagnosticEngine diags;
  auto module = hlscpp::parseHlsCpp(
      "void k(double a[4]) { a[0] = launch_rockets(a[1]); }", ctx, diags);
  EXPECT_EQ(module, nullptr);
}

TEST(HlsRoundTrip, EmittedGemmComputesCorrectly) {
  // MLIR -> C++ -> frontend -> interp must equal the host reference.
  const flow::KernelSpec *spec = flow::findKernel("gemm");
  std::string code = emitKernel("gemm", {});
  lir::LContext ctx;
  DiagnosticEngine diags;
  auto module = hlscpp::parseHlsCpp(code, ctx, diags);
  ASSERT_NE(module, nullptr) << diags.str() << code;

  flow::Buffers device = flow::makeBuffers(*spec);
  flow::seedBuffers(device);
  flow::Buffers host = device;
  spec->reference(host);

  std::vector<void *> pointers;
  for (auto &buffer : device)
    pointers.push_back(buffer.data());
  interp::Interpreter interp(*module);
  DiagnosticEngine runDiags;
  auto result = interp.run(module->getFunction("gemm"),
                           interp::pointerArgs(pointers), runDiags);
  ASSERT_TRUE(result.has_value()) << runDiags.str();
  for (unsigned out : spec->outputs)
    for (size_t i = 0; i < device[out].size(); ++i)
      ASSERT_EQ(device[out][i], host[out][i]) << "element " << i;
}

// Regression: the emitter used to print every integer as C "int", so a
// 64-bit constant silently truncated to 32 bits when the C++ was parsed
// back (or fed to a real HLS compiler).
TEST(HlsCppEmitter, WideIntegerValuesEmitAsInt64) {
  mir::MContext mctx;
  mir::OpBuilder b(mctx);
  mir::OwnedModule module = mir::OpBuilder::createModule();
  b.setInsertPoint(module.get().body());
  mir::FuncOp fn = b.createFunc(
      "wide", mctx.fnTy({mctx.memrefTy({2}, mctx.f64())}, {}));
  b.setInsertPoint(fn.entryBlock());
  mir::ForOp loop = b.affineFor(0, 2);
  b.setInsertPointToLoopBody(loop);
  mir::Value *iv = b.indexCast(loop.inductionVar(), mctx.i64());
  mir::Value *big = b.constantInt(INT64_MAX, mctx.i64());
  mir::Value *sum = b.binary(mir::ops::AddI, iv, big);
  b.affineStore(b.sitofp(sum, mctx.f64()), fn.arg(0),
                mir::AffineMap::identity(mctx, 1),
                {loop.inductionVar()});
  b.setInsertPoint(fn.entryBlock());
  b.createReturn();

  DiagnosticEngine diags;
  std::string code = hlscpp::emitHlsCpp(module.get(), diags);
  ASSERT_FALSE(code.empty()) << diags.str();
  EXPECT_NE(code.find("int64_t"), std::string::npos) << code;
  EXPECT_NE(code.find("9223372036854775807"), std::string::npos) << code;
  EXPECT_NE(code.find("#include <stdint.h>"), std::string::npos) << code;

  // And the frontend must round-trip it at full width: at i0 = 1 the sum
  // wraps to INT64_MIN; a 32-bit pipeline would produce 0 instead.
  lir::LContext ctx;
  auto parsed = hlscpp::parseHlsCpp(code, ctx, diags);
  ASSERT_NE(parsed, nullptr) << diags.str() << code;
  double out[2] = {0, 0};
  std::vector<void *> pointers = {out};
  interp::Interpreter interp(*parsed);
  DiagnosticEngine runDiags;
  auto result = interp.run(parsed->getFunction("wide"),
                           interp::pointerArgs(pointers), runDiags);
  ASSERT_TRUE(result.has_value()) << runDiags.str();
  EXPECT_EQ(out[0], static_cast<double>(INT64_MAX));
  EXPECT_EQ(out[1], static_cast<double>(INT64_MIN));
}

// Regression: a decimal literal outside int range kept type int (C rule:
// it is long long), folding e.g. INT64_MAX to -1.
TEST(HlsFrontend, WideLiteralKeepsSixtyFourBits) {
  lir::LContext ctx;
  DiagnosticEngine diags;
  auto module = hlscpp::parseHlsCpp(R"(
void k(double a[1]) {
  int64_t v = 9223372036854775807;
  a[0] = (double)v;
}
)",
                                    ctx, diags);
  ASSERT_NE(module, nullptr) << diags.str();
  double out[1] = {0};
  std::vector<void *> pointers = {out};
  interp::Interpreter interp(*module);
  DiagnosticEngine runDiags;
  auto result = interp.run(module->getFunction("k"),
                           interp::pointerArgs(pointers), runDiags);
  ASSERT_TRUE(result.has_value()) << runDiags.str();
  EXPECT_EQ(out[0], static_cast<double>(INT64_MAX));
}

// Regression: constant folding can produce inf/nan, which the emitter
// used to print as "inf" — unparseable C++. It now uses the math.h
// macros, and the frontend understands them.
TEST(HlsFrontend, InfinityAndNanMacros) {
  lir::LContext ctx;
  DiagnosticEngine diags;
  auto module = hlscpp::parseHlsCpp(R"(
void k(double a[3]) {
  a[0] = INFINITY;
  a[1] = -INFINITY;
  a[2] = NAN;
}
)",
                                    ctx, diags);
  ASSERT_NE(module, nullptr) << diags.str();
  double out[3] = {0, 0, 0};
  std::vector<void *> pointers = {out};
  interp::Interpreter interp(*module);
  DiagnosticEngine runDiags;
  auto result = interp.run(module->getFunction("k"),
                           interp::pointerArgs(pointers), runDiags);
  ASSERT_TRUE(result.has_value()) << runDiags.str();
  EXPECT_TRUE(std::isinf(out[0]) && out[0] > 0);
  EXPECT_TRUE(std::isinf(out[1]) && out[1] < 0);
  EXPECT_TRUE(std::isnan(out[2]));
}

// Regression: float literals used to go through std::stod (locale
// dependent, throwing); the strict parser must reject out-of-range and
// malformed literals with a diagnostic instead of crashing.
TEST(HlsFrontend, RejectsHugeFloatLiteral) {
  lir::LContext ctx;
  DiagnosticEngine diags;
  auto module = hlscpp::parseHlsCpp(R"(
void k(double a[1]) {
  a[0] = 1.0e999;
}
)",
                                    ctx, diags);
  EXPECT_EQ(module, nullptr);
  EXPECT_TRUE(diags.hadError());
}
