// Unit tests for the MiniLLVM core: types, constants, use-def chains,
// instructions, blocks, functions, metadata.
#include "lir/IRBuilder.h"
#include "lir/LContext.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace mha;
using namespace mha::lir;

TEST(LirTypes, Uniquing) {
  LContext ctx;
  EXPECT_EQ(ctx.i32(), ctx.intTy(32));
  EXPECT_NE(ctx.i32(), ctx.i64());
  EXPECT_EQ(ctx.ptrTy(ctx.doubleTy()), ctx.ptrTy(ctx.doubleTy()));
  EXPECT_NE(ctx.ptrTy(ctx.doubleTy()), ctx.opaquePtrTy());
  EXPECT_EQ(ctx.arrayTy(ctx.doubleTy(), 8), ctx.arrayTy(ctx.doubleTy(), 8));
  EXPECT_NE(ctx.arrayTy(ctx.doubleTy(), 8), ctx.arrayTy(ctx.doubleTy(), 9));
  EXPECT_EQ(ctx.fnTy(ctx.voidTy(), {ctx.i32()}),
            ctx.fnTy(ctx.voidTy(), {ctx.i32()}));
}

TEST(LirTypes, Strings) {
  LContext ctx;
  EXPECT_EQ(ctx.i1()->str(), "i1");
  EXPECT_EQ(ctx.doubleTy()->str(), "double");
  EXPECT_EQ(ctx.opaquePtrTy()->str(), "ptr");
  EXPECT_EQ(ctx.ptrTy(ctx.floatTy())->str(), "float*");
  EXPECT_EQ(ctx.arrayTy(ctx.arrayTy(ctx.doubleTy(), 4), 2)->str(),
            "[2 x [4 x double]]");
}

TEST(LirTypes, Sizes) {
  LContext ctx;
  EXPECT_EQ(ctx.i1()->sizeInBytes(), 1u);
  EXPECT_EQ(ctx.i32()->sizeInBytes(), 4u);
  EXPECT_EQ(ctx.doubleTy()->sizeInBytes(), 8u);
  EXPECT_EQ(ctx.opaquePtrTy()->sizeInBytes(), 8u);
  EXPECT_EQ(ctx.arrayTy(ctx.doubleTy(), 16)->sizeInBytes(), 128u);
  EXPECT_EQ(ctx.structTy("", {ctx.i64(), ctx.doubleTy()})->sizeInBytes(),
            16u);
}

TEST(LirConstants, UniquingAndNormalization) {
  LContext ctx;
  EXPECT_EQ(ctx.constI64(7), ctx.constI64(7));
  EXPECT_NE(ctx.constI64(7), ctx.constI64(8));
  EXPECT_NE(ctx.constI64(7), ctx.constI32(7));
  // i1 values normalize: true is stored canonically.
  EXPECT_EQ(ctx.constI1(true), ctx.constInt(ctx.i1(), 1));
  EXPECT_EQ(ctx.constI1(false), ctx.constInt(ctx.i1(), 0));
  EXPECT_EQ(ctx.constFP(ctx.doubleTy(), 1.5), ctx.constFP(ctx.doubleTy(), 1.5));
  EXPECT_EQ(ctx.undef(ctx.i32()), ctx.undef(ctx.i32()));
}

TEST(LirValues, UseDefAndRAUW) {
  LContext ctx;
  Module module(ctx, "m");
  Function *fn = module.createFunction(ctx.fnTy(ctx.voidTy(), {ctx.i64()}),
                                       "f");
  BasicBlock *bb = fn->createBlock("entry");
  IRBuilder builder(ctx);
  builder.setInsertPoint(bb);

  Argument *arg = fn->arg(0);
  Instruction *add1 = builder.createAdd(arg, ctx.constI64(1));
  Instruction *add2 = builder.createAdd(add1, arg);
  builder.createRet();

  EXPECT_EQ(arg->numUses(), 2u);
  EXPECT_EQ(add1->numUses(), 1u);
  EXPECT_EQ(add2->operand(0), add1);

  // RAUW: all uses of arg become the constant.
  arg->replaceAllUsesWith(ctx.constI64(5));
  EXPECT_EQ(arg->numUses(), 0u);
  EXPECT_EQ(add1->operand(0), ctx.constI64(5));
  EXPECT_EQ(add2->operand(1), ctx.constI64(5));
}

TEST(LirValues, OperandRemovalReindexes) {
  LContext ctx;
  Module module(ctx, "m");
  Function *fn = module.createFunction(ctx.fnTy(ctx.voidTy(), {}), "f");
  BasicBlock *bb = fn->createBlock("entry");
  IRBuilder builder(ctx);
  builder.setInsertPoint(bb);
  Instruction *phi = builder.createPhi(ctx.i64());
  BasicBlock *p1 = fn->createBlock("p1");
  BasicBlock *p2 = fn->createBlock("p2");
  phi->addIncoming(ctx.constI64(1), p1);
  phi->addIncoming(ctx.constI64(2), p2);
  EXPECT_EQ(phi->numIncoming(), 2u);
  phi->removeIncoming(p1);
  EXPECT_EQ(phi->numIncoming(), 1u);
  EXPECT_EQ(phi->incomingBlock(0), p2);
  EXPECT_EQ(phi->incomingValue(0), ctx.constI64(2));
  // The remaining use's index must be consistent.
  EXPECT_EQ(phi->incomingValueFor(p2), ctx.constI64(2));
  EXPECT_EQ(phi->incomingValueFor(p1), nullptr);
  phi->dropAllOperands();
}

TEST(LirInstructions, CloneCopiesPayloadAndMetadata) {
  LContext ctx;
  Module module(ctx, "m");
  Function *fn = module.createFunction(ctx.fnTy(ctx.voidTy(), {ctx.i64()}),
                                       "f");
  BasicBlock *bb = fn->createBlock("entry");
  IRBuilder builder(ctx);
  builder.setInsertPoint(bb);
  Instruction *cmp =
      builder.createICmp(CmpPred::SLT, fn->arg(0), ctx.constI64(10));
  cmp->setMetadata("xlx.pipeline", MDNode::ofInt(2));

  auto clone = cmp->clone();
  EXPECT_EQ(clone->opcode(), Opcode::ICmp);
  EXPECT_EQ(clone->predicate(), CmpPred::SLT);
  EXPECT_EQ(clone->operand(0), fn->arg(0));
  ASSERT_NE(clone->getMetadata("xlx.pipeline"), nullptr);
  EXPECT_EQ(clone->getMetadata("xlx.pipeline")->getInt(0), 2);
  clone->dropAllOperands();
  // Original unaffected.
  EXPECT_EQ(cmp->numOperands(), 2u);
}

TEST(LirInstructions, SuccessorsAndReplace) {
  LContext ctx;
  Module module(ctx, "m");
  Function *fn = module.createFunction(
      ctx.fnTy(ctx.voidTy(), {ctx.intTy(1)}), "f");
  BasicBlock *entry = fn->createBlock("entry");
  BasicBlock *a = fn->createBlock("a");
  BasicBlock *b = fn->createBlock("b");
  BasicBlock *c = fn->createBlock("c");
  IRBuilder builder(ctx);
  builder.setInsertPoint(entry);
  Instruction *br = builder.createCondBr(fn->arg(0), a, b);
  EXPECT_EQ(br->successors(), (std::vector<BasicBlock *>{a, b}));
  br->replaceSuccessor(b, c);
  EXPECT_EQ(br->successors(), (std::vector<BasicBlock *>{a, c}));
  EXPECT_EQ(entry->successors().size(), 2u);
  EXPECT_EQ(a->predecessors(), (std::vector<BasicBlock *>{entry}));
  EXPECT_TRUE(b->predecessors().empty());
}

TEST(LirFunctions, ResetSignature) {
  LContext ctx;
  Module module(ctx, "m");
  Function *fn = module.createFunction(
      ctx.fnTy(ctx.voidTy(), {ctx.i64(), ctx.i64()}), "f");
  EXPECT_EQ(fn->numArgs(), 2u);
  std::vector<Argument *> newArgs =
      fn->resetSignature(ctx.fnTy(ctx.voidTy(), {ctx.opaquePtrTy()}));
  EXPECT_EQ(fn->numArgs(), 1u);
  EXPECT_EQ(newArgs[0]->type(), ctx.opaquePtrTy());
  EXPECT_EQ(newArgs[0]->index(), 0u);
}

TEST(LirMetadata, TreeOperations) {
  MDNode node;
  node.addInt(42).addString("hello").addFP(2.5);
  auto child = std::make_unique<MDNode>();
  child->addInt(7);
  node.addNode(std::move(child));

  EXPECT_EQ(node.size(), 4u);
  EXPECT_TRUE(node.isInt(0));
  EXPECT_EQ(node.getInt(0), 42);
  EXPECT_TRUE(node.isString(1));
  EXPECT_EQ(node.getString(1), "hello");
  EXPECT_EQ(node.getFP(2), 2.5);
  EXPECT_EQ(node.getNode(3)->getInt(0), 7);

  auto clone = node.clone();
  EXPECT_EQ(clone->size(), 4u);
  EXPECT_EQ(clone->getNode(3)->getInt(0), 7);
}

TEST(LirModule, FunctionLookupAndFlags) {
  LContext ctx;
  Module module(ctx, "m");
  module.createFunction(ctx.fnTy(ctx.voidTy(), {}), "a");
  module.createFunction(ctx.fnTy(ctx.voidTy(), {}), "b");
  EXPECT_NE(module.getFunction("a"), nullptr);
  EXPECT_EQ(module.getFunction("zz"), nullptr);
  module.flags()["opaque-pointers"] = "true";
  EXPECT_TRUE(module.flagIs("opaque-pointers", "true"));
  EXPECT_FALSE(module.flagIs("opaque-pointers", "false"));
  EXPECT_FALSE(module.flagIs("missing", "x"));
}

TEST(LirModule, CrossFunctionCallDestruction) {
  // A module where f calls g must destruct cleanly regardless of order.
  LContext ctx;
  auto module = std::make_unique<Module>(ctx, "m");
  Function *g = module->createFunction(ctx.fnTy(ctx.voidTy(), {}), "g");
  BasicBlock *gb = g->createBlock("entry");
  IRBuilder builder(ctx);
  builder.setInsertPoint(gb);
  builder.createRet();
  Function *f = module->createFunction(ctx.fnTy(ctx.voidTy(), {}), "f");
  BasicBlock *fb = f->createBlock("entry");
  builder.setInsertPoint(fb);
  builder.createCall(g, {});
  builder.createRet();
  module.reset(); // must not assert
  SUCCEED();
}

// Regression: fp constants were interned in a std::map keyed on the double
// value. NaN never orders against any other key, so the map treated it as
// equivalent to whichever constant it was first compared with, and
// constFP(NaN) silently returned an aliased non-NaN constant.
TEST(LirConstants, NanConstantsDoNotAliasOtherConstants) {
  LContext ctx;
  ConstantFP *inf =
      ctx.constFP(ctx.doubleTy(), std::numeric_limits<double>::infinity());
  ConstantFP *one = ctx.constFP(ctx.doubleTy(), 1.0);
  ConstantFP *nan =
      ctx.constFP(ctx.doubleTy(), std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(std::isnan(nan->value()));
  EXPECT_NE(nan, inf);
  EXPECT_NE(nan, one);
  EXPECT_EQ(nan,
            ctx.constFP(ctx.doubleTy(), std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(ctx.constFP(ctx.doubleTy(), 1.0), one);
}
