// MiniLLVM verifier tests: good IR passes, malformed IR is diagnosed.
#include "lir/IRBuilder.h"
#include "lir/LContext.h"
#include "lir/Parser.h"
#include "lir/Verifier.h"

#include <gtest/gtest.h>

using namespace mha;
using namespace mha::lir;

namespace {

/// Expects `text` to parse but fail verification with `needle` in the
/// diagnostics.
void expectInvalid(const std::string &text, const std::string &needle) {
  LContext ctx;
  DiagnosticEngine parseDiags;
  auto module = parseModule(text, ctx, parseDiags);
  ASSERT_NE(module, nullptr) << parseDiags.str();
  DiagnosticEngine diags;
  EXPECT_FALSE(verifyModule(*module, diags));
  EXPECT_NE(diags.str().find(needle), std::string::npos) << diags.str();
}

void expectValid(const std::string &text) {
  LContext ctx;
  DiagnosticEngine parseDiags;
  auto module = parseModule(text, ctx, parseDiags);
  ASSERT_NE(module, nullptr) << parseDiags.str();
  DiagnosticEngine diags;
  EXPECT_TRUE(verifyModule(*module, diags)) << diags.str();
}

} // namespace

TEST(LirVerifier, AcceptsWellFormedLoop) {
  expectValid(R"(
define void @f(ptr %p) {
entry:
  br label %header
header:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %cmp = icmp slt i64 %iv, 8
  br i1 %cmp, label %body, label %exit
body:
  %next = add i64 %iv, 1
  br label %header
exit:
  ret void
}
)");
}

TEST(LirVerifier, MissingTerminator) {
  LContext ctx;
  Module module(ctx, "m");
  Function *fn = module.createFunction(ctx.fnTy(ctx.voidTy(), {}), "f");
  fn->createBlock("entry"); // empty block, no terminator
  DiagnosticEngine diags;
  EXPECT_FALSE(verifyModule(module, diags));
  EXPECT_NE(diags.str().find("no terminator"), std::string::npos);
}

TEST(LirVerifier, PhiMissingPredecessor) {
  expectInvalid(R"(
define void @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %phi = phi i64 [ 1, %a ]
  ret void
}
)",
                "missing an entry for predecessor");
}

TEST(LirVerifier, PhiFromNonPredecessor) {
  expectInvalid(R"(
define void @f() {
entry:
  br label %next
other:
  br label %next
next:
  %phi = phi i64 [ 1, %entry ], [ 2, %other ], [ 3, %next ]
  ret void
}
)",
                "not a predecessor");
}

TEST(LirVerifier, BinopTypeMismatch) {
  // Built via API (parser would coerce constants).
  LContext ctx;
  Module module(ctx, "m");
  Function *fn = module.createFunction(
      ctx.fnTy(ctx.voidTy(), {ctx.i64(), ctx.i32()}), "f");
  BasicBlock *bb = fn->createBlock("entry");
  // Hand-assemble a bad add (bypassing the builder's assert).
  auto bad = std::make_unique<Instruction>(Opcode::Add, ctx.i64());
  bad->addOperand(fn->arg(0));
  bad->addOperand(fn->arg(1));
  bb->append(std::move(bad));
  IRBuilder builder(ctx);
  builder.setInsertPoint(bb);
  builder.createRet();
  DiagnosticEngine diags;
  EXPECT_FALSE(verifyModule(module, diags));
  EXPECT_NE(diags.str().find("type mismatch"), std::string::npos);
}

TEST(LirVerifier, UseBeforeDef) {
  expectInvalid(R"(
define void @f() {
entry:
  %0 = add i64 %1, 1
  %1 = add i64 2, 3
  ret void
}
)",
                "does not dominate");
}

TEST(LirVerifier, UseNotDominatingAcrossBlocks) {
  expectInvalid(R"(
define void @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %x = add i64 1, 2
  br label %join
b:
  br label %join
join:
  %y = add i64 %x, 1
  ret void
}
)",
                "does not dominate");
}

TEST(LirVerifier, TypedPointerPointeeMismatch) {
  expectInvalid(R"(
define void @f(double* %p) {
entry:
  %0 = load i64, double* %p
  ret void
}
)",
                "pointee does not match");
}

TEST(LirVerifier, CallArgumentMismatch) {
  expectInvalid(R"(
declare double @hls_sqrt(double)

define void @f(i64 %x) {
entry:
  %0 = call double @hls_sqrt(i64 %x)
  ret void
}
)",
                "argument 0 type mismatch");
}

TEST(LirVerifier, RetTypeMismatch) {
  LContext ctx;
  Module module(ctx, "m");
  Function *fn = module.createFunction(ctx.fnTy(ctx.voidTy(), {}), "f");
  BasicBlock *bb = fn->createBlock("entry");
  IRBuilder builder(ctx);
  builder.setInsertPoint(bb);
  builder.createRet(ctx.constI64(1)); // void fn returning a value
  DiagnosticEngine diags;
  EXPECT_FALSE(verifyModule(module, diags));
  EXPECT_NE(diags.str().find("ret"), std::string::npos);
}

TEST(LirVerifier, CondBrNonBoolCondition) {
  LContext ctx;
  Module module(ctx, "m");
  Function *fn =
      module.createFunction(ctx.fnTy(ctx.voidTy(), {ctx.i64()}), "f");
  BasicBlock *entry = fn->createBlock("entry");
  BasicBlock *a = fn->createBlock("a");
  BasicBlock *b = fn->createBlock("b");
  auto bad = std::make_unique<Instruction>(Opcode::CondBr, ctx.voidTy());
  bad->addOperand(fn->arg(0)); // i64 condition
  bad->addOperand(a);
  bad->addOperand(b);
  entry->append(std::move(bad));
  IRBuilder builder(ctx);
  builder.setInsertPoint(a);
  builder.createRet();
  builder.setInsertPoint(b);
  builder.createRet();
  DiagnosticEngine diags;
  EXPECT_FALSE(verifyModule(module, diags));
  EXPECT_NE(diags.str().find("not i1"), std::string::npos);
}

TEST(LirVerifier, TerminatorMidBlock) {
  LContext ctx;
  Module module(ctx, "m");
  Function *fn = module.createFunction(ctx.fnTy(ctx.voidTy(), {}), "f");
  BasicBlock *bb = fn->createBlock("entry");
  IRBuilder builder(ctx);
  builder.setInsertPoint(bb);
  builder.createRet();
  builder.createRet(); // second terminator
  DiagnosticEngine diags;
  EXPECT_FALSE(verifyModule(module, diags));
  EXPECT_NE(diags.str().find("middle of a block"), std::string::npos);
}

// --- Call-site checking (pinned: multi-function modules rely on it) -----

TEST(LirVerifier, CallArgumentCountMismatch) {
  expectInvalid(R"(
define i64 @callee(i64 %a, i64 %b) {
entry:
  %v = add i64 %a, %b
  ret i64 %v
}

define i64 @caller(i64 %x) {
entry:
  %r = call i64 @callee(i64 %x)
  ret i64 %r
}
)",
                "call argument count mismatch");
}

TEST(LirVerifier, CallArgumentTypeMismatch) {
  expectInvalid(R"(
define i64 @callee(i64 %a) {
entry:
  ret i64 %a
}

define i64 @caller(double %x) {
entry:
  %r = call i64 @callee(double %x)
  ret i64 %r
}
)",
                "call argument 0 type mismatch");
}

TEST(LirVerifier, CallResultTypeMismatch) {
  // Built via API: the parser types a call from the callee's signature, so a
  // result-type mismatch can only come from hand-assembled IR.
  LContext ctx;
  Module module(ctx, "m");
  Function *callee =
      module.createFunction(ctx.fnTy(ctx.i64(), {ctx.i64()}), "callee");
  BasicBlock *calleeBody = callee->createBlock("entry");
  IRBuilder builder(ctx);
  builder.setInsertPoint(calleeBody);
  builder.createRet(callee->arg(0));

  Function *caller =
      module.createFunction(ctx.fnTy(ctx.doubleTy(), {ctx.i64()}), "caller");
  BasicBlock *callerBody = caller->createBlock("entry");
  auto bad = std::make_unique<Instruction>(Opcode::Call, ctx.doubleTy());
  bad->addOperand(callee);
  bad->addOperand(caller->arg(0));
  Instruction *call = bad.get();
  callerBody->append(std::move(bad));
  builder.setInsertPoint(callerBody);
  builder.createRet(call);

  DiagnosticEngine diags;
  EXPECT_FALSE(verifyModule(module, diags));
  EXPECT_NE(diags.str().find("call result type mismatch"), std::string::npos)
      << diags.str();
}

TEST(LirVerifier, AcceptsWellFormedCallsAndRecursion) {
  expectValid(R"(
define i64 @fact(i64 %n) {
entry:
  %cmp = icmp sle i64 %n, 1
  br i1 %cmp, label %base, label %rec
base:
  ret i64 1
rec:
  %n1 = sub i64 %n, 1
  %r = call i64 @fact(i64 %n1)
  %v = mul i64 %n, %r
  ret i64 %v
}

define i64 @top(i64 %x) {
entry:
  %r = call i64 @fact(i64 %x)
  ret i64 %r
}
)");
}
