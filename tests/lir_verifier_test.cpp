// MiniLLVM verifier tests: good IR passes, malformed IR is diagnosed.
#include "lir/IRBuilder.h"
#include "lir/LContext.h"
#include "lir/Parser.h"
#include "lir/Verifier.h"

#include <gtest/gtest.h>

using namespace mha;
using namespace mha::lir;

namespace {

/// Expects `text` to parse but fail verification with `needle` in the
/// diagnostics.
void expectInvalid(const std::string &text, const std::string &needle) {
  LContext ctx;
  DiagnosticEngine parseDiags;
  auto module = parseModule(text, ctx, parseDiags);
  ASSERT_NE(module, nullptr) << parseDiags.str();
  DiagnosticEngine diags;
  EXPECT_FALSE(verifyModule(*module, diags));
  EXPECT_NE(diags.str().find(needle), std::string::npos) << diags.str();
}

void expectValid(const std::string &text) {
  LContext ctx;
  DiagnosticEngine parseDiags;
  auto module = parseModule(text, ctx, parseDiags);
  ASSERT_NE(module, nullptr) << parseDiags.str();
  DiagnosticEngine diags;
  EXPECT_TRUE(verifyModule(*module, diags)) << diags.str();
}

} // namespace

TEST(LirVerifier, AcceptsWellFormedLoop) {
  expectValid(R"(
define void @f(ptr %p) {
entry:
  br label %header
header:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %cmp = icmp slt i64 %iv, 8
  br i1 %cmp, label %body, label %exit
body:
  %next = add i64 %iv, 1
  br label %header
exit:
  ret void
}
)");
}

TEST(LirVerifier, MissingTerminator) {
  LContext ctx;
  Module module(ctx, "m");
  Function *fn = module.createFunction(ctx.fnTy(ctx.voidTy(), {}), "f");
  fn->createBlock("entry"); // empty block, no terminator
  DiagnosticEngine diags;
  EXPECT_FALSE(verifyModule(module, diags));
  EXPECT_NE(diags.str().find("no terminator"), std::string::npos);
}

TEST(LirVerifier, PhiMissingPredecessor) {
  expectInvalid(R"(
define void @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %phi = phi i64 [ 1, %a ]
  ret void
}
)",
                "missing an entry for predecessor");
}

TEST(LirVerifier, PhiFromNonPredecessor) {
  expectInvalid(R"(
define void @f() {
entry:
  br label %next
other:
  br label %next
next:
  %phi = phi i64 [ 1, %entry ], [ 2, %other ], [ 3, %next ]
  ret void
}
)",
                "not a predecessor");
}

TEST(LirVerifier, BinopTypeMismatch) {
  // Built via API (parser would coerce constants).
  LContext ctx;
  Module module(ctx, "m");
  Function *fn = module.createFunction(
      ctx.fnTy(ctx.voidTy(), {ctx.i64(), ctx.i32()}), "f");
  BasicBlock *bb = fn->createBlock("entry");
  // Hand-assemble a bad add (bypassing the builder's assert).
  auto bad = std::make_unique<Instruction>(Opcode::Add, ctx.i64());
  bad->addOperand(fn->arg(0));
  bad->addOperand(fn->arg(1));
  bb->append(std::move(bad));
  IRBuilder builder(ctx);
  builder.setInsertPoint(bb);
  builder.createRet();
  DiagnosticEngine diags;
  EXPECT_FALSE(verifyModule(module, diags));
  EXPECT_NE(diags.str().find("type mismatch"), std::string::npos);
}

TEST(LirVerifier, UseBeforeDef) {
  expectInvalid(R"(
define void @f() {
entry:
  %0 = add i64 %1, 1
  %1 = add i64 2, 3
  ret void
}
)",
                "does not dominate");
}

TEST(LirVerifier, UseNotDominatingAcrossBlocks) {
  expectInvalid(R"(
define void @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %x = add i64 1, 2
  br label %join
b:
  br label %join
join:
  %y = add i64 %x, 1
  ret void
}
)",
                "does not dominate");
}

TEST(LirVerifier, TypedPointerPointeeMismatch) {
  expectInvalid(R"(
define void @f(double* %p) {
entry:
  %0 = load i64, double* %p
  ret void
}
)",
                "pointee does not match");
}

TEST(LirVerifier, CallArgumentMismatch) {
  expectInvalid(R"(
declare double @hls_sqrt(double)

define void @f(i64 %x) {
entry:
  %0 = call double @hls_sqrt(i64 %x)
  ret void
}
)",
                "argument 0 type mismatch");
}

TEST(LirVerifier, RetTypeMismatch) {
  LContext ctx;
  Module module(ctx, "m");
  Function *fn = module.createFunction(ctx.fnTy(ctx.voidTy(), {}), "f");
  BasicBlock *bb = fn->createBlock("entry");
  IRBuilder builder(ctx);
  builder.setInsertPoint(bb);
  builder.createRet(ctx.constI64(1)); // void fn returning a value
  DiagnosticEngine diags;
  EXPECT_FALSE(verifyModule(module, diags));
  EXPECT_NE(diags.str().find("ret"), std::string::npos);
}

TEST(LirVerifier, CondBrNonBoolCondition) {
  LContext ctx;
  Module module(ctx, "m");
  Function *fn =
      module.createFunction(ctx.fnTy(ctx.voidTy(), {ctx.i64()}), "f");
  BasicBlock *entry = fn->createBlock("entry");
  BasicBlock *a = fn->createBlock("a");
  BasicBlock *b = fn->createBlock("b");
  auto bad = std::make_unique<Instruction>(Opcode::CondBr, ctx.voidTy());
  bad->addOperand(fn->arg(0)); // i64 condition
  bad->addOperand(a);
  bad->addOperand(b);
  entry->append(std::move(bad));
  IRBuilder builder(ctx);
  builder.setInsertPoint(a);
  builder.createRet();
  builder.setInsertPoint(b);
  builder.createRet();
  DiagnosticEngine diags;
  EXPECT_FALSE(verifyModule(module, diags));
  EXPECT_NE(diags.str().find("not i1"), std::string::npos);
}

TEST(LirVerifier, TerminatorMidBlock) {
  LContext ctx;
  Module module(ctx, "m");
  Function *fn = module.createFunction(ctx.fnTy(ctx.voidTy(), {}), "f");
  BasicBlock *bb = fn->createBlock("entry");
  IRBuilder builder(ctx);
  builder.setInsertPoint(bb);
  builder.createRet();
  builder.createRet(); // second terminator
  DiagnosticEngine diags;
  EXPECT_FALSE(verifyModule(module, diags));
  EXPECT_NE(diags.str().find("middle of a block"), std::string::npos);
}
