// Tests for the virtual HLS backend: acceptance gating, scheduling,
// pipelining (RecMII/ResMII), unroll directives, partitioning and
// resource/report generation.
#include "lir/LContext.h"
#include "lir/Parser.h"
#include "lir/Printer.h"
#include "support/StringUtils.h"
#include "vhls/Vhls.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace mha;
using namespace mha::vhls;

namespace {

struct Synth {
  lir::LContext ctx;
  std::unique_ptr<lir::Module> module;
  SynthesisReport report;
  std::string diagnostics;

  explicit Synth(const std::string &text, SynthesisOptions options = {}) {
    DiagnosticEngine diags;
    module = lir::parseModule(text, ctx, diags);
    EXPECT_NE(module, nullptr) << diags.str();
    if (!module)
      return;
    if (module->flags().find("opaque-pointers") == module->flags().end())
      module->flags()["opaque-pointers"] = "false";
    report = synthesize(*module, options, diags);
    diagnostics = diags.str();
  }
};

/// A pipelined streaming loop over a[iv] (no recurrence).
const std::string kStreamLoop = R"(
define void @k([64 x double]* noalias %a) {
entry:
  br label %header
header:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %cmp = icmp slt i64 %iv, 64
  br i1 %cmp, label %body, label %exit
body:
  %addr = getelementptr [64 x double], [64 x double]* %a, i64 0, i64 %iv
  %v = load double, double* %addr
  %d = fmul double %v, 2.0
  store double %d, double* %addr
  %next = add i64 %iv, 1
  br label %header, !xlx.pipeline !{i64 1}
exit:
  ret void
}
)";

/// The accumulation loop: load s, fadd, store s (carried distance 1).
const std::string kAccumLoop = R"(
define void @k([64 x double]* noalias %a, [1 x double]* noalias %s) {
entry:
  br label %header
header:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %cmp = icmp slt i64 %iv, 64
  br i1 %cmp, label %body, label %exit
body:
  %addr = getelementptr [64 x double], [64 x double]* %a, i64 0, i64 %iv
  %v = load double, double* %addr
  %saddr = getelementptr [1 x double], [1 x double]* %s, i64 0, i64 0
  %acc = load double, double* %saddr
  %sum = fadd double %acc, %v
  store double %sum, double* %saddr
  %next = add i64 %iv, 1
  br label %header, !xlx.pipeline !{i64 1}
exit:
  ret void
}
)";

} // namespace

TEST(VhlsAcceptance, RejectsOpaquePointerModule) {
  lir::LContext ctx;
  DiagnosticEngine diags;
  auto module = lir::parseModule(R"(
!flag opaque-pointers = "true"
define void @k(ptr %p) {
entry:
  ret void
}
)",
                                 ctx, diags);
  ASSERT_NE(module, nullptr);
  SynthesisReport report = synthesize(*module, {}, diags);
  EXPECT_FALSE(report.accepted);
  EXPECT_GT(report.compat.violations["opaque-pointers"], 0);
  EXPECT_TRUE(report.functions.empty());
}

TEST(VhlsAcceptance, RejectsIntrinsics) {
  Synth s(R"(
declare double @llvm.fmuladd.f64(double, double, double)

define void @k(double* %p) {
entry:
  %v = load double, double* %p
  %r = call double @llvm.fmuladd.f64(double %v, double %v, double %v)
  store double %r, double* %p
  ret void
}
)");
  EXPECT_FALSE(s.report.accepted);
  EXPECT_GT(s.report.compat.violations["intrinsic-call"], 0);
}

TEST(VhlsAcceptance, WarnsOnFlatGeps) {
  Synth s(R"(
define void @k(double* %p) {
entry:
  %addr = getelementptr double, double* %p, i64 4
  %v = load double, double* %addr
  store double %v, double* %addr
  ret void
}
)");
  EXPECT_TRUE(s.report.accepted);
  EXPECT_GT(s.report.compat.violations["unshaped-gep"], 0);
  EXPECT_GT(s.report.compat.warnings, 0);
}

TEST(VhlsAcceptance, StrictModeRejectsWarnings) {
  SynthesisOptions options;
  options.strictAcceptance = true;
  Synth s(R"(
define void @k(double* %p) {
entry:
  %addr = getelementptr double, double* %p, i64 4
  %v = load double, double* %addr
  store double %v, double* %addr
  ret void
}
)",
          options);
  EXPECT_FALSE(s.report.accepted);
}

TEST(VhlsSchedule, StreamingLoopReachesIIOne) {
  Synth s(kStreamLoop);
  ASSERT_TRUE(s.report.accepted) << s.diagnostics;
  ASSERT_EQ(s.report.functions.size(), 1u);
  const FunctionReport &fn = s.report.functions[0];
  ASSERT_EQ(fn.loops.size(), 1u);
  const LoopReport &loop = fn.loops[0];
  EXPECT_TRUE(loop.pipelined);
  EXPECT_EQ(loop.achievedII, 1);
  EXPECT_EQ(loop.recMII, 1);
  EXPECT_EQ(loop.tripCount, 64);
  // latency ~ depth + 63*1.
  EXPECT_LT(loop.totalLatency, 100);
}

TEST(VhlsSchedule, AccumulationLoopIsRecurrenceLimited) {
  Synth s(kAccumLoop);
  ASSERT_TRUE(s.report.accepted) << s.diagnostics;
  const LoopReport &loop = s.report.functions[0].loops[0];
  EXPECT_TRUE(loop.pipelined);
  // load(2) + fadd(4) + store(1) = 7-cycle recurrence at distance 1.
  EXPECT_EQ(loop.recMII, 7);
  EXPECT_EQ(loop.achievedII, 7);
  EXPECT_GT(loop.totalLatency, 63 * 7);
}

TEST(VhlsSchedule, PortPressureRaisesResMII) {
  // Four loads from one unpartitioned array per iteration, 2 ports.
  Synth s(R"(
define void @k([64 x double]* noalias %a, [64 x double]* noalias %o) {
entry:
  br label %header
header:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %cmp = icmp slt i64 %iv, 16
  br i1 %cmp, label %body, label %exit
body:
  %a0 = getelementptr [64 x double], [64 x double]* %a, i64 0, i64 %iv
  %v0 = load double, double* %a0
  %i1 = add i64 %iv, 16
  %a1 = getelementptr [64 x double], [64 x double]* %a, i64 0, i64 %i1
  %v1 = load double, double* %a1
  %i2 = add i64 %iv, 32
  %a2 = getelementptr [64 x double], [64 x double]* %a, i64 0, i64 %i2
  %v2 = load double, double* %a2
  %i3 = add i64 %iv, 48
  %a3 = getelementptr [64 x double], [64 x double]* %a, i64 0, i64 %i3
  %v3 = load double, double* %a3
  %s1 = fadd double %v0, %v1
  %s2 = fadd double %v2, %v3
  %s3 = fadd double %s1, %s2
  %oaddr = getelementptr [64 x double], [64 x double]* %o, i64 0, i64 %iv
  store double %s3, double* %oaddr
  %next = add i64 %iv, 1
  br label %header, !xlx.pipeline !{i64 1}
exit:
  ret void
}
)");
  ASSERT_TRUE(s.report.accepted) << s.diagnostics;
  const LoopReport &loop = s.report.functions[0].loops[0];
  // 4 accesses on one dual-ported bank -> ResMII 2.
  EXPECT_EQ(loop.resMII, 2);
  EXPECT_GE(loop.achievedII, 2);
}

TEST(VhlsSchedule, PartitioningRestoresIIOne) {
  // Same pattern but accesses fall in distinct cyclic banks (factor 4,
  // offsets 0,16,32,48 are congruent mod 4 -> use offsets 0..3 instead).
  Synth s(R"(
define void @k([64 x double]* noalias !xlx.array_partition !{!{i64 0, i64 4, !"cyclic"}} %a, [64 x double]* noalias %o) {
entry:
  br label %header
header:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %cmp = icmp slt i64 %iv, 15
  br i1 %cmp, label %body, label %exit
body:
  %base = mul i64 %iv, 4
  %a0 = getelementptr [64 x double], [64 x double]* %a, i64 0, i64 %base
  %v0 = load double, double* %a0
  %i1 = add i64 %base, 1
  %a1 = getelementptr [64 x double], [64 x double]* %a, i64 0, i64 %i1
  %v1 = load double, double* %a1
  %i2 = add i64 %base, 2
  %a2 = getelementptr [64 x double], [64 x double]* %a, i64 0, i64 %i2
  %v2 = load double, double* %a2
  %i3 = add i64 %base, 3
  %a3 = getelementptr [64 x double], [64 x double]* %a, i64 0, i64 %i3
  %v3 = load double, double* %a3
  %s1 = fadd double %v0, %v1
  %s2 = fadd double %v2, %v3
  %s3 = fadd double %s1, %s2
  %oaddr = getelementptr [64 x double], [64 x double]* %o, i64 0, i64 %iv
  store double %s3, double* %oaddr
  %next = add i64 %iv, 1
  br label %header, !xlx.pipeline !{i64 1}
exit:
  ret void
}
)");
  ASSERT_TRUE(s.report.accepted) << s.diagnostics;
  const LoopReport &loop = s.report.functions[0].loops[0];
  EXPECT_EQ(loop.resMII, 1) << s.report.str();
  EXPECT_EQ(loop.achievedII, 1);
}

TEST(VhlsSchedule, UnrollDirectiveApplied) {
  std::string unrolled = kStreamLoop;
  size_t pos = unrolled.find("!xlx.pipeline !{i64 1}");
  unrolled.replace(pos, std::string("!xlx.pipeline !{i64 1}").size(),
                   "!xlx.unroll !{i64 4}");
  Synth s(unrolled);
  ASSERT_TRUE(s.report.accepted) << s.diagnostics;
  const LoopReport &loop = s.report.functions[0].loops[0];
  EXPECT_FALSE(loop.pipelined);
  // Trip shrank from 64 to 16 after unroll-by-4.
  EXPECT_EQ(loop.tripCount, 16);
}

TEST(VhlsSchedule, TargetIIHonoured) {
  std::string relaxed = kStreamLoop;
  size_t pos = relaxed.find("!{i64 1}");
  relaxed.replace(pos, 8, "!{i64 3}");
  Synth s(relaxed);
  ASSERT_TRUE(s.report.accepted) << s.diagnostics;
  EXPECT_EQ(s.report.functions[0].loops[0].achievedII, 3);
}

TEST(VhlsSchedule, OuterLoopNotPipelined) {
  Synth s(R"(
define void @k([8 x double]* noalias %a) {
entry:
  br label %outer
outer:
  %i = phi i64 [ 0, %entry ], [ %i.next, %outer.latch ]
  %ocmp = icmp slt i64 %i, 8
  br i1 %ocmp, label %inner.pre, label %exit
inner.pre:
  br label %inner
inner:
  %j = phi i64 [ 0, %inner.pre ], [ %j.next, %inner ]
  %addr = getelementptr [8 x double], [8 x double]* %a, i64 0, i64 %j
  %v = load double, double* %addr
  store double %v, double* %addr
  %j.next = add i64 %j, 1
  %icmp2 = icmp slt i64 %j.next, 8
  br i1 %icmp2, label %inner, label %outer.latch
outer.latch:
  %i.next = add i64 %i, 1
  br label %outer, !xlx.pipeline !{i64 1}
exit:
  ret void
}
)");
  ASSERT_TRUE(s.report.accepted) << s.diagnostics;
  bool foundNote = false;
  for (const LoopReport &loop : s.report.functions[0].loops)
    if (loop.note.find("subloop") != std::string::npos)
      foundNote = true;
  EXPECT_TRUE(foundNote) << s.report.str();
}

TEST(VhlsResources, CountsDSPandBRAM) {
  Synth s(kStreamLoop);
  const FunctionReport &fn = s.report.functions[0];
  // One double multiplier -> 11 DSP.
  EXPECT_GE(fn.resources.dsp, 11);
  // Interface array reported but not charged to the kernel.
  ASSERT_EQ(fn.arrays.size(), 1u);
  EXPECT_FALSE(fn.arrays[0].onChip);
  EXPECT_EQ(fn.arrays[0].bramBlocks, bramBlocksFor(64 * 8));
  EXPECT_EQ(fn.resources.bram, 0);
}

TEST(VhlsResources, OnChipArrayChargedToKernel) {
  Synth s(R"(
define void @k(double* %out) {
entry:
  %buf = alloca [512 x double]
  %addr = getelementptr [512 x double], [512 x double]* %buf, i64 0, i64 0
  %v = load double, double* %addr
  store double %v, double* %out
  ret void
}
)");
  ASSERT_TRUE(s.report.accepted) << s.diagnostics;
  EXPECT_GT(s.report.functions[0].resources.bram, 0);
}

TEST(VhlsReport, RendersText) {
  Synth s(kStreamLoop);
  std::string text = s.report.str();
  EXPECT_NE(text.find("ACCEPTED"), std::string::npos);
  EXPECT_NE(text.find("function @k"), std::string::npos);
  EXPECT_NE(text.find("pipelined II=1"), std::string::npos);
}

TEST(VhlsHierarchy, CalleeLatencyPropagates) {
  Synth s(R"(
define void @leaf([16 x double]* noalias %a) {
entry:
  br label %header
header:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %cmp = icmp slt i64 %iv, 16
  br i1 %cmp, label %body, label %exit
body:
  %addr = getelementptr [16 x double], [16 x double]* %a, i64 0, i64 %iv
  %v = load double, double* %addr
  %d = fadd double %v, 1.0
  store double %d, double* %addr
  %next = add i64 %iv, 1
  br label %header
exit:
  ret void
}

define void @top([16 x double]* noalias %a) {
entry:
  call void @leaf([16 x double]* %a)
  call void @leaf([16 x double]* %a)
  ret void
}
)",
          [] {
            SynthesisOptions o;
            o.topFunction = "top";
            return o;
          }());
  ASSERT_TRUE(s.report.accepted) << s.diagnostics;
  const FunctionReport *top = s.report.top();
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->name, "top");
  int64_t leafLatency = 0;
  for (const FunctionReport &fn : s.report.functions)
    if (fn.name == "leaf")
      leafLatency = fn.latencyCycles;
  EXPECT_GT(leafLatency, 16);
  EXPECT_GE(top->latencyCycles, 2 * leafLatency);
}

TEST(VhlsReport, JsonExport) {
  Synth s(kStreamLoop);
  std::string json = s.report.json();
  EXPECT_NE(json.find("\"accepted\": true"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"k\""), std::string::npos);
  EXPECT_NE(json.find("\"pipelined\": true"), std::string::npos);
  EXPECT_NE(json.find("\"ii\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"latency_cycles\""), std::string::npos);
  // Balanced braces as a cheap well-formedness check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(VhlsDataflow, OverlapsIndependentNests) {
  Synth s(R"(
define void @k([32 x double]* noalias %a, [32 x double]* noalias %b) #[xlx.dataflow] {
entry:
  br label %h1
h1:
  %i = phi i64 [ 0, %entry ], [ %i.next, %b1 ]
  %c1 = icmp slt i64 %i, 32
  br i1 %c1, label %b1, label %mid
b1:
  %a1 = getelementptr [32 x double], [32 x double]* %a, i64 0, i64 %i
  %v1 = load double, double* %a1
  %d1 = fmul double %v1, 2.0
  store double %d1, double* %a1
  %i.next = add i64 %i, 1
  br label %h1
mid:
  br label %h2
h2:
  %j = phi i64 [ 0, %mid ], [ %j.next, %b2 ]
  %c2 = icmp slt i64 %j, 32
  br i1 %c2, label %b2, label %exit
b2:
  %a2 = getelementptr [32 x double], [32 x double]* %b, i64 0, i64 %j
  %v2 = load double, double* %a2
  %d2 = fmul double %v2, 3.0
  store double %d2, double* %a2
  %j.next = add i64 %j, 1
  br label %h2
exit:
  ret void
}
)");
  ASSERT_TRUE(s.report.accepted) << s.diagnostics;
  const FunctionReport &fn = s.report.functions[0];
  EXPECT_TRUE(fn.dataflow);
  int64_t maxLoop = 0, sumLoop = 0;
  for (const LoopReport &loop : fn.loops) {
    maxLoop = std::max(maxLoop, loop.totalLatency);
    sumLoop += loop.totalLatency;
  }
  // Latency tracks the slowest task, not the sum.
  EXPECT_LT(fn.latencyCycles, sumLoop);
  EXPECT_GE(fn.latencyCycles, maxLoop);
}

TEST(VhlsAllocation, FULimitRaisesResMII) {
  // jacobi-like body: 5 independent fmuls per iteration; with an
  // allocation limit of 1 fmul unit the II must rise to >= 5.
  const std::string text = R"(
define void @k([64 x double]* noalias !xlx.array_partition !{!{i64 0, i64 8, !"cyclic"}} %a, [64 x double]* noalias %o) {
entry:
  br label %header
header:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %cmp = icmp slt i64 %iv, 8
  br i1 %cmp, label %body, label %exit
body:
  %base = mul i64 %iv, 8
  %a0 = getelementptr [64 x double], [64 x double]* %a, i64 0, i64 %base
  %v0 = load double, double* %a0
  %i1 = add i64 %base, 1
  %a1 = getelementptr [64 x double], [64 x double]* %a, i64 0, i64 %i1
  %v1 = load double, double* %a1
  %m0 = fmul double %v0, 2.0
  %m1 = fmul double %v1, 3.0
  %m2 = fmul double %v0, 4.0
  %m3 = fmul double %v1, 5.0
  %m4 = fmul double %v0, 6.0
  %s1 = fadd double %m0, %m1
  %s2 = fadd double %m2, %m3
  %s3 = fadd double %s1, %s2
  %s4 = fadd double %s3, %m4
  %oaddr = getelementptr [64 x double], [64 x double]* %o, i64 0, i64 %iv
  store double %s4, double* %oaddr
  %next = add i64 %iv, 1
  br label %header, !xlx.pipeline !{i64 1}
exit:
  ret void
}
)";
  // Unlimited: II=1.
  Synth unlimited(text);
  ASSERT_TRUE(unlimited.report.accepted) << unlimited.diagnostics;
  EXPECT_EQ(unlimited.report.functions[0].loops[0].achievedII, 1);

  // One fmul unit: II >= 5 and the DSP bill shrinks accordingly.
  SynthesisOptions constrained;
  constrained.target.fuLimits["fmul"] = 1;
  Synth limited(text, constrained);
  ASSERT_TRUE(limited.report.accepted) << limited.diagnostics;
  const LoopReport &loop = limited.report.functions[0].loops[0];
  EXPECT_GE(loop.resMII, 5);
  EXPECT_GE(loop.achievedII, 5);
  EXPECT_LT(limited.report.functions[0].resources.dsp,
            unlimited.report.functions[0].resources.dsp);
}

TEST(VhlsAllocation, LimitSerializesStraightLineCode) {
  const std::string text = R"(
define void @k(double* %p, double* %q) {
entry:
  %v = load double, double* %p
  %m0 = fmul double %v, 2.0
  %m1 = fmul double %v, 3.0
  %m2 = fmul double %v, 4.0
  %m3 = fmul double %v, 5.0
  %s1 = fadd double %m0, %m1
  %s2 = fadd double %m2, %m3
  %s3 = fadd double %s1, %s2
  store double %s3, double* %q
  ret void
}
)";
  Synth unlimited(text);
  SynthesisOptions constrained;
  constrained.target.fuLimits["fmul"] = 1;
  Synth limited(text, constrained);
  // Serializing the 4 parallel multiplies must lengthen the schedule.
  EXPECT_GT(limited.report.functions[0].latencyCycles,
            unlimited.report.functions[0].latencyCycles);
}

TEST(VhlsTechLibrary, Float32IsCheaperAndShallower) {
  // f32 cores are shallower and cheaper than f64 — check through a full
  // synthesis of the same loop in both precisions.
  auto loopFor = [](const char *ty) {
    return strfmt(R"(
define void @k([64 x %s]* noalias %%a) {
entry:
  br label %%header
header:
  %%iv = phi i64 [ 0, %%entry ], [ %%next, %%body ]
  %%cmp = icmp slt i64 %%iv, 64
  br i1 %%cmp, label %%body, label %%exit
body:
  %%addr = getelementptr [64 x %s], [64 x %s]* %%a, i64 0, i64 %%iv
  %%v = load %s, %s* %%addr
  %%d = fmul %s %%v, 2.0
  %%e = fdiv %s %%d, 3.0
  store %s %%e, %s* %%addr
  %%next = add i64 %%iv, 1
  br label %%header
exit:
  ret void
}
)",
                  ty, ty, ty, ty, ty, ty, ty, ty, ty);
  };
  Synth f64(loopFor("double"));
  Synth f32(loopFor("float"));
  ASSERT_TRUE(f64.report.accepted) << f64.diagnostics;
  ASSERT_TRUE(f32.report.accepted) << f32.diagnostics;
  EXPECT_LT(f32.report.functions[0].latencyCycles,
            f64.report.functions[0].latencyCycles);
  EXPECT_LT(f32.report.functions[0].resources.dsp,
            f64.report.functions[0].resources.dsp);
  EXPECT_LT(f32.report.functions[0].resources.lut,
            f64.report.functions[0].resources.lut);
}

TEST(VhlsSchedule, UnknownTripCountHandledGracefully) {
  // A loop bounded by an argument: no constant trip count. The scheduler
  // reports trip=-1 and still produces a (one-iteration-normalized)
  // latency rather than crashing or rejecting.
  Synth s(R"(
define void @k([64 x double]* noalias %a, i64 %n) {
entry:
  br label %header
header:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %cmp = icmp slt i64 %iv, %n
  br i1 %cmp, label %body, label %exit
body:
  %addr = getelementptr [64 x double], [64 x double]* %a, i64 0, i64 %iv
  %v = load double, double* %addr
  %d = fmul double %v, 2.0
  store double %d, double* %addr
  %next = add i64 %iv, 1
  br label %header, !xlx.pipeline !{i64 1}
exit:
  ret void
}
)");
  ASSERT_TRUE(s.report.accepted) << s.diagnostics;
  const LoopReport &loop = s.report.functions[0].loops[0];
  EXPECT_EQ(loop.tripCount, -1);
  EXPECT_GT(loop.totalLatency, 0);
  EXPECT_TRUE(loop.pipelined);
  EXPECT_EQ(loop.achievedII, 1);
}

TEST(VhlsFlatten, PerfectNestPipelinesAcrossOuter) {
  // Outer (8) x inner (16, pipelined II=1) perfect nest: flattening must
  // yield ~depth + 127 cycles, far below 8 sequential pipeline fills.
  Synth s(R"(
define void @k([128 x double]* noalias %a) {
entry:
  br label %outer
outer:
  %i = phi i64 [ 0, %entry ], [ %i.next, %outer.latch ]
  %ocmp = icmp slt i64 %i, 8
  br i1 %ocmp, label %inner.pre, label %exit
inner.pre:
  br label %inner.header
inner.header:
  %j = phi i64 [ 0, %inner.pre ], [ %j.next, %inner.body ]
  %icmp2 = icmp slt i64 %j, 16
  br i1 %icmp2, label %inner.body, label %outer.latch
inner.body:
  %base = mul i64 %i, 16
  %idx = add i64 %base, %j
  %addr = getelementptr [128 x double], [128 x double]* %a, i64 0, i64 %idx
  %v = load double, double* %addr
  %d = fmul double %v, 2.0
  store double %d, double* %addr
  %j.next = add i64 %j, 1
  br label %inner.header, !xlx.pipeline !{i64 1}
outer.latch:
  %i.next = add i64 %i, 1
  br label %outer
exit:
  ret void
}
)");
  ASSERT_TRUE(s.report.accepted) << s.diagnostics;
  const LoopReport *outer = nullptr;
  for (const LoopReport &loop : s.report.functions[0].loops)
    if (loop.note == "flattened")
      outer = &loop;
  ASSERT_NE(outer, nullptr) << s.report.str();
  EXPECT_EQ(outer->tripCount, 128); // flattened trip
  EXPECT_EQ(outer->achievedII, 1);
  EXPECT_LT(outer->totalLatency, 160);
}

TEST(VhlsFlatten, ImperfectNestStaysSequential) {
  // Datapath work between the loops (the store) blocks flattening.
  Synth s(R"(
define void @k([8 x double]* noalias %a, [128 x double]* noalias %b) {
entry:
  br label %outer
outer:
  %i = phi i64 [ 0, %entry ], [ %i.next, %outer.latch ]
  %ocmp = icmp slt i64 %i, 8
  br i1 %ocmp, label %pre, label %exit
pre:
  %oaddr = getelementptr [8 x double], [8 x double]* %a, i64 0, i64 %i
  store double 0.0, double* %oaddr
  br label %inner.header
inner.header:
  %j = phi i64 [ 0, %pre ], [ %j.next, %inner.body ]
  %icmp2 = icmp slt i64 %j, 16
  br i1 %icmp2, label %inner.body, label %outer.latch
inner.body:
  %base = mul i64 %i, 16
  %idx = add i64 %base, %j
  %addr = getelementptr [128 x double], [128 x double]* %b, i64 0, i64 %idx
  %v = load double, double* %addr
  store double %v, double* %addr
  %j.next = add i64 %j, 1
  br label %inner.header, !xlx.pipeline !{i64 1}
outer.latch:
  %i.next = add i64 %i, 1
  br label %outer
exit:
  ret void
}
)");
  ASSERT_TRUE(s.report.accepted) << s.diagnostics;
  for (const LoopReport &loop : s.report.functions[0].loops)
    EXPECT_NE(loop.note, "flattened") << s.report.str();
}

TEST(VhlsPartition, BlockPartitioningSeparatesHalves) {
  // Block partition factor 2 on a [64] array: constant subscripts 3 and
  // 40 fall into different banks, so both loads issue in one cycle even
  // with single-port pressure from elsewhere.
  Synth s(R"(
define void @k([64 x double]* noalias !xlx.array_partition !{!{i64 0, i64 2, !"block"}} %a, [64 x double]* noalias %o) {
entry:
  br label %header
header:
  %iv = phi i64 [ 0, %entry ], [ %next, %body ]
  %cmp = icmp slt i64 %iv, 16
  br i1 %cmp, label %body, label %exit
body:
  %a0 = getelementptr [64 x double], [64 x double]* %a, i64 0, i64 3
  %v0 = load double, double* %a0
  %a1 = getelementptr [64 x double], [64 x double]* %a, i64 0, i64 40
  %v1 = load double, double* %a1
  %a2 = getelementptr [64 x double], [64 x double]* %a, i64 0, i64 5
  %v2 = load double, double* %a2
  %a3 = getelementptr [64 x double], [64 x double]* %a, i64 0, i64 43
  %v3 = load double, double* %a3
  %s1 = fadd double %v0, %v1
  %s2 = fadd double %v2, %v3
  %s3 = fadd double %s1, %s2
  %oaddr = getelementptr [64 x double], [64 x double]* %o, i64 0, i64 %iv
  store double %s3, double* %oaddr
  %next = add i64 %iv, 1
  br label %header, !xlx.pipeline !{i64 1}
exit:
  ret void
}
)");
  ASSERT_TRUE(s.report.accepted) << s.diagnostics;
  const LoopReport &loop = s.report.functions[0].loops[0];
  // 2 loads per bank / 2 ports -> ResMII 1.
  EXPECT_EQ(loop.resMII, 1) << s.report.str();
  EXPECT_EQ(loop.achievedII, 1);
  // The array report shows the block partitioning.
  bool found = false;
  for (const ArrayReport &array : s.report.functions[0].arrays)
    if (array.partition.find("block") != std::string::npos)
      found = true;
  EXPECT_TRUE(found);
}
