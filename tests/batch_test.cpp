// BatchRunner tests: deterministic submission-order results that are
// bit-identical to serial flow runs, per-job error containment, and the
// structured trace (stage timings, worker occupancy, JSON export).
#include "flow/BatchRunner.h"

#include "support/Json.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

using namespace mha;
using namespace mha::flow;

namespace {

KernelConfig tunedConfig() {
  KernelConfig config;
  config.pipelineII = 1;
  config.partitionFactor = 2;
  return config;
}

// Built through a named value rather than an aggregate temporary: GCC 12's
// -Wmaybe-uninitialized false-fires on pushing brace-init temporaries that
// contain a std::map (the FlowOptions fuLimits).
BatchJob makeJob(const KernelSpec *spec, FlowKind kind,
                 std::string label = "") {
  BatchJob job;
  job.spec = spec;
  job.config = tunedConfig();
  job.kind = kind;
  job.label = std::move(label);
  return job;
}

/// A kernel whose module construction throws — the adversarial job the
/// batch must contain without poisoning its neighbors.
KernelSpec bombKernel() {
  KernelSpec bomb = *findKernel("fir");
  bomb.name = "bomb";
  bomb.build = [](mir::MContext &, const KernelConfig &) -> mir::OwnedModule {
    throw std::runtime_error("kernel construction exploded");
  };
  return bomb;
}

} // namespace

TEST(BatchRunner, MatchesSerialBitExact) {
  std::vector<BatchJob> jobs;
  for (const char *name : {"gemm", "fir", "atax"})
    jobs.push_back(makeJob(findKernel(name), FlowKind::Adaptor));
  jobs.push_back(makeJob(findKernel("mvt"), FlowKind::HlsCpp));

  BatchOptions options;
  options.numThreads = 4;
  BatchOutcome outcome = runBatch(jobs, options);
  ASSERT_EQ(outcome.results.size(), jobs.size());

  for (size_t i = 0; i < jobs.size(); ++i) {
    FlowResult serial = jobs[i].kind == FlowKind::Adaptor
                            ? runAdaptorFlow(*jobs[i].spec, jobs[i].config)
                            : runHlsCppFlow(*jobs[i].spec, jobs[i].config);
    const FlowResult &batched = outcome.results[i];
    ASSERT_TRUE(batched.ok) << batched.diagnostics;
    EXPECT_EQ(batched.kernelName, jobs[i].spec->name);
    // The whole synthesis report — latency, resources, loops, arrays —
    // must be byte-identical to the serial run.
    EXPECT_EQ(batched.synth.str(), serial.synth.str());
    EXPECT_EQ(batched.synth.json(), serial.synth.json());
    EXPECT_EQ(batched.adaptorStats, serial.adaptorStats);
    EXPECT_EQ(batched.hlsCpp, serial.hlsCpp);
  }
}

TEST(BatchRunner, DeterministicSubmissionOrder) {
  std::vector<BatchJob> jobs;
  for (const KernelSpec &spec : allKernels())
    jobs.push_back(makeJob(&spec, FlowKind::Adaptor));

  BatchOptions wide;
  wide.numThreads = 8;
  BatchOutcome parallel = runBatch(jobs, wide);
  BatchOptions narrow;
  narrow.numThreads = 1;
  BatchOutcome serial = runBatch(jobs, narrow);

  ASSERT_EQ(parallel.results.size(), jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    // Results sit at their submission index regardless of which worker
    // finished first, so any thread count yields the same ordering.
    EXPECT_EQ(parallel.results[i].kernelName, jobs[i].spec->name);
    EXPECT_EQ(parallel.results[i].synth.str(), serial.results[i].synth.str());
    EXPECT_EQ(parallel.trace.jobs[i].index, i);
  }
}

TEST(BatchRunner, FailingJobDoesNotPoisonNeighbors) {
  KernelSpec bomb = bombKernel();
  std::vector<BatchJob> jobs;
  jobs.push_back(makeJob(findKernel("fir"), FlowKind::Adaptor));
  jobs.push_back(makeJob(&bomb, FlowKind::Adaptor));
  jobs.push_back(makeJob(findKernel("gemm"), FlowKind::Adaptor));

  BatchOptions options;
  options.numThreads = 3;
  BatchOutcome outcome = runBatch(jobs, options);

  EXPECT_FALSE(outcome.results[1].ok);
  EXPECT_NE(outcome.results[1].diagnostics.find(
                "kernel construction exploded"),
            std::string::npos);
  EXPECT_EQ(outcome.trace.failures, 1u);
  EXPECT_FALSE(outcome.trace.jobs[1].error.empty());

  // The neighbors are untouched: bit-identical to serial runs.
  FlowResult serialFir = runAdaptorFlow(*findKernel("fir"), tunedConfig());
  FlowResult serialGemm = runAdaptorFlow(*findKernel("gemm"), tunedConfig());
  ASSERT_TRUE(outcome.results[0].ok) << outcome.results[0].diagnostics;
  ASSERT_TRUE(outcome.results[2].ok) << outcome.results[2].diagnostics;
  EXPECT_EQ(outcome.results[0].synth.str(), serialFir.synth.str());
  EXPECT_EQ(outcome.results[2].synth.str(), serialGemm.synth.str());
}

TEST(BatchRunner, NullSpecIsContained) {
  std::vector<BatchJob> jobs(1);
  BatchOutcome outcome = runBatch(jobs);
  EXPECT_FALSE(outcome.results[0].ok);
  EXPECT_NE(outcome.results[0].diagnostics.find("no kernel spec"),
            std::string::npos);
  EXPECT_EQ(outcome.trace.failures, 1u);
}

TEST(BatchRunner, TraceRecordsStagesAndWorkers) {
  std::vector<BatchJob> jobs;
  for (const char *name : {"gemm", "fir", "atax", "bicg"})
    jobs.push_back(makeJob(findKernel(name), FlowKind::Adaptor, "tuned"));

  BatchOptions options;
  options.numThreads = 2;
  BatchOutcome outcome = runBatch(jobs, options);

  EXPECT_EQ(outcome.trace.threads, 2u);
  EXPECT_EQ(outcome.trace.jobCount, 4u);
  EXPECT_EQ(outcome.trace.failures, 0u);
  EXPECT_GT(outcome.trace.wallMs, 0);
  EXPECT_GT(outcome.trace.serialMs, 0);
  ASSERT_EQ(outcome.trace.jobsPerWorker.size(), 2u);
  EXPECT_EQ(outcome.trace.jobsPerWorker[0] + outcome.trace.jobsPerWorker[1],
            4u);
  for (const JobTrace &job : outcome.trace.jobs) {
    EXPECT_TRUE(job.ok);
    EXPECT_TRUE(job.accepted);
    EXPECT_EQ(job.label, "tuned");
    EXPECT_GT(job.wallMs, 0);
    EXPECT_GE(job.worker, 0);
    EXPECT_LT(job.worker, 2);
    EXPECT_FALSE(job.spans.empty());
    EXPECT_GT(job.timings.totalMs, 0);
    EXPECT_FALSE(job.adaptorStats.empty());
  }

  std::string json = outcome.trace.json();
  EXPECT_NE(json.find("\"schema\": \"mha.batch-trace.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"kernel\": \"gemm\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\": \"bridge\""), std::string::npos);
  EXPECT_NE(json.find("adaptor.descriptors-eliminated"), std::string::npos);
}

TEST(BatchRunner, SinkObservesEveryJobAndTheBatch) {
  struct CountingSink : TraceSink {
    size_t jobCalls = 0;
    size_t batchCalls = 0;
    void onJobFinished(const JobTrace &) override { ++jobCalls; }
    void onBatchFinished(const BatchTrace &trace) override {
      ++batchCalls;
      lastJobCount = trace.jobs.size();
    }
    size_t lastJobCount = 0;
  } sink;

  std::vector<BatchJob> jobs;
  for (const char *name : {"gemm", "fir", "mvt"})
    jobs.push_back(makeJob(findKernel(name), FlowKind::Adaptor));
  BatchOptions options;
  options.numThreads = 3;
  options.sink = &sink;
  runBatch(jobs, options);

  EXPECT_EQ(sink.jobCalls, 3u);
  EXPECT_EQ(sink.batchCalls, 1u);
  EXPECT_EQ(sink.lastJobCount, 3u);
}

TEST(BatchRunner, JsonFileTraceSinkWritesFile) {
  const char *path = "batch_trace_test.json";
  JsonFileTraceSink sink(path);
  std::vector<BatchJob> jobs;
  jobs.push_back(makeJob(findKernel("gemm"), FlowKind::Adaptor));
  BatchOptions options;
  options.sink = &sink;
  runBatch(jobs, options);
  ASSERT_TRUE(sink.ok()) << sink.error();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("mha.batch-trace.v1"), std::string::npos);
  EXPECT_NE(buffer.str().find("\"kernel\": \"gemm\""), std::string::npos);
  std::remove(path);
}

TEST(BatchRunner, TraceJsonIsWellFormed) {
  std::vector<BatchJob> jobs;
  jobs.push_back(makeJob(findKernel("gemm"), FlowKind::Adaptor, "tuned"));
  jobs.push_back(makeJob(findKernel("fir"), FlowKind::HlsCpp,
                         "hostile \"label\"\twith\nnasties\\"));
  KernelSpec bomb = bombKernel();
  jobs.push_back(makeJob(&bomb, FlowKind::Adaptor)); // error path too
  BatchOptions options;
  options.numThreads = 2;
  BatchOutcome outcome = runBatch(jobs, options);

  std::string error;
  EXPECT_TRUE(json::validate(outcome.trace.json(), &error)) << error;
  // The schema is unchanged by the telemetry work: still v1.
  EXPECT_NE(outcome.trace.json().find("mha.batch-trace.v1"),
            std::string::npos);
}

TEST(BatchRunner, TraceCarriesEndToEndPercentiles) {
  std::vector<BatchJob> jobs;
  for (const char *name : {"gemm", "fir", "conv2d"})
    if (const KernelSpec *spec = findKernel(name))
      jobs.push_back(makeJob(spec, FlowKind::Adaptor));
  ASSERT_GE(jobs.size(), 2u);
  BatchOptions options;
  options.numThreads = 2;
  BatchOutcome outcome = runBatch(jobs, options);

  // Exact nearest-rank percentiles over per-job queue+wall time: with
  // every sample non-negative they are ordered and land in the trace JSON
  // (never on stdout — the summary line stays byte-identical).
  EXPECT_GE(outcome.trace.e2eP50Ms, 0.0);
  EXPECT_LE(outcome.trace.e2eP50Ms, outcome.trace.e2eP90Ms);
  EXPECT_LE(outcome.trace.e2eP90Ms, outcome.trace.e2eP99Ms);
  std::string json = outcome.trace.json();
  EXPECT_NE(json.find("\"e2e_ms_p50\""), std::string::npos);
  EXPECT_NE(json.find("\"e2e_ms_p90\""), std::string::npos);
  EXPECT_NE(json.find("\"e2e_ms_p99\""), std::string::npos);
}

TEST(BatchRunner, ChromeTraceHasWorkerLanesAndNestedSpans) {
  namespace tel = mha::telemetry;
  tel::Tracer &tracer = tel::Tracer::global();
  tracer.setEnabled(true);
  tracer.reset();

  std::vector<BatchJob> jobs;
  for (const char *name : {"gemm", "fir", "atax", "bicg"})
    jobs.push_back(makeJob(findKernel(name), FlowKind::Adaptor));
  BatchOptions options;
  options.numThreads = 2;
  BatchOutcome outcome = runBatch(jobs, options);
  tracer.setEnabled(false);
  ASSERT_EQ(outcome.trace.failures, 0u);

  std::vector<tel::TraceEvent> events = tracer.events();

  // One batch span on the submitting thread covering everything.
  auto batch = std::find_if(events.begin(), events.end(),
                            [](const tel::TraceEvent &e) {
                              return e.category == "batch";
                            });
  ASSERT_NE(batch, events.end());
  EXPECT_EQ(batch->name, "batch:4-jobs");

  // Every job span sits in its executing worker's lane (= worker index).
  std::vector<const tel::TraceEvent *> jobSpans;
  for (const tel::TraceEvent &event : events)
    if (event.category == "batch-job" && event.phase == 'X')
      jobSpans.push_back(&event);
  ASSERT_EQ(jobSpans.size(), 4u);
  for (const tel::TraceEvent *span : jobSpans) {
    EXPECT_GE(span->lane, 0);
    EXPECT_LT(span->lane, 2);
  }
  // The lane matches the worker recorded in the structured trace.
  for (const JobTrace &job : outcome.trace.jobs) {
    std::string name =
        "job:" + job.kernel + ":" + flowKindName(job.kind);
    auto it = std::find_if(jobSpans.begin(), jobSpans.end(),
                           [&](const tel::TraceEvent *e) {
                             return e->name == name;
                           });
    ASSERT_NE(it, jobSpans.end()) << name;
    EXPECT_EQ((*it)->lane, job.worker);
  }

  // Flow stages nest inside their job's span (same lane, contained
  // interval), and lir pass spans nest inside the bridge stage.
  auto within = [](const tel::TraceEvent &outer, const tel::TraceEvent &e) {
    return e.lane == outer.lane && e.startUs >= outer.startUs &&
           e.startUs + e.durUs <= outer.startUs + outer.durUs;
  };
  size_t nestedStages = 0;
  for (const tel::TraceEvent &event : events) {
    if (event.category != "flow-stage")
      continue;
    bool inSomeJob = std::any_of(jobSpans.begin(), jobSpans.end(),
                                 [&](const tel::TraceEvent *job) {
                                   return within(*job, event);
                                 });
    EXPECT_TRUE(inSomeJob) << event.name;
    ++nestedStages;
  }
  EXPECT_EQ(nestedStages, 4u * 3u); // mlirOpt + bridge + synth per job

  // The worker lanes are named in the exported trace, and the whole
  // document is valid JSON.
  std::string json = tracer.chromeTraceJson();
  std::string error;
  EXPECT_TRUE(json::validate(json, &error)) << error;
  // Every lane that actually executed a job is named after its worker.
  // (Jobs this fast can all land on one worker, so only used lanes are
  // guaranteed a name.)
  for (const tel::TraceEvent *span : jobSpans) {
    std::string laneName = "worker " + std::to_string(span->lane);
    EXPECT_NE(json.find(laneName), std::string::npos) << laneName;
  }
  tracer.reset();
}

TEST(BatchRunner, FailedJobEmitsInstantMarker) {
  namespace tel = mha::telemetry;
  tel::Tracer &tracer = tel::Tracer::global();
  tracer.setEnabled(true);
  tracer.reset();

  KernelSpec bomb = bombKernel();
  std::vector<BatchJob> jobs;
  jobs.push_back(makeJob(&bomb, FlowKind::Adaptor));
  runBatch(jobs);
  tracer.setEnabled(false);

  std::vector<tel::TraceEvent> events = tracer.events();
  auto it = std::find_if(events.begin(), events.end(),
                         [](const tel::TraceEvent &e) {
                           return e.phase == 'i' &&
                                  e.name == "job-failed:bomb";
                         });
  EXPECT_NE(it, events.end());
  tracer.reset();
}
