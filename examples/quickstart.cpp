// quickstart - runs one kernel (gemm) through both flows end to end:
//   1. the paper's adaptor flow: MLIR -> LLVM IR -> HLS adaptor -> HLS IR
//   2. the baseline flow:        MLIR -> HLS C++ -> HLS frontend -> HLS IR
// then synthesizes both with the virtual HLS backend, co-simulates against
// the host reference, and prints the two synthesis reports side by side.
#include "flow/Flow.h"
#include "lir/Printer.h"

#include <cstdio>

using namespace mha;

int main() {
  const flow::KernelSpec *spec = flow::findKernel("gemm");
  flow::KernelConfig config;
  config.pipelineII = 1;
  config.unrollFactor = 2;
  config.partitionFactor = 2;

  std::printf("=== kernel: %s (%s) ===\n\n", spec->name.c_str(),
              spec->description.c_str());

  flow::FlowResult adaptorResult = flow::runAdaptorFlow(*spec, config);
  std::printf("--- adaptor flow (MLIR -> LLVM IR -> HLS adaptor) ---\n");
  if (!adaptorResult.ok) {
    std::printf("FAILED:\n%s\n", adaptorResult.diagnostics.c_str());
    return 1;
  }
  std::string error;
  bool adaptorCosim = cosimAgainstReference(adaptorResult, *spec, error);
  std::printf("co-simulation: %s%s\n", adaptorCosim ? "PASS" : "FAIL ",
              adaptorCosim ? "" : error.c_str());
  std::printf("adaptor statistics:\n");
  for (const auto &[key, value] : adaptorResult.adaptorStats)
    std::printf("  %-36s %lld\n", key.c_str(),
                static_cast<long long>(value));
  std::printf("%s\n", adaptorResult.synth.str().c_str());

  flow::FlowResult cppResult = flow::runHlsCppFlow(*spec, config);
  std::printf("--- HLS C++ flow (MLIR -> C++ -> HLS frontend) ---\n");
  if (!cppResult.ok) {
    std::printf("FAILED:\n%s\n", cppResult.diagnostics.c_str());
    return 1;
  }
  bool cppCosim = cosimAgainstReference(cppResult, *spec, error);
  std::printf("co-simulation: %s%s\n", cppCosim ? "PASS" : "FAIL ",
              cppCosim ? "" : error.c_str());
  std::printf("emitted HLS C++:\n%s\n", cppResult.hlsCpp.c_str());
  std::printf("%s\n", cppResult.synth.str().c_str());

  const vhls::FunctionReport *a = adaptorResult.synth.top();
  const vhls::FunctionReport *c = cppResult.synth.top();
  std::printf("=== summary ===\n");
  std::printf("latency: adaptor=%lld cycles, hls-c++=%lld cycles, ratio=%.3f\n",
              static_cast<long long>(a->latencyCycles),
              static_cast<long long>(c->latencyCycles),
              static_cast<double>(a->latencyCycles) /
                  static_cast<double>(c->latencyCycles));
  return (adaptorCosim && cppCosim) ? 0 : 1;
}
