// custom_kernel - shows the library as an API: define your own kernel with
// the MiniMLIR builder (here: fused AXPY + dot-product postprocessing
// y = a*x + y; s[0] = sum(y*y)), give it a host reference, and push it
// through both flows like any built-in benchmark.
#include "flow/Flow.h"
#include "mir/transforms/MirTransforms.h"

#include <cstdio>

using namespace mha;

namespace {

constexpr int64_t N = 64;

/// y = 2.5*x + y, then s[0] = sum over y[i]^2.
flow::KernelSpec makeAxpyDotKernel() {
  flow::KernelSpec spec;
  spec.name = "axpydot";
  spec.description = "fused AXPY + self-dot (custom user kernel)";
  spec.bufferShapes = {{N}, {N}, {1}};
  spec.outputs = {1, 2};

  spec.build = [](mir::MContext &ctx, const flow::KernelConfig &cfg) {
    mir::OpBuilder b(ctx);
    mir::OwnedModule module = mir::OpBuilder::createModule();
    b.setInsertPoint(module.get().body());
    mir::FuncOp fn = b.createFunc(
        "axpydot", ctx.fnTy({ctx.memrefTy({N}, ctx.f64()),
                             ctx.memrefTy({N}, ctx.f64()),
                             ctx.memrefTy({1}, ctx.f64())},
                            {}));
    b.setInsertPoint(fn.entryBlock());
    mir::Value *x = fn.arg(0), *y = fn.arg(1), *s = fn.arg(2);
    mir::AffineMap id1 = mir::AffineMap::identity(ctx, 1);

    // Loop 1: y = 2.5*x + y (streaming, pipelines at II=1).
    mir::ForOp axpy = b.affineFor(0, N);
    if (cfg.applyDirectives && cfg.pipelineII > 0)
      mir::setPipelineDirective(axpy, cfg.pipelineII);
    b.setInsertPointToLoopBody(axpy);
    mir::Value *i = axpy.inductionVar();
    mir::Value *xi = b.affineLoad(x, id1, {i});
    mir::Value *yi = b.affineLoad(y, id1, {i});
    mir::Value *scaled =
        b.binary(mir::ops::MulF, b.constantFloat(2.5, ctx.f64()), xi);
    b.affineStore(b.binary(mir::ops::AddF, scaled, yi), y, id1, {i});
    b.setInsertPoint(fn.entryBlock());

    // s[0] = 0; Loop 2: s[0] += y[i]*y[i] (recurrence-bound).
    mir::AffineMap zeroMap(0, 0, {ctx.affineConst(0)});
    b.affineStore(b.constantFloat(0.0, ctx.f64()), s, zeroMap, {});
    mir::ForOp dot = b.affineFor(0, N);
    if (cfg.applyDirectives && cfg.pipelineII > 0)
      mir::setPipelineDirective(dot, cfg.pipelineII);
    b.setInsertPointToLoopBody(dot);
    mir::Value *j = dot.inductionVar();
    mir::Value *yj = b.affineLoad(y, id1, {j});
    mir::Value *sq = b.binary(mir::ops::MulF, yj, yj);
    mir::Value *acc = b.affineLoad(s, zeroMap, {});
    b.affineStore(b.binary(mir::ops::AddF, acc, sq), s, zeroMap, {});

    b.setInsertPoint(fn.entryBlock());
    b.createReturn();
    return module;
  };

  spec.reference = [](flow::Buffers &buf) {
    auto &x = buf[0];
    auto &y = buf[1];
    auto &s = buf[2];
    for (int64_t i = 0; i < N; ++i)
      y[i] = (2.5 * x[i]) + y[i];
    s[0] = 0.0;
    for (int64_t j = 0; j < N; ++j)
      s[0] = s[0] + y[j] * y[j];
  };
  return spec;
}

} // namespace

int main() {
  flow::KernelSpec spec = makeAxpyDotKernel();
  flow::KernelConfig config;
  config.pipelineII = 1;

  std::printf("custom kernel: %s — %s\n\n", spec.name.c_str(),
              spec.description.c_str());

  flow::FlowResult adaptorFlow = flow::runAdaptorFlow(spec, config);
  flow::FlowResult cppFlow = flow::runHlsCppFlow(spec, config);
  if (!adaptorFlow.ok || !cppFlow.ok) {
    std::fprintf(stderr, "flow failed:\n%s\n%s\n",
                 adaptorFlow.diagnostics.c_str(),
                 cppFlow.diagnostics.c_str());
    return 1;
  }
  std::string error;
  bool cosimA = flow::cosimAgainstReference(adaptorFlow, spec, error);
  std::printf("adaptor flow: latency=%lld cycles, co-sim %s\n",
              static_cast<long long>(adaptorFlow.synth.top()->latencyCycles),
              cosimA ? "PASS" : error.c_str());
  bool cosimC = flow::cosimAgainstReference(cppFlow, spec, error);
  std::printf("hls-c++ flow: latency=%lld cycles, co-sim %s\n",
              static_cast<long long>(cppFlow.synth.top()->latencyCycles),
              cosimC ? "PASS" : error.c_str());

  std::printf("\nloop detail (adaptor flow):\n");
  for (const vhls::LoopReport &loop : adaptorFlow.synth.top()->loops) {
    std::printf("  %-14s trip=%-4lld %s", loop.name.c_str(),
                static_cast<long long>(loop.tripCount),
                loop.pipelined ? "pipelined" : "sequential");
    if (loop.pipelined)
      std::printf(" II=%lld (RecMII=%lld)",
                  static_cast<long long>(loop.achievedII),
                  static_cast<long long>(loop.recMII));
    std::printf(" latency=%lld\n", static_cast<long long>(loop.totalLatency));
  }
  std::printf("\nthe AXPY loop streams at II=1 while the dot loop is "
              "recurrence-limited by the\nfloating-point accumulation — "
              "identically in both flows.\n");
  return (cosimA && cosimC) ? 0 : 1;
}
