// adaptor_tool - a developer-facing CLI around the HLS adaptor.
//
//   adaptor_tool <kernel> [options]
//     --print-before        dump the raw MLIR-lowered LLVM IR
//     --print-after         dump the HLS-readable IR after the adaptor
//     --print-mlir          dump the MLIR the kernel starts from
//     --no-descriptor-elim / --no-intrinsic-legalize / --no-gep-canon /
//     --no-ptr-recovery / --no-metadata-convert / --no-attr-scrub
//                           disable an adaptor stage (ablation)
//     --strict              reject on acceptance warnings too
//     --json                print the synthesis report as JSON
//
// Shows the version gap concretely: run with --print-before --print-after
// and diff the two dumps.
#include "adaptor/Adaptor.h"
#include "flow/Kernels.h"
#include "lir/HlsCompat.h"
#include "lir/LContext.h"
#include "lir/Printer.h"
#include "lowering/Lowering.h"
#include "mir/MContext.h"
#include "mir/Pass.h"
#include "mir/Printer.h"
#include "mir/transforms/MirTransforms.h"
#include "vhls/Vhls.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace mha;

int main(int argc, char **argv) {
  std::string kernelName = "gemm";
  bool printBefore = false, printAfter = false, printMlir = false;
  bool strict = false, json = false;
  adaptor::AdaptorOptions options;
  options.verifyCompat = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--print-before")
      printBefore = true;
    else if (arg == "--print-after")
      printAfter = true;
    else if (arg == "--print-mlir")
      printMlir = true;
    else if (arg == "--strict")
      strict = true;
    else if (arg == "--json")
      json = true;
    else if (arg == "--no-descriptor-elim")
      options.runDescriptorElimination = false;
    else if (arg == "--no-intrinsic-legalize")
      options.runIntrinsicLegalize = false;
    else if (arg == "--no-gep-canon")
      options.runGepCanonicalize = false;
    else if (arg == "--no-ptr-recovery")
      options.runPointerTypeRecovery = false;
    else if (arg == "--no-metadata-convert")
      options.runMetadataConvert = false;
    else if (arg == "--no-attr-scrub")
      options.runAttributeScrub = false;
    else if (arg[0] != '-')
      kernelName = arg;
    else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    }
  }

  const flow::KernelSpec *spec = flow::findKernel(kernelName);
  if (!spec) {
    std::fprintf(stderr, "unknown kernel '%s'\n%s\n", kernelName.c_str(),
                 flow::availableKernelsHint().c_str());
    return 2;
  }

  flow::KernelConfig config;
  config.pipelineII = 1;
  config.partitionFactor = 2;

  DiagnosticEngine diags;
  mir::MContext mctx;
  mir::OwnedModule mlirModule = spec->build(mctx, config);
  if (printMlir)
    std::printf("=== MLIR (affine level) ===\n%s\n",
                mir::printModule(mlirModule.get()).c_str());

  mir::MPassManager mpm;
  mpm.add(mir::createCanonicalizePass());
  mpm.add(mir::createAffineToScfPass());
  mpm.add(mir::createCanonicalizePass());
  if (!mpm.run(mlirModule.get(), diags)) {
    std::fprintf(stderr, "MLIR pipeline failed:\n%s\n", diags.str().c_str());
    return 1;
  }

  lir::LContext lctx;
  auto module = lowering::lowerToLIR(mlirModule.get(), lctx, {}, diags);
  if (!module) {
    std::fprintf(stderr, "lowering failed:\n%s\n", diags.str().c_str());
    return 1;
  }
  if (printBefore)
    std::printf("=== LLVM IR before the adaptor (modern conventions) ===\n"
                "%s\n",
                lir::printModule(*module).c_str());

  lir::PassManager pm(/*verifyEach=*/true);
  adaptor::buildAdaptorPipeline(pm, options);
  if (!pm.run(*module, diags)) {
    std::fprintf(stderr, "adaptor failed:\n%s\n", diags.str().c_str());
    return 1;
  }
  if (printAfter)
    std::printf("=== HLS-readable IR after the adaptor ===\n%s\n",
                lir::printModule(*module).c_str());

  std::printf("=== adaptor pass activity ===\n");
  for (const lir::PassRunRecord &record : pm.records()) {
    std::printf("%-32s %s (%.2f ms)\n", record.passName.c_str(),
                record.changed ? "changed" : "no-op", record.millis);
    for (const auto &[key, value] : record.stats)
      std::printf("    %-36s %lld\n", key.c_str(),
                  static_cast<long long>(value));
  }

  vhls::SynthesisOptions synthOptions;
  synthOptions.topFunction = spec->name;
  synthOptions.strictAcceptance = strict;
  DiagnosticEngine synthDiags;
  vhls::SynthesisReport report =
      vhls::synthesize(*module, synthOptions, synthDiags);
  std::printf("\n%s", json ? report.json().c_str() : report.str().c_str());
  if (!synthDiags.diagnostics().empty())
    std::printf("\nfrontend diagnostics:\n%s", synthDiags.str().c_str());
  return report.accepted ? 0 : 1;
}
