// textual_kernel - demonstrates the MiniMLIR textual format: builds a
// kernel with the API, prints it, re-parses the text into a fresh context,
// and runs the *parsed* module through the adaptor flow. The printed text
// is also what you would check into a test corpus.
#include "flow/Flow.h"
#include "mir/Parser.h"
#include "mir/Printer.h"
#include "mir/transforms/MirTransforms.h"

#include <cstdio>

using namespace mha;

namespace {

constexpr int64_t N = 48;

/// y[i] = 3.0*x[i] + y[i] over N elements, pipelined.
flow::KernelSpec makeTextualKernel() {
  flow::KernelSpec spec;
  spec.name = "saxpy";
  spec.description = "SAXPY defined via the textual MLIR round trip";
  spec.bufferShapes = {{N}, {N}};
  spec.outputs = {1};

  spec.build = [](mir::MContext &ctx, const flow::KernelConfig &cfg) {
    // Build once with the API...
    mir::OpBuilder b(ctx);
    mir::OwnedModule module = mir::OpBuilder::createModule();
    b.setInsertPoint(module.get().body());
    mir::FuncOp fn = b.createFunc(
        "saxpy", ctx.fnTy({ctx.memrefTy({N}, ctx.f64()),
                           ctx.memrefTy({N}, ctx.f64())},
                          {}));
    b.setInsertPoint(fn.entryBlock());
    mir::ForOp loop = b.affineFor(0, N);
    if (cfg.applyDirectives && cfg.pipelineII > 0)
      mir::setPipelineDirective(loop, cfg.pipelineII);
    b.setInsertPointToLoopBody(loop);
    mir::AffineMap id = mir::AffineMap::identity(ctx, 1);
    mir::Value *i = loop.inductionVar();
    mir::Value *xi = b.affineLoad(fn.arg(0), id, {i});
    mir::Value *yi = b.affineLoad(fn.arg(1), id, {i});
    mir::Value *ax =
        b.binary(mir::ops::MulF, b.constantFloat(3.0, ctx.f64()), xi);
    b.affineStore(b.binary(mir::ops::AddF, ax, yi), fn.arg(1), id, {i});
    b.setInsertPoint(fn.entryBlock());
    b.createReturn();

    // ...print it, and hand back the *parsed* module: the flow below runs
    // entirely on IR that went through the textual format.
    std::string text = mir::printModule(module.get());
    std::printf("=== MLIR textual form ===\n%s\n", text.c_str());
    DiagnosticEngine diags;
    auto reparsed = mir::parseModule(text, ctx, diags);
    if (!reparsed) {
      std::fprintf(stderr, "reparse failed:\n%s\n", diags.str().c_str());
      std::exit(1);
    }
    return std::move(*reparsed);
  };

  spec.reference = [](flow::Buffers &buf) {
    auto &x = buf[0];
    auto &y = buf[1];
    for (int64_t i = 0; i < N; ++i)
      y[i] = (3.0 * x[i]) + y[i];
  };
  return spec;
}

} // namespace

int main() {
  flow::KernelSpec spec = makeTextualKernel();
  flow::KernelConfig config;
  config.pipelineII = 1;
  flow::FlowResult result = flow::runAdaptorFlow(spec, config);
  if (!result.ok) {
    std::fprintf(stderr, "flow failed:\n%s\n", result.diagnostics.c_str());
    return 1;
  }
  std::string error;
  bool cosim = flow::cosimAgainstReference(result, spec, error);
  std::printf("parsed-module flow: latency=%lld cycles, co-sim %s\n",
              static_cast<long long>(result.synth.top()->latencyCycles),
              cosim ? "PASS" : error.c_str());
  return cosim ? 0 : 1;
}
