// design_space_exploration - sweeps the ScaleHLS-style design knobs
// (pipeline II, unroll factor, partition factor) for one kernel through the
// adaptor flow and prints the design points with the Pareto frontier
// (latency vs DSP) marked. The enumeration, parallel evaluation, QoR cache
// and Pareto bookkeeping all live in the dse library; this example is a
// thin wrapper around it (the full CLI is tools/mha-dse).
//
//   design_space_exploration [kernel]     (default: jacobi2d)
#include "dse/Dse.h"

#include <cstdio>

using namespace mha;

int main(int argc, char **argv) {
  std::string kernelName = argc > 1 ? argv[1] : "jacobi2d";
  const flow::KernelSpec *spec = flow::findKernel(kernelName);
  if (!spec) {
    std::fprintf(stderr, "unknown kernel '%s'\n%s\n", kernelName.c_str(),
                 flow::availableKernelsHint().c_str());
    return 2;
  }

  // The same ii/unroll/partition grid the hand-rolled version swept, now
  // deduplicated against the kernel's valid design space (unroll factors
  // clamp to divisors of the innermost trip count).
  dse::DesignSpaceOptions spaceOptions;
  spaceOptions.exploreDataflow = false;
  dse::DesignSpace space(*spec, spaceOptions);

  dse::EvaluatorOptions evalOptions;
  evalOptions.cosim = true; // never report incorrect designs
  dse::Evaluator evaluator(*spec, evalOptions);

  std::printf("exploring %zu design points of %s...\n\n", space.size(),
              spec->name.c_str());

  std::optional<dse::DseResult> result =
      dse::runDse(space, evaluator, "exhaustive", {},
                  dse::latencyDspObjectives());
  if (!result)
    return 1;

  std::printf("%-4s %-7s %-10s %12s %6s %6s %8s  %s\n", "II", "unroll",
              "partition", "latency", "DSP", "BRAM", "LUT", "");
  for (const dse::VisitedPoint &p : result->visited) {
    if (!p.qor.ok || !p.qor.cosimOk)
      continue;
    bool pareto = false;
    for (const dse::ArchiveEntry &entry : result->pareto)
      if (entry.key == dse::configKey(p.config))
        pareto = true;
    std::printf("%-4lld %-7lld %-10lld %12lld %6lld %6lld %8lld  %s\n",
                static_cast<long long>(p.config.pipelineII),
                static_cast<long long>(p.config.unrollFactor),
                static_cast<long long>(p.config.partitionFactor),
                static_cast<long long>(p.qor.latencyCycles),
                static_cast<long long>(p.qor.dsp),
                static_cast<long long>(p.qor.bram),
                static_cast<long long>(p.qor.lut),
                pareto ? "<-- pareto" : "");
  }

  if (!result->pareto.empty()) {
    // The archive is sorted by objective vector, so front() is fastest.
    const dse::ArchiveEntry &best = result->pareto.front();
    std::printf("\nfastest design: II=%lld unroll=%lld partition=%lld -> "
                "%lld cycles, %lld DSP\n",
                static_cast<long long>(best.config.pipelineII),
                static_cast<long long>(best.config.unrollFactor),
                static_cast<long long>(best.config.partitionFactor),
                static_cast<long long>(best.qor.latencyCycles),
                static_cast<long long>(best.qor.dsp));
  }
  return 0;
}
