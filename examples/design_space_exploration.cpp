// design_space_exploration - sweeps the ScaleHLS-style design knobs
// (pipeline II, unroll factor, partition factor) for one kernel through the
// adaptor flow, in parallel on a thread pool, and prints the design points
// with the Pareto frontier (latency vs DSP) marked.
//
//   design_space_exploration [kernel]     (default: jacobi2d)
#include "flow/Flow.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <vector>

using namespace mha;

namespace {

struct DesignPoint {
  flow::KernelConfig config;
  int64_t latency = 0;
  int64_t dsp = 0;
  int64_t bram = 0;
  int64_t lut = 0;
  bool ok = false;
  bool pareto = false;
};

} // namespace

int main(int argc, char **argv) {
  std::string kernelName = argc > 1 ? argv[1] : "jacobi2d";
  const flow::KernelSpec *spec = flow::findKernel(kernelName);
  if (!spec) {
    std::fprintf(stderr, "unknown kernel '%s'\n", kernelName.c_str());
    return 2;
  }

  // The sweep grid.
  std::vector<DesignPoint> points;
  for (int64_t ii : {0, 1, 2}) // 0 = no pipeline directive
    for (int64_t unroll : {1, 2, 4, 8})
      for (int64_t partition : {1, 2, 4, 8}) {
        DesignPoint p;
        p.config.pipelineII = ii;
        p.config.unrollFactor = unroll;
        p.config.partitionFactor = partition;
        points.push_back(p);
      }

  std::printf("exploring %zu design points of %s on %u threads...\n\n",
              points.size(), spec->name.c_str(),
              std::max(1u, std::thread::hardware_concurrency()));

  ThreadPool pool;
  parallelFor(pool, points.size(), [&](size_t i) {
    flow::FlowResult result = flow::runAdaptorFlow(*spec, points[i].config);
    if (!result.ok)
      return;
    std::string error;
    if (!flow::cosimAgainstReference(result, *spec, error))
      return; // never report incorrect designs
    const vhls::FunctionReport *top = result.synth.top();
    points[i].latency = top->latencyCycles;
    points[i].dsp = top->resources.dsp;
    points[i].bram = top->resources.bram;
    points[i].lut = top->resources.lut;
    points[i].ok = true;
  });

  // Pareto frontier on (latency, dsp): a point survives if nothing is
  // strictly better on one axis and at least as good on the other.
  for (DesignPoint &p : points) {
    if (!p.ok)
      continue;
    p.pareto = std::none_of(
        points.begin(), points.end(), [&](const DesignPoint &q) {
          if (!q.ok || &q == &p)
            return false;
          bool noWorse = q.latency <= p.latency && q.dsp <= p.dsp;
          bool better = q.latency < p.latency || q.dsp < p.dsp;
          return noWorse && better;
        });
  }

  std::printf("%-4s %-7s %-10s %12s %6s %6s %8s  %s\n", "II", "unroll",
              "partition", "latency", "DSP", "BRAM", "LUT", "");
  for (const DesignPoint &p : points) {
    if (!p.ok)
      continue;
    std::printf("%-4lld %-7lld %-10lld %12lld %6lld %6lld %8lld  %s\n",
                static_cast<long long>(p.config.pipelineII),
                static_cast<long long>(p.config.unrollFactor),
                static_cast<long long>(p.config.partitionFactor),
                static_cast<long long>(p.latency),
                static_cast<long long>(p.dsp),
                static_cast<long long>(p.bram),
                static_cast<long long>(p.lut),
                p.pareto ? "<-- pareto" : "");
  }

  const DesignPoint *best = nullptr;
  for (const DesignPoint &p : points)
    if (p.ok && (!best || p.latency < best->latency))
      best = &p;
  if (best)
    std::printf("\nfastest design: II=%lld unroll=%lld partition=%lld -> "
                "%lld cycles, %lld DSP\n",
                static_cast<long long>(best->config.pipelineII),
                static_cast<long long>(best->config.unrollFactor),
                static_cast<long long>(best->config.partitionFactor),
                static_cast<long long>(best->latency),
                static_cast<long long>(best->dsp));
  return 0;
}
