// Figure 2 — achieved pipeline II vs target II per kernel, both flows.
// Shows the directive reaches the scheduler intact on both paths and that
// recurrence-limited kernels (accumulations) clamp identically.
#include "BenchCommon.h"

using namespace mha;
using namespace mha::bench;

namespace {

int64_t worstInnerII(const flow::FlowResult &result) {
  int64_t ii = 0;
  for (const vhls::LoopReport &loop : result.synth.top()->loops)
    if (loop.pipelined)
      ii = std::max(ii, loop.achievedII);
  return ii;
}

int64_t worstRecMII(const flow::FlowResult &result) {
  int64_t v = 0;
  for (const vhls::LoopReport &loop : result.synth.top()->loops)
    if (loop.pipelined)
      v = std::max(v, loop.recMII);
  return v;
}

} // namespace

int main(int argc, char **argv) {
  JsonReport report("fig2_pipeline_ii", argc, argv);
  std::printf("Figure 2: achieved pipeline II vs target II (innermost "
              "loops)\n");
  std::printf("%-10s %8s | %12s %12s | %8s\n", "kernel", "target",
              "hls-c++ II", "adaptor II", "RecMII");
  printRule(62);
  for (const flow::KernelSpec &spec : flow::allKernels()) {
    for (int64_t target : {1, 4}) {
      flow::KernelConfig config;
      config.pipelineII = target;
      config.partitionFactor = 2;
      flow::FlowResult cpp =
          mustRun(flow::runHlsCppFlow(spec, config), "hls-c++");
      flow::FlowResult adaptorFlow =
          mustRun(flow::runAdaptorFlow(spec, config), "adaptor");
      std::printf("%-10s %8lld | %12lld %12lld | %8lld\n", spec.name.c_str(),
                  static_cast<long long>(target),
                  static_cast<long long>(worstInnerII(cpp)),
                  static_cast<long long>(worstInnerII(adaptorFlow)),
                  static_cast<long long>(worstRecMII(adaptorFlow)));
      report.beginRow();
      report.field("kernel", spec.name);
      report.field("target_ii", target);
      report.field("hls_cpp_ii", worstInnerII(cpp));
      report.field("adaptor_ii", worstInnerII(adaptorFlow));
      report.field("rec_mii", worstRecMII(adaptorFlow));
    }
  }
  std::printf("\nAchieved II = max(target, RecMII, ResMII); accumulation "
              "kernels are recurrence-limited on both paths.\n");
  return report.finish();
}
