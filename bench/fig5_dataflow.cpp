// Figure 5 (extension) — function-level dataflow: task-level pipelining of
// the top-level loop nests. Multi-nest kernels (mvt's two independent
// matrix-vector products, atax's produce/consume nests, mm2's chained
// matmuls) collapse from the *sum* of their nest latencies to the *max*.
// The directive travels as `#pragma HLS dataflow` on the C++ path and as
// the mha.dataflow -> xlx.dataflow function attribute through the adaptor.
#include "BenchCommon.h"

using namespace mha;
using namespace mha::bench;

int main(int argc, char **argv) {
  JsonReport report("fig5_dataflow", argc, argv);
  std::printf("Figure 5: function-level dataflow (task overlap)\n");
  std::printf("%-10s %16s %16s %9s | %14s\n", "kernel", "no dataflow",
              "dataflow", "speedup", "adaptor ratio");
  printRule(72);
  for (const char *name : {"mvt", "atax", "mm2", "rmsnorm", "bicg"}) {
    const flow::KernelSpec *spec = flow::findKernel(name);
    flow::KernelConfig off = defaultConfig();
    flow::KernelConfig on = off;
    on.dataflow = true;

    flow::FlowResult plainCpp =
        mustRun(flow::runHlsCppFlow(*spec, off), "hls-c++ (no df)");
    flow::FlowResult dfCpp =
        mustRun(flow::runHlsCppFlow(*spec, on), "hls-c++ (df)");
    mustCosim(dfCpp, *spec);
    flow::FlowResult dfAdaptor =
        mustRun(flow::runAdaptorFlow(*spec, on), "adaptor (df)");
    mustCosim(dfAdaptor, *spec);

    int64_t base = plainCpp.synth.top()->latencyCycles;
    int64_t c = dfCpp.synth.top()->latencyCycles;
    int64_t a = dfAdaptor.synth.top()->latencyCycles;
    std::printf("%-10s %16lld %16lld %8.2fx | %14.3f\n", name,
                static_cast<long long>(base), static_cast<long long>(c),
                static_cast<double>(base) / static_cast<double>(c),
                static_cast<double>(a) / static_cast<double>(c));
    report.beginRow();
    report.field("kernel", name);
    report.field("no_dataflow_latency", base);
    report.field("dataflow_latency", c);
    report.field("adaptor_dataflow_latency", a);
    report.field("speedup", static_cast<double>(base) / static_cast<double>(c));
    report.field("adaptor_ratio",
                 static_cast<double>(a) / static_cast<double>(c));
  }
  std::printf("\nbicg has a single top-level nest: dataflow is a no-op "
              "there (speedup 1.00x), as expected.\n");
  return report.finish();
}
