// Figure 4 — adaptor ablation: disable one stage at a time and report what
// the HLS frontend says. Shows which IR features actually cause rejection
// (opaque pointers, descriptors, intrinsics, metadata, attributes) versus
// QoR-only degradation (flat GEPs -> single-bank arrays -> higher II).
#include "BenchCommon.h"
#include "lir/HlsCompat.h"
#include "lir/PassManager.h"
#include "lowering/Lowering.h"
#include "mir/MContext.h"
#include "mir/Pass.h"
#include "mir/transforms/MirTransforms.h"

using namespace mha;
using namespace mha::bench;

namespace {

struct Variant {
  const char *label;
  void (*tweak)(adaptor::AdaptorOptions &);
};

/// Runs the kernel through lowering + a tweaked adaptor + synthesis;
/// reports acceptance and latency (0 when rejected).
void runVariant(const flow::KernelSpec &spec, const Variant &variant,
                JsonReport &report) {
  flow::KernelConfig config = defaultConfig();
  config.unrollFactor = 4;
  config.partitionFactor = 4;

  mir::MContext mctx;
  DiagnosticEngine diags;
  mir::OwnedModule mod = spec.build(mctx, config);
  mir::MPassManager mpm;
  mpm.add(mir::createCanonicalizePass());
  mpm.add(mir::createAffineToScfPass());
  mpm.add(mir::createCanonicalizePass());
  if (!mpm.run(mod.get(), diags))
    std::exit(1);
  lir::LContext lctx;
  auto module = lowering::lowerToLIR(mod.get(), lctx, {}, diags);
  if (!module)
    std::exit(1);

  adaptor::AdaptorOptions options;
  options.verifyCompat = false;
  variant.tweak(options);
  lir::PassManager pm(true);
  adaptor::buildAdaptorPipeline(pm, options);
  report.beginRow();
  report.field("kernel", spec.name);
  report.field("variant", variant.label);
  if (!pm.run(*module, diags)) {
    std::printf("  %-28s pipeline error\n", variant.label);
    report.field("status", "pipeline-error");
    return;
  }
  DiagnosticEngine synthDiags;
  vhls::SynthesisOptions synthOptions;
  synthOptions.topFunction = spec.name;
  vhls::SynthesisReport synthReport =
      vhls::synthesize(*module, synthOptions, synthDiags);
  if (!synthReport.accepted) {
    std::string reasons;
    for (const auto &[category, count] : synthReport.compat.violations) {
      (void)count;
      if (category != "unshaped-gep")
        reasons += category + " ";
    }
    std::printf("  %-28s REJECTED  (%s)\n", variant.label, reasons.c_str());
    report.field("status", "rejected");
    report.field("reasons", reasons);
    return;
  }
  std::printf("  %-28s accepted  latency=%-10lld warnings=%lld\n",
              variant.label,
              static_cast<long long>(synthReport.top()->latencyCycles),
              static_cast<long long>(synthReport.compat.warnings));
  report.field("status", "accepted");
  report.field("latency", synthReport.top()->latencyCycles);
  report.field("warnings", synthReport.compat.warnings);
}

} // namespace

int main(int argc, char **argv) {
  JsonReport report("fig4_ablation", argc, argv);
  const Variant variants[] = {
      {"full adaptor", [](adaptor::AdaptorOptions &) {}},
      {"- descriptor elimination",
       [](adaptor::AdaptorOptions &o) { o.runDescriptorElimination = false; }},
      {"- intrinsic legalize",
       [](adaptor::AdaptorOptions &o) { o.runIntrinsicLegalize = false; }},
      {"- gep canonicalize",
       [](adaptor::AdaptorOptions &o) { o.runGepCanonicalize = false; }},
      {"- pointer type recovery",
       [](adaptor::AdaptorOptions &o) { o.runPointerTypeRecovery = false; }},
      {"- metadata convert",
       [](adaptor::AdaptorOptions &o) { o.runMetadataConvert = false; }},
      {"- attribute scrub",
       [](adaptor::AdaptorOptions &o) { o.runAttributeScrub = false; }},
  };

  std::printf("Figure 4: adaptor ablation (unroll=4, partition=4)\n");
  for (const char *kernel : {"gemm", "atax"}) {
    std::printf("%s:\n", kernel);
    const flow::KernelSpec *spec = flow::findKernel(kernel);
    for (const Variant &variant : variants)
      runVariant(*spec, variant, report);
  }
  std::printf("\nWithout gep-canonicalize the IR is *accepted* but arrays "
              "collapse to a single bank\n(flat pointer arithmetic), so "
              "partitioning stops helping: QoR loss, not rejection.\n");
  return report.finish();
}
