// Figure 8 (extension) — MLIR-level loop interchange as a cross-layer
// optimization. Matrix multiply with the reduction loop innermost (ijk) is
// recurrence-bound: C[i][j] accumulates through a 7-cycle fadd chain, so
// the pipeline clamps at II=7. Interchanging j and k at the *MLIR* level
// (mir::interchangeAffineLoops) makes the store address vary every
// iteration — no carried recurrence — and the same backend reaches II=1.
// This is exactly the cross-layer benefit the paper's introduction argues
// a direct IR bridge enables; both flows profit identically.
#include "BenchCommon.h"
#include "mir/transforms/MirTransforms.h"

using namespace mha;
using namespace mha::bench;

namespace {

constexpr int64_t N = 32;

/// gemm with a separate zero-init nest so the (j,k) pair is perfectly
/// nested and legally interchangeable.
flow::KernelSpec makeGemm(bool interchange) {
  flow::KernelSpec spec;
  spec.name = "gemmx";
  spec.description = "gemm, separate init nest";
  spec.bufferShapes = {{N, N}, {N, N}, {N, N}};
  spec.outputs = {2};
  spec.build = [interchange](mir::MContext &ctx,
                             const flow::KernelConfig &cfg) {
    mir::OpBuilder b(ctx);
    mir::OwnedModule module = mir::OpBuilder::createModule();
    b.setInsertPoint(module.get().body());
    mir::Type *m = ctx.memrefTy({N, N}, ctx.f64());
    mir::FuncOp fn = b.createFunc("gemmx", ctx.fnTy({m, m, m}, {}));
    b.setInsertPoint(fn.entryBlock());
    mir::Value *A = fn.arg(0), *B = fn.arg(1), *C = fn.arg(2);
    if (cfg.applyDirectives && cfg.partitionFactor > 1) {
      mir::addArrayPartitionDirective(fn, 1, 1, cfg.partitionFactor,
                                      "cyclic"); // B columns (j)
      mir::addArrayPartitionDirective(fn, 2, 1, cfg.partitionFactor,
                                      "cyclic"); // C columns (j)
    }
    mir::AffineMap id = mir::AffineMap::identity(ctx, 2);

    // init: C = 0
    mir::ForOp i0 = b.affineFor(0, N);
    b.setInsertPointToLoopBody(i0);
    mir::ForOp j0 = b.affineFor(0, N);
    if (cfg.applyDirectives && cfg.pipelineII > 0)
      mir::setPipelineDirective(j0, cfg.pipelineII);
    b.setInsertPointToLoopBody(j0);
    b.affineStore(b.constantFloat(0.0, ctx.f64()), C, id,
                  {i0.inductionVar(), j0.inductionVar()});
    b.setInsertPoint(fn.entryBlock());

    // compute: for i { for j { for k { C[i][j] += A[i][k]*B[k][j] } } }
    mir::ForOp iLoop = b.affineFor(0, N);
    b.setInsertPointToLoopBody(iLoop);
    mir::ForOp jLoop = b.affineFor(0, N);
    b.setInsertPointToLoopBody(jLoop);
    mir::ForOp kLoop = b.affineFor(0, N);
    if (cfg.applyDirectives && cfg.pipelineII > 0)
      mir::setPipelineDirective(kLoop, cfg.pipelineII);
    b.setInsertPointToLoopBody(kLoop);
    mir::Value *i = iLoop.inductionVar();
    mir::Value *j = jLoop.inductionVar();
    mir::Value *k = kLoop.inductionVar();
    mir::Value *prod = b.binary(mir::ops::MulF,
                                b.affineLoad(A, id, {i, k}),
                                b.affineLoad(B, id, {k, j}));
    b.affineStore(
        b.binary(mir::ops::AddF, b.affineLoad(C, id, {i, j}), prod), C, id,
        {i, j});
    b.setInsertPoint(fn.entryBlock());
    b.createReturn();

    if (interchange) {
      // Swap j and k: the directive (on the innermost loop) stays with
      // the inner position; the recurrence becomes per-column.
      bool ok = mir::interchangeAffineLoops(jLoop);
      if (!ok) {
        std::fprintf(stderr, "interchange failed\n");
        std::exit(1);
      }
    }
    return module;
  };
  spec.reference = [](flow::Buffers &buf) {
    auto &A = buf[0], &B = buf[1], &C = buf[2];
    for (int64_t i = 0; i < N; ++i)
      for (int64_t j = 0; j < N; ++j)
        C[i * N + j] = 0.0;
    // Interchange permutes the j/k iteration order, but each C[i][j]
    // still accumulates its k terms in increasing order, so the FP result
    // is bit-identical for both variants.
    for (int64_t i = 0; i < N; ++i)
      for (int64_t j = 0; j < N; ++j)
        for (int64_t k = 0; k < N; ++k)
          C[i * N + j] = C[i * N + j] + A[i * N + k] * B[k * N + j];
  };
  return spec;
}

} // namespace

int main(int argc, char **argv) {
  JsonReport report("fig8_interchange", argc, argv);
  std::printf("Figure 8: MLIR-level loop interchange on gemm "
              "(ijk vs ikj-equivalent)\n");
  std::printf("%-14s %14s %14s %9s | %10s\n", "variant", "hls-c++",
              "adaptor", "ratio", "inner II");
  printRule(70);
  for (bool interchange : {false, true}) {
    flow::KernelSpec spec = makeGemm(interchange);
    flow::KernelConfig config;
    config.pipelineII = 1;
    config.partitionFactor = 2;
    flow::FlowResult cpp =
        mustRun(flow::runHlsCppFlow(spec, config), "hls-c++");
    mustCosim(cpp, spec);
    flow::FlowResult adaptorFlow =
        mustRun(flow::runAdaptorFlow(spec, config), "adaptor");
    mustCosim(adaptorFlow, spec);
    int64_t innerII = 0;
    for (const vhls::LoopReport &loop : adaptorFlow.synth.top()->loops)
      if (loop.pipelined)
        innerII = std::max(innerII, loop.achievedII);
    int64_t c = cpp.synth.top()->latencyCycles;
    int64_t a = adaptorFlow.synth.top()->latencyCycles;
    std::printf("%-14s %14lld %14lld %9.3f | %10lld\n",
                interchange ? "interchanged" : "reduction-inner",
                static_cast<long long>(c), static_cast<long long>(a),
                static_cast<double>(a) / static_cast<double>(c),
                static_cast<long long>(innerII));
    report.beginRow();
    report.field("variant", interchange ? "interchanged" : "reduction-inner");
    report.field("hls_cpp_latency", c);
    report.field("adaptor_latency", a);
    report.field("ratio", static_cast<double>(a) / static_cast<double>(c));
    report.field("inner_ii", innerII);
  }
  std::printf("\nInterchange moves the C[i][j] accumulation out of the "
              "innermost loop: the carried\nrecurrence disappears and the "
              "same scheduler drops from II=7 to port-limited II.\n");
  return report.finish();
}
