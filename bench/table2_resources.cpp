// Table 2 — post-HLS resource usage (DSP / BRAM / LUT / FF) per kernel for
// both optimized flows. The paper's comparability claim extends to area:
// the same backend maps both IRs onto near-identical datapaths.
#include "BenchCommon.h"

using namespace mha;
using namespace mha::bench;

int main(int argc, char **argv) {
  JsonReport report("table2_resources", argc, argv);
  std::printf("Table 2: resource usage per flow "
              "(DSP/BRAM/LUT/FF; BRAM excludes interface arrays)\n");
  std::printf("%-10s | %24s | %24s\n", "", "hls-c++ flow", "adaptor flow");
  std::printf("%-10s | %5s %5s %6s %6s | %5s %5s %6s %6s\n", "kernel", "DSP",
              "BRAM", "LUT", "FF", "DSP", "BRAM", "LUT", "FF");
  printRule(66);

  // Both flows for every kernel in one parallel batch (submission-order
  // results keep the rows byte-identical to a serial run).
  std::vector<flow::BatchJob> jobs;
  for (const flow::KernelSpec &spec : flow::allKernels()) {
    jobs.push_back(
        {&spec, defaultConfig(), flow::FlowKind::HlsCpp, {}, "hls-c++"});
    jobs.push_back(
        {&spec, defaultConfig(), flow::FlowKind::Adaptor, {}, "adaptor"});
  }
  flow::BatchOutcome outcome = runBenchBatch(jobs);

  size_t job = 0;
  for (const flow::KernelSpec &spec : flow::allKernels()) {
    flow::FlowResult cpp =
        mustRun(std::move(outcome.results[job++]), "hls-c++");
    flow::FlowResult adaptorFlow =
        mustRun(std::move(outcome.results[job++]), "adaptor");
    const vhls::ResourceUsage &rc = cpp.synth.top()->resources;
    const vhls::ResourceUsage &ra = adaptorFlow.synth.top()->resources;
    std::printf("%-10s | %5lld %5lld %6lld %6lld | %5lld %5lld %6lld %6lld\n",
                spec.name.c_str(), static_cast<long long>(rc.dsp),
                static_cast<long long>(rc.bram),
                static_cast<long long>(rc.lut),
                static_cast<long long>(rc.ff),
                static_cast<long long>(ra.dsp),
                static_cast<long long>(ra.bram),
                static_cast<long long>(ra.lut),
                static_cast<long long>(ra.ff));
    report.beginRow();
    report.field("kernel", spec.name);
    report.field("hls_cpp_dsp", rc.dsp);
    report.field("hls_cpp_bram", rc.bram);
    report.field("hls_cpp_lut", rc.lut);
    report.field("hls_cpp_ff", rc.ff);
    report.field("adaptor_dsp", ra.dsp);
    report.field("adaptor_bram", ra.bram);
    report.field("adaptor_lut", ra.lut);
    report.field("adaptor_ff", ra.ff);
  }
  return report.finish();
}
