// mha-serve throughput — the compile-as-a-service daemon under concurrent
// clients, with the request mix a long-lived daemon actually sees:
//
//  * cold — every client submits distinct (kernel, II) configurations
//    against an empty StageCache; per-request latency is measured at the
//    client (queue + compile + framing).
//  * warm — the identical requests again: every flow must be served from
//    the whole-pipeline cache, and every result event must be
//    byte-identical to its cold twin (ids substituted out). A daemon that
//    returns different bytes for the same design point is broken, so
//    mismatches fail the bench, not just a counter.
//  * invalid — unknown kernels and malformed frames; the daemon must
//    answer every one with a typed error on a surviving connection.
//  * overload — a second daemon with one worker and a two-slot queue is
//    pinned by a slow request, then hit with a burst; the surplus must be
//    rejected with the typed `busy` error, never dropped or blocked.
//
// The bench fails (exit 1) when the warm p50 is not at least 5x below the
// cold p50, when any warm result differs from its cold twin, or when the
// overload burst produces no typed rejection — the claims EXPERIMENTS.md
// makes are checked, not assumed.
#include "BenchCommon.h"

#include "flow/StageCache.h"
#include "mir/MContext.h"
#include "mir/Printer.h"
#include "serve/Client.h"
#include "serve/Protocol.h"
#include "serve/Server.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace mha;
using namespace mha::bench;

namespace {

struct Job {
  std::string kernel;
  int64_t ii = 1;
  int64_t unroll = 1;
};

struct Sample {
  std::string key;        // kernel-ii, stable across cold/warm
  int64_t latencyUs = 0;  // client-observed wall time
  bool ok = false;
  bool cached = false;
  std::string code;       // typed error code when !ok
  std::string resultLine; // raw result event (ids substituted later)
};

struct PhaseStats {
  int requests = 0;
  int ok = 0;
  int errors = 0;
  int busy = 0;
  double wallMs = 0;
  int64_t p50Us = 0;
  int64_t p99Us = 0;
};

std::string benchSocketPath(const char *tag) {
  return strfmt("/tmp/mha_serve_bench_%d_%s.sock", static_cast<int>(getpid()),
                tag);
}

int64_t percentile(std::vector<int64_t> sorted, int pct) {
  if (sorted.empty())
    return 0;
  std::sort(sorted.begin(), sorted.end());
  size_t index = (sorted.size() * static_cast<size_t>(pct)) / 100;
  if (index >= sorted.size())
    index = sorted.size() - 1;
  return sorted[index];
}

/// The result event with its request id replaced by a fixed token, so a
/// cold and a warm line for the same design point can be byte-compared.
std::string withoutId(std::string line, const std::string &id) {
  std::string needle = "\"id\": \"" + id + "\"";
  size_t pos = line.find(needle);
  if (pos != std::string::npos)
    line.replace(pos, needle.size(), "\"id\": \"X\"");
  return line;
}

/// One client worker: runs its share of the request list over a private
/// connection, recording client-observed latency per request.
void runClient(const std::string &socket, const std::string &idPrefix,
               const std::vector<Job> &jobs,
               std::vector<Sample> &out) {
  serve::Client client;
  if (!client.connect(socket)) {
    std::fprintf(stderr, "BENCH FAILURE: client cannot connect to %s\n",
                 socket.c_str());
    std::exit(1);
  }
  for (const Job &job : jobs) {
    serve::Request req;
    req.id = strfmt("%s-%s-%lld-%lld", idPrefix.c_str(), job.kernel.c_str(),
                    static_cast<long long>(job.ii),
                    static_cast<long long>(job.unroll));
    req.kernel = job.kernel;
    req.config.pipelineII = job.ii;
    req.config.unrollFactor = job.unroll;
    auto start = std::chrono::steady_clock::now();
    serve::Client::CompileOutcome outcome = client.runCompile(req);
    Sample sample;
    sample.key = strfmt("%s-%lld-%lld", job.kernel.c_str(),
                        static_cast<long long>(job.ii),
                        static_cast<long long>(job.unroll));
    sample.latencyUs = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
    if (!outcome.transportOk) {
      std::fprintf(stderr, "BENCH FAILURE: transport error for %s: %s\n",
                   req.id.c_str(), outcome.error.c_str());
      std::exit(1);
    }
    sample.ok = outcome.ok;
    sample.cached = outcome.cached;
    sample.code = outcome.code;
    sample.resultLine = withoutId(outcome.resultLine, req.id);
    out.push_back(std::move(sample));
  }
}

/// Fans the job list across `clients` threads and aggregates the samples.
std::vector<Sample> runPhase(const std::string &socket, const char *idPrefix,
                             int clients,
                             const std::vector<Job> &jobs,
                             double &wallMs) {
  std::vector<std::vector<Sample>> perClient(clients);
  std::vector<std::vector<Job>> shares(clients);
  for (size_t i = 0; i < jobs.size(); ++i)
    shares[i % clients].push_back(jobs[i]);
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      runClient(socket, strfmt("%s%d", idPrefix, c), shares[c],
                perClient[c]);
    });
  for (std::thread &t : threads)
    t.join();
  wallMs = std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
               .count();
  std::vector<Sample> all;
  for (std::vector<Sample> &chunk : perClient)
    for (Sample &sample : chunk)
      all.push_back(std::move(sample));
  return all;
}

PhaseStats summarize(const std::vector<Sample> &samples, double wallMs) {
  PhaseStats stats;
  stats.requests = static_cast<int>(samples.size());
  stats.wallMs = wallMs;
  std::vector<int64_t> latencies;
  for (const Sample &sample : samples) {
    latencies.push_back(sample.latencyUs);
    if (sample.ok)
      stats.ok++;
    else
      stats.errors++;
    if (sample.code == serve::errc::Busy)
      stats.busy++;
  }
  stats.p50Us = percentile(latencies, 50);
  stats.p99Us = percentile(latencies, 99);
  return stats;
}

void printPhase(const char *phase, const PhaseStats &stats, int mismatches) {
  double rps = stats.wallMs > 0 ? stats.requests / (stats.wallMs / 1000.0)
                                : 0.0;
  std::printf("%-9s %5d %5d %5d %5d %9.1f %9.0f %9lld %9lld %10d\n", phase,
              stats.requests, stats.ok, stats.errors, stats.busy,
              stats.wallMs, rps, static_cast<long long>(stats.p50Us),
              static_cast<long long>(stats.p99Us), mismatches);
}

void reportPhase(JsonReport &report, const char *phase,
                 const PhaseStats &stats, int mismatches) {
  double rps = stats.wallMs > 0 ? stats.requests / (stats.wallMs / 1000.0)
                                : 0.0;
  report.beginRow();
  report.field("phase", phase);
  report.field("requests", stats.requests);
  report.field("ok", stats.ok);
  report.field("errors", stats.errors);
  report.field("busy", stats.busy);
  report.field("wall_ms", stats.wallMs);
  report.field("throughput_rps", rps);
  report.field("p50_us", stats.p50Us);
  report.field("p99_us", stats.p99Us);
  report.field("result_mismatches", mismatches);
}

/// A slow inline module (many renamed copies of conv2d with a backend
/// unroll directive) that pins the overload daemon's single worker long
/// enough for the burst behind it to be admitted or rejected
/// deterministically, even on one CPU.
std::string slowInlineMlir(int copies) {
  const flow::KernelSpec *spec = flow::findKernel("conv2d");
  mir::MContext ctx;
  flow::KernelConfig config;
  config.unrollFactor = 32;
  mir::OwnedModule module = spec->build(ctx, config);
  std::string one = mir::printModule(module.get());
  size_t open = one.find('{');
  size_t close = one.rfind('}');
  std::string body = one.substr(open + 1, close - open - 1);
  std::string text = "builtin.module {\n";
  for (int i = 0; i < copies; ++i) {
    std::string fn = body;
    std::string to = strfmt("@conv2d_%d", i);
    for (size_t pos = fn.find("@conv2d"); pos != std::string::npos;
         pos = fn.find("@conv2d", pos + to.size()))
      fn.replace(pos, 7, to);
    text += fn;
  }
  text += "}\n";
  return text;
}

} // namespace

int main(int argc, char **argv) {
  JsonReport report("serve_throughput", argc, argv);
  const int clients = 4;

  std::printf("mha-serve throughput: %d concurrent clients\n", clients);
  std::printf("%-9s %5s %5s %5s %5s %9s %9s %9s %9s %10s\n", "phase", "req",
              "ok", "err", "busy", "wall(ms)", "req/s", "p50(us)", "p99(us)",
              "mismatch");
  printRule(88);

  serve::ServerOptions options;
  options.socketPath = benchSocketPath("main");
  options.maxInflight = 2;
  options.maxQueue = 64;
  serve::Server server(options);
  if (!server.start()) {
    std::fprintf(stderr, "BENCH FAILURE: cannot start daemon on %s\n",
                 options.socketPath.c_str());
    return 1;
  }

  // Distinct design points so the cold phase never accidentally warms
  // itself: every built-in kernel at two IIs plus one unrolled variant
  // (the unrolled backend work is where a cold compile earns its keep).
  std::vector<Job> jobs;
  for (const flow::KernelSpec &spec : flow::allKernels()) {
    jobs.push_back({spec.name, 1, 1});
    jobs.push_back({spec.name, 2, 1});
    jobs.push_back({spec.name, 1, 8});
  }

  flow::StageCache::global().clear();
  double coldWallMs = 0;
  std::vector<Sample> cold =
      runPhase(options.socketPath, "c", clients, jobs, coldWallMs);
  PhaseStats coldStats = summarize(cold, coldWallMs);
  printPhase("cold", coldStats, 0);
  reportPhase(report, "cold", coldStats, 0);

  double warmWallMs = 0;
  std::vector<Sample> warm =
      runPhase(options.socketPath, "w", clients, jobs, warmWallMs);
  PhaseStats warmStats = summarize(warm, warmWallMs);

  // Every warm result must byte-match its cold twin (ids already
  // substituted out) and must have been served from the cache.
  std::map<std::string, std::string> coldByKey;
  for (const Sample &sample : cold)
    coldByKey[sample.key] = sample.resultLine;
  int mismatches = 0, uncached = 0;
  for (const Sample &sample : warm) {
    if (coldByKey[sample.key] != sample.resultLine)
      mismatches++;
    if (!sample.cached)
      uncached++;
  }
  printPhase("warm", warmStats, mismatches);
  reportPhase(report, "warm", warmStats, mismatches);

  // Invalid mix: unknown kernels (typed unknown_kernel) and malformed
  // frames (typed parse_error) — every one answered, no connection lost.
  int invalidTyped = 0, invalidTotal = 0;
  double invalidWallMs = 0;
  {
    auto start = std::chrono::steady_clock::now();
    serve::Client client;
    if (!client.connect(options.socketPath)) {
      std::fprintf(stderr, "BENCH FAILURE: invalid-phase connect failed\n");
      return 1;
    }
    for (int i = 0; i < 8; ++i) {
      serve::Request req;
      req.id = strfmt("bad%d", i);
      req.kernel = strfmt("no-such-kernel-%d", i);
      serve::Client::CompileOutcome outcome = client.runCompile(req);
      invalidTotal++;
      if (outcome.transportOk && !outcome.ok &&
          outcome.code == serve::errc::UnknownKernel)
        invalidTyped++;
    }
    for (int i = 0; i < 8; ++i) {
      client.sendLine("{\"this is\": not json");
      std::string line;
      bool sawDone = false;
      while (client.readLine(line)) {
        if (line.find("\"event\": \"done\"") != std::string::npos) {
          sawDone = line.find(serve::errc::ParseError) != std::string::npos;
          break;
        }
      }
      invalidTotal++;
      if (sawDone)
        invalidTyped++;
    }
    invalidWallMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  }
  PhaseStats invalidStats;
  invalidStats.requests = invalidTotal;
  invalidStats.errors = invalidTyped;
  invalidStats.wallMs = invalidWallMs;
  printPhase("invalid", invalidStats, 0);
  reportPhase(report, "invalid", invalidStats, 0);

  server.stop();

  // Overload: one worker, two queue slots. Pin the worker with a slow
  // request, then burst eight fast ones: two fit in the queue, the rest
  // must bounce with the typed busy error.
  serve::ServerOptions overloadOptions;
  overloadOptions.socketPath = benchSocketPath("overload");
  overloadOptions.maxInflight = 1;
  overloadOptions.maxQueue = 2;
  serve::Server overloadServer(overloadOptions);
  if (!overloadServer.start()) {
    std::fprintf(stderr, "BENCH FAILURE: cannot start overload daemon\n");
    return 1;
  }
  int burstBusy = 0, burstOk = 0;
  double overloadWallMs = 0;
  std::vector<int64_t> burstLatencies;
  {
    auto start = std::chrono::steady_clock::now();
    serve::Client client;
    if (!client.connect(overloadOptions.socketPath)) {
      std::fprintf(stderr, "BENCH FAILURE: overload connect failed\n");
      return 1;
    }
    serve::Request blocker;
    blocker.id = "blocker";
    blocker.mlir = slowInlineMlir(16);
    blocker.top = "conv2d_0"; // multi-function inline MLIR needs an explicit top
    client.sendLine(serve::renderCompileRequest("blocker", blocker));
    // Wait for the worker to be demonstrably inside the blocker's flow.
    std::string line;
    do {
      if (!client.readLine(line)) {
        std::fprintf(stderr, "BENCH FAILURE: overload daemon went away\n");
        return 1;
      }
    } while (line.find("\"event\": \"stage\"") == std::string::npos);
    for (int i = 0; i < 8; ++i) {
      serve::Request req;
      req.id = strfmt("burst%d", i);
      req.kernel = "fir";
      client.sendLine(serve::renderCompileRequest(req.id, req));
    }
    // Collect the nine done events (blocker + burst).
    int done = 0;
    std::map<std::string, int64_t> doneAtUs;
    while (done < 9 && client.readLine(line)) {
      if (line.find("\"event\": \"done\"") == std::string::npos)
        continue;
      done++;
      if (line.find("\"id\": \"burst") == std::string::npos)
        continue;
      if (line.find("\"code\": \"busy\"") != std::string::npos)
        burstBusy++;
      else if (line.find("\"status\": \"ok\"") != std::string::npos)
        burstOk++;
    }
    overloadWallMs = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  }
  overloadServer.stop();
  PhaseStats overloadStats;
  overloadStats.requests = 9;
  overloadStats.ok = burstOk + 1;
  overloadStats.errors = burstBusy;
  overloadStats.busy = burstBusy;
  overloadStats.wallMs = overloadWallMs;
  printPhase("overload", overloadStats, 0);
  reportPhase(report, "overload", overloadStats, 0);

  printRule(88);
  double speedup = warmStats.p50Us > 0
                       ? static_cast<double>(coldStats.p50Us) /
                             static_cast<double>(warmStats.p50Us)
                       : 0.0;
  std::printf("warm speedup: p50 %.1fx (cold %lld us -> warm %lld us)\n",
              speedup, static_cast<long long>(coldStats.p50Us),
              static_cast<long long>(warmStats.p50Us));
  report.beginRow();
  report.field("phase", "summary");
  report.field("warm_p50_speedup", speedup);
  report.field("warm_uncached", uncached);
  report.field("invalid_typed", invalidTyped);
  report.field("invalid_total", invalidTotal);

  int status = 0;
  if (coldStats.ok != coldStats.requests ||
      warmStats.ok != warmStats.requests) {
    std::fprintf(stderr, "BENCH FAILURE: cold/warm phase had errors\n");
    status = 1;
  }
  if (warmStats.p50Us * 5 > coldStats.p50Us) {
    std::fprintf(stderr,
                 "BENCH FAILURE: warm p50 (%lld us) not 5x below cold "
                 "(%lld us)\n",
                 static_cast<long long>(warmStats.p50Us),
                 static_cast<long long>(coldStats.p50Us));
    status = 1;
  }
  if (mismatches > 0 || uncached > 0) {
    std::fprintf(stderr,
                 "BENCH FAILURE: %d warm results mismatched, %d were not "
                 "cache hits\n",
                 mismatches, uncached);
    status = 1;
  }
  if (invalidTyped != invalidTotal) {
    std::fprintf(stderr,
                 "BENCH FAILURE: %d/%d invalid requests got a typed error\n",
                 invalidTyped, invalidTotal);
    status = 1;
  }
  if (burstBusy < 1) {
    std::fprintf(stderr, "BENCH FAILURE: overload burst produced no typed "
                         "busy rejection\n");
    status = 1;
  }
  return report.finish(status);
}
