// Figure 1 — gemm latency vs unroll factor (1..16) for both flows.
// Tests that the unroll directive survives both bridges identically:
// the adaptor converts llvm.loop.unroll.count -> xlx.unroll, the C++ flow
// carries "#pragma HLS unroll". The curves should coincide.
#include "BenchCommon.h"

using namespace mha;
using namespace mha::bench;

int main(int argc, char **argv) {
  JsonReport report("fig1_unroll_sweep", argc, argv);
  std::printf("Figure 1: latency (cycles) vs unroll factor\n");
  std::printf("%-10s %-8s %14s %14s %9s %12s %12s\n", "kernel", "unroll",
              "hls-c++", "adaptor", "ratio", "c++ DSP", "adaptor DSP");
  printRule(86);
  // gemm is recurrence-bound (serial accumulation: unrolling cannot beat
  // the fadd chain), jacobi2d streams (unrolling scales with partitioned
  // banks). Both flows must track the same curve in both regimes.
  for (const char *name : {"gemm", "jacobi2d", "fir"}) {
    const flow::KernelSpec *spec = flow::findKernel(name);
    for (int64_t factor : {1, 2, 4, 8, 16}) {
      flow::KernelConfig config;
      config.pipelineII = 1;
      config.unrollFactor = factor;
      config.partitionFactor = factor; // keep banks fed
      flow::FlowResult cpp =
          mustRun(flow::runHlsCppFlow(*spec, config), "hls-c++");
      mustCosim(cpp, *spec);
      flow::FlowResult adaptorFlow =
          mustRun(flow::runAdaptorFlow(*spec, config), "adaptor");
      mustCosim(adaptorFlow, *spec);
      int64_t c = cpp.synth.top()->latencyCycles;
      int64_t a = adaptorFlow.synth.top()->latencyCycles;
      std::printf("%-10s %-8lld %14lld %14lld %9.3f %12lld %12lld\n", name,
                  static_cast<long long>(factor), static_cast<long long>(c),
                  static_cast<long long>(a),
                  static_cast<double>(a) / static_cast<double>(c),
                  static_cast<long long>(cpp.synth.top()->resources.dsp),
                  static_cast<long long>(
                      adaptorFlow.synth.top()->resources.dsp));
      report.beginRow();
      report.field("kernel", name);
      report.field("unroll", factor);
      report.field("hls_cpp_latency", c);
      report.field("adaptor_latency", a);
      report.field("ratio", static_cast<double>(a) / static_cast<double>(c));
      report.field("hls_cpp_dsp", cpp.synth.top()->resources.dsp);
      report.field("adaptor_dsp", adaptorFlow.synth.top()->resources.dsp);
    }
  }
  return report.finish();
}
