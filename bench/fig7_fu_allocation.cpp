// Figure 7 (extension) — resource-constrained synthesis: latency vs the
// floating-point multiplier allocation budget (Vitis `allocation`
// directive model) for conv2d with an unrolled, partitioned inner loop.
// Fewer units -> serialized multiplies -> higher II; the DSP bill shrinks
// in exchange. Both flows must trace the same area/latency trade-off.
#include "BenchCommon.h"

using namespace mha;
using namespace mha::bench;

int main(int argc, char **argv) {
  JsonReport report("fig7_fu_allocation", argc, argv);
  const flow::KernelSpec *spec = flow::findKernel("conv2d");
  std::printf("Figure 7: conv2d latency vs fmul allocation budget "
              "(unroll=2, partition=4)\n");
  std::printf("%-10s %14s %10s | %14s %10s | %9s\n", "fmul units",
              "hls-c++", "c++ DSP", "adaptor", "a DSP", "ratio");
  printRule(78);
  for (int limit : {0, 8, 4, 2, 1}) { // 0 = unlimited
    flow::KernelConfig config;
    config.pipelineII = 1;
    config.unrollFactor = 2;
    config.partitionFactor = 4;
    flow::FlowOptions options;
    if (limit > 0)
      options.synthesis.target.fuLimits["fmul"] = limit;

    flow::FlowResult cpp =
        mustRun(flow::runHlsCppFlow(*spec, config, options), "hls-c++");
    mustCosim(cpp, *spec);
    flow::FlowResult adaptorFlow =
        mustRun(flow::runAdaptorFlow(*spec, config, options), "adaptor");
    mustCosim(adaptorFlow, *spec);
    int64_t c = cpp.synth.top()->latencyCycles;
    int64_t a = adaptorFlow.synth.top()->latencyCycles;
    char label[16];
    std::snprintf(label, sizeof label, limit ? "%d" : "unlimited", limit);
    std::printf("%-10s %14lld %10lld | %14lld %10lld | %9.3f\n", label,
                static_cast<long long>(c),
                static_cast<long long>(cpp.synth.top()->resources.dsp),
                static_cast<long long>(a),
                static_cast<long long>(
                    adaptorFlow.synth.top()->resources.dsp),
                static_cast<double>(a) / static_cast<double>(c));
    report.beginRow();
    report.field("fmul_limit", limit);
    report.field("hls_cpp_latency", c);
    report.field("hls_cpp_dsp", cpp.synth.top()->resources.dsp);
    report.field("adaptor_latency", a);
    report.field("adaptor_dsp", adaptorFlow.synth.top()->resources.dsp);
    report.field("ratio", static_cast<double>(a) / static_cast<double>(c));
  }
  return report.finish();
}
