// Figure 6 (extension) — cross-layer unrolling: the same unroll directive
// honoured at the MLIR level (replicating the affine body before either
// bridge) versus in the HLS backend (Vitis-style directive). The paper's
// premise is that a direct IR bridge lets optimizations move freely
// between abstraction levels; here both placements must produce equivalent
// hardware through both flows.
#include "BenchCommon.h"

using namespace mha;
using namespace mha::bench;

int main(int argc, char **argv) {
  JsonReport report("fig6_crosslayer", argc, argv);
  std::printf("Figure 6: unroll at the MLIR level vs in the HLS backend "
              "(factor 4, partition 4)\n");
  std::printf("%-10s | %14s %14s | %14s %14s\n", "", "adaptor flow", "",
              "hls-c++ flow", "");
  std::printf("%-10s | %14s %14s | %14s %14s\n", "kernel", "backend",
              "mlir-level", "backend", "mlir-level");
  printRule(74);
  for (const char *name : {"gemm", "jacobi2d", "conv2d", "fir"}) {
    const flow::KernelSpec *spec = flow::findKernel(name);
    flow::KernelConfig config;
    config.pipelineII = 1;
    config.unrollFactor = 4;
    config.partitionFactor = 4;

    flow::FlowOptions backend;
    flow::FlowOptions mlirLevel;
    mlirLevel.unrollAtMlirLevel = true;

    flow::FlowResult aBackend =
        mustRun(flow::runAdaptorFlow(*spec, config, backend), "a/backend");
    mustCosim(aBackend, *spec);
    flow::FlowResult aMlir =
        mustRun(flow::runAdaptorFlow(*spec, config, mlirLevel), "a/mlir");
    mustCosim(aMlir, *spec);
    flow::FlowResult cBackend =
        mustRun(flow::runHlsCppFlow(*spec, config, backend), "c/backend");
    mustCosim(cBackend, *spec);
    flow::FlowResult cMlir =
        mustRun(flow::runHlsCppFlow(*spec, config, mlirLevel), "c/mlir");
    mustCosim(cMlir, *spec);

    std::printf("%-10s | %14lld %14lld | %14lld %14lld\n", name,
                static_cast<long long>(aBackend.synth.top()->latencyCycles),
                static_cast<long long>(aMlir.synth.top()->latencyCycles),
                static_cast<long long>(cBackend.synth.top()->latencyCycles),
                static_cast<long long>(cMlir.synth.top()->latencyCycles));
    report.beginRow();
    report.field("kernel", name);
    report.field("adaptor_backend_latency",
                 aBackend.synth.top()->latencyCycles);
    report.field("adaptor_mlir_latency", aMlir.synth.top()->latencyCycles);
    report.field("hls_cpp_backend_latency",
                 cBackend.synth.top()->latencyCycles);
    report.field("hls_cpp_mlir_latency", cMlir.synth.top()->latencyCycles);
  }
  std::printf("\nMLIR-level unrolling produces pre-unrolled IR (adaptor "
              "path) or pre-unrolled C++ (emission\npath); the backend "
              "variant carries the directive. All four land on equivalent "
              "schedules.\n");
  return report.finish();
}
