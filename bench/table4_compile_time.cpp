// Table 4 — compile time of the two flows (google-benchmark timing).
// The direct-IR adaptor flow skips C++ emission and re-parsing, which is
// the practical argument the paper makes for a direct IR bridge.
//
// All flow executions go through the BatchRunner. Timing semantics are
// preserved: per-kernel numbers are the per-job wall times recorded
// *inside* the job (around the flow call only, via UseManualTime), so
// batch queueing/harness overhead never leaks into the measurement. The
// extra table4/batch benchmarks time a whole 11-kernel batch end to end —
// the throughput the parallel driver buys on a multi-core host.
#include "BenchCommon.h"

#include "flow/StageCache.h"

#include <benchmark/benchmark.h>

using namespace mha;
using namespace mha::bench;

namespace {

// Shared across iterations so pool start-up never pollutes a measurement.
ThreadPool *gPool = nullptr;

flow::BatchOptions poolOptions() {
  flow::BatchOptions options;
  options.pool = gPool;
  return options;
}

void BM_FullFlow(benchmark::State &state, const std::string &kernel,
                 flow::FlowKind kind) {
  const flow::KernelSpec *spec = flow::findKernel(kernel);
  std::vector<flow::BatchJob> jobs{
      {spec, defaultConfig(), kind, {}, "table4"}};
  for (auto _ : state) {
    flow::BatchOutcome out = flow::runBatch(jobs, poolOptions());
    if (!out.results[0].ok)
      state.SkipWithError("flow failed");
    state.SetIterationTime(out.trace.jobs[0].wallMs / 1000.0);
    benchmark::DoNotOptimize(out.results[0].synth.functions.size());
  }
}

void BM_BridgeOnly(benchmark::State &state, const std::string &kernel,
                   flow::FlowKind kind) {
  // Stage timing: the flow-specific bridge leg only (scf conversion +
  // lowering + adaptor, or C++ emission + HLS frontend) — excludes the
  // shared MLIR opts and the backend.
  const flow::KernelSpec *spec = flow::findKernel(kernel);
  std::vector<flow::BatchJob> jobs{
      {spec, defaultConfig(), kind, {}, "table4-bridge"}};
  for (auto _ : state) {
    flow::BatchOutcome out = flow::runBatch(jobs, poolOptions());
    if (!out.results[0].ok)
      state.SkipWithError("flow failed");
    state.SetIterationTime(out.results[0].timings.bridgeMs / 1000.0);
  }
}

void BM_BatchAllKernels(benchmark::State &state, flow::FlowKind kind) {
  // Whole-batch throughput: every kernel through one flow, in parallel.
  std::vector<flow::BatchJob> jobs;
  for (const flow::KernelSpec &spec : flow::allKernels())
    jobs.push_back({&spec, defaultConfig(), kind, {}, "table4-batch"});
  double serialMs = 0;
  for (auto _ : state) {
    flow::BatchOutcome out = flow::runBatch(jobs, poolOptions());
    if (out.trace.failures != 0)
      state.SkipWithError("batch had failures");
    state.SetIterationTime(out.trace.wallMs / 1000.0);
    serialMs = out.trace.serialMs;
  }
  state.counters["serial_ms"] = serialMs;
  state.counters["threads"] = gPool->size();
}

} // namespace

int main(int argc, char **argv) {
  // Consumes --json before google-benchmark sees (and rejects) it.
  JsonReport report("table4_compile_time", argc, argv);
  ThreadPool pool;
  gPool = &pool;
  for (const flow::KernelSpec &spec : flow::allKernels()) {
    benchmark::RegisterBenchmark(("table4/full/adaptor/" + spec.name).c_str(),
                                 BM_FullFlow, spec.name,
                                 flow::FlowKind::Adaptor)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("table4/full/hls-c++/" + spec.name).c_str(),
                                 BM_FullFlow, spec.name,
                                 flow::FlowKind::HlsCpp)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
  // Bridge-leg comparison on a representative subset.
  for (const char *kernel : {"gemm", "atax", "conv2d"}) {
    benchmark::RegisterBenchmark(
        (std::string("table4/bridge/adaptor/") + kernel).c_str(),
        BM_BridgeOnly, std::string(kernel), flow::FlowKind::Adaptor)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (std::string("table4/bridge/hls-c++/") + kernel).c_str(),
        BM_BridgeOnly, std::string(kernel), flow::FlowKind::HlsCpp)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("table4/batch/adaptor/all-kernels",
                               BM_BatchAllKernels, flow::FlowKind::Adaptor)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("table4/batch/hls-c++/all-kernels",
                               BM_BatchAllKernels, flow::FlowKind::HlsCpp)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  if (report.enabled()) {
    // One measured batch per flow for the JSON trajectory: the per-job
    // wall time is recorded inside the job, same as the benchmarks above.
    for (flow::FlowKind kind :
         {flow::FlowKind::Adaptor, flow::FlowKind::HlsCpp}) {
      const char *flowName =
          kind == flow::FlowKind::Adaptor ? "adaptor" : "hls-c++";
      std::vector<flow::BatchJob> jobs;
      for (const flow::KernelSpec &spec : flow::allKernels())
        jobs.push_back({&spec, defaultConfig(), kind, {}, "table4-json"});
      flow::BatchOutcome out = flow::runBatch(jobs, poolOptions());
      if (out.trace.failures != 0) {
        std::fprintf(stderr, "table4: batch had failures\n");
        return 1;
      }
      size_t job = 0;
      for (const flow::KernelSpec &spec : flow::allKernels()) {
        report.beginRow();
        report.field("kernel", spec.name);
        report.field("flow", flowName);
        report.field("mode", "uncached");
        report.field("wall_ms", out.trace.jobs[job].wallMs);
        report.field("bridge_ms", out.results[job].timings.bridgeMs);
        ++job;
      }
    }
    // Incremental-recompilation trajectory: the same batch twice with the
    // stage cache on. The first (cold) run populates the cache, the second
    // (warm) run answers every stage from it — the warm/cold ratio is the
    // recompile speedup a no-op rebuild sees.
    for (flow::FlowKind kind :
         {flow::FlowKind::Adaptor, flow::FlowKind::HlsCpp}) {
      const char *flowName =
          kind == flow::FlowKind::Adaptor ? "adaptor" : "hls-c++";
      flow::FlowOptions cachedFlow;
      cachedFlow.useStageCache = true;
      std::vector<flow::BatchJob> jobs;
      for (const flow::KernelSpec &spec : flow::allKernels())
        jobs.push_back({&spec, defaultConfig(), kind, cachedFlow,
                        "table4-cache"});
      flow::StageCache::global().clear();
      double totals[2] = {0, 0};
      for (int pass = 0; pass < 2; ++pass) {
        const char *mode = pass == 0 ? "cold" : "warm";
        flow::BatchOutcome out = flow::runBatch(jobs, poolOptions());
        if (out.trace.failures != 0) {
          std::fprintf(stderr, "table4: cached batch had failures\n");
          return 1;
        }
        size_t job = 0;
        for (const flow::KernelSpec &spec : flow::allKernels()) {
          report.beginRow();
          report.field("kernel", spec.name);
          report.field("flow", flowName);
          report.field("mode", mode);
          report.field("wall_ms", out.trace.jobs[job].wallMs);
          totals[pass] += out.trace.jobs[job].wallMs;
          ++job;
        }
      }
      report.beginRow();
      report.field("kernel", "all");
      report.field("flow", flowName);
      report.field("mode", "cache-speedup");
      report.field("cold_ms", totals[0]);
      report.field("warm_ms", totals[1]);
      report.field("speedup", totals[1] > 0 ? totals[0] / totals[1] : 0.0);
    }
  }
  return report.finish();
}
