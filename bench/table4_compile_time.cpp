// Table 4 — compile time of the two flows (google-benchmark timing).
// The direct-IR adaptor flow skips C++ emission and re-parsing, which is
// the practical argument the paper makes for a direct IR bridge.
#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace mha;
using namespace mha::bench;

namespace {

void BM_AdaptorFlow(benchmark::State &state, const std::string &kernel) {
  const flow::KernelSpec *spec = flow::findKernel(kernel);
  flow::KernelConfig config = defaultConfig();
  for (auto _ : state) {
    flow::FlowResult result = flow::runAdaptorFlow(*spec, config);
    if (!result.ok)
      state.SkipWithError("adaptor flow failed");
    benchmark::DoNotOptimize(result.synth.functions.size());
  }
}

void BM_HlsCppFlow(benchmark::State &state, const std::string &kernel) {
  const flow::KernelSpec *spec = flow::findKernel(kernel);
  flow::KernelConfig config = defaultConfig();
  for (auto _ : state) {
    flow::FlowResult result = flow::runHlsCppFlow(*spec, config);
    if (!result.ok)
      state.SkipWithError("hls-c++ flow failed");
    benchmark::DoNotOptimize(result.synth.functions.size());
  }
}

void BM_BridgeOnly_Adaptor(benchmark::State &state,
                           const std::string &kernel) {
  // Stage timing: lowering+adaptor leg only (excludes shared MLIR opts and
  // the backend).
  const flow::KernelSpec *spec = flow::findKernel(kernel);
  flow::KernelConfig config = defaultConfig();
  for (auto _ : state) {
    flow::FlowResult result = flow::runAdaptorFlow(*spec, config);
    state.SetIterationTime(result.timings.bridgeMs / 1000.0);
  }
}

void BM_BridgeOnly_HlsCpp(benchmark::State &state,
                          const std::string &kernel) {
  const flow::KernelSpec *spec = flow::findKernel(kernel);
  flow::KernelConfig config = defaultConfig();
  for (auto _ : state) {
    flow::FlowResult result = flow::runHlsCppFlow(*spec, config);
    state.SetIterationTime(result.timings.bridgeMs / 1000.0);
  }
}

} // namespace

int main(int argc, char **argv) {
  for (const flow::KernelSpec &spec : flow::allKernels()) {
    benchmark::RegisterBenchmark(("table4/full/adaptor/" + spec.name).c_str(),
                                 BM_AdaptorFlow, spec.name)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("table4/full/hls-c++/" + spec.name).c_str(),
                                 BM_HlsCppFlow, spec.name)
        ->Unit(benchmark::kMillisecond);
  }
  // Bridge-leg comparison on a representative subset.
  for (const char *kernel : {"gemm", "atax", "conv2d"}) {
    benchmark::RegisterBenchmark(
        (std::string("table4/bridge/adaptor/") + kernel).c_str(),
        BM_BridgeOnly_Adaptor, std::string(kernel))
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (std::string("table4/bridge/hls-c++/") + kernel).c_str(),
        BM_BridgeOnly_HlsCpp, std::string(kernel))
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
