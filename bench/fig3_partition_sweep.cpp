// Figure 3 — latency vs array-partition factor for gemm and conv2d with an
// unrolled inner loop: more banks feed more parallel accesses until the
// recurrence/port balance saturates. Both flows must track the same curve
// (the adaptor turns mha.partition attrs into xlx.array_partition metadata;
// the C++ flow uses #pragma HLS array_partition).
#include "BenchCommon.h"

using namespace mha;
using namespace mha::bench;

int main(int argc, char **argv) {
  JsonReport report("fig3_partition_sweep", argc, argv);
  std::printf("Figure 3: latency (cycles) vs cyclic partition factor "
              "(inner loop unrolled 4x)\n");
  std::printf("%-10s %-10s %14s %14s %9s\n", "kernel", "factor", "hls-c++",
              "adaptor", "ratio");
  printRule(62);
  for (const char *name : {"gemm", "conv2d", "jacobi2d"}) {
    const flow::KernelSpec *spec = flow::findKernel(name);
    for (int64_t factor : {1, 2, 4, 8}) {
      flow::KernelConfig config;
      config.pipelineII = 1;
      config.unrollFactor = 4;
      config.partitionFactor = factor;
      flow::FlowResult cpp =
          mustRun(flow::runHlsCppFlow(*spec, config), "hls-c++");
      mustCosim(cpp, *spec);
      flow::FlowResult adaptorFlow =
          mustRun(flow::runAdaptorFlow(*spec, config), "adaptor");
      mustCosim(adaptorFlow, *spec);
      int64_t c = cpp.synth.top()->latencyCycles;
      int64_t a = adaptorFlow.synth.top()->latencyCycles;
      std::printf("%-10s %-10lld %14lld %14lld %9.3f\n", name,
                  static_cast<long long>(factor), static_cast<long long>(c),
                  static_cast<long long>(a),
                  static_cast<double>(a) / static_cast<double>(c));
      report.beginRow();
      report.field("kernel", name);
      report.field("partition", factor);
      report.field("hls_cpp_latency", c);
      report.field("adaptor_latency", a);
      report.field("ratio", static_cast<double>(a) / static_cast<double>(c));
    }
  }
  return report.finish();
}
