// BenchCommon.h - shared helpers for the table/figure reproduction benches.
#pragma once

#include "flow/BatchRunner.h"
#include "flow/Flow.h"
#include "support/Json.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mha::bench {

/// Structured output for the benches: `--json <path>` (or `--json=<path>`)
/// writes one document per run, schema "mha.bench.v1", with one row per
/// printed table row so BENCH_*.json perf trajectories can accumulate.
/// The flag is consumed from argv (anything else — e.g. google-benchmark
/// flags — passes through untouched); stdout is never written to, so the
/// human tables stay byte-identical with the flag off. The document is
/// validated with json::validate before it hits disk.
class JsonReport {
public:
  JsonReport(std::string bench, int &argc, char **argv)
      : bench_(std::move(bench)) {
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--json" && i + 1 < argc)
        path_ = argv[++i];
      else if (arg.rfind("--json=", 0) == 0)
        path_ = arg.substr(7);
      else
        argv[kept++] = argv[i];
    }
    argc = kept;
  }

  bool enabled() const { return !path_.empty(); }

  /// Starts a new row; field() calls append to the most recent row. Both
  /// are no-ops with the flag off, so call sites stay unconditional.
  void beginRow() {
    if (enabled())
      rows_.emplace_back();
  }
  void field(const char *key, int64_t value) {
    addRaw(key, std::to_string(value));
  }
  void field(const char *key, int value) {
    field(key, static_cast<int64_t>(value));
  }
  void field(const char *key, double value) {
    addRaw(key, json::number(value));
  }
  void field(const char *key, bool value) {
    addRaw(key, value ? "true" : "false");
  }
  void field(const char *key, std::string_view value) {
    addRaw(key, "\"" + json::escape(value) + "\"");
  }
  void field(const char *key, const char *value) {
    field(key, std::string_view(value));
  }

  /// Validates and writes the report (when enabled). Returns `status`, or
  /// 1 when validation or the write fails.
  int finish(int status = 0) const {
    if (!enabled())
      return status;
    std::string text = "{\n  \"schema\": \"mha.bench.v1\",\n  \"bench\": \"" +
                       json::escape(bench_) + "\",\n  \"rows\": [";
    for (size_t i = 0; i < rows_.size(); ++i) {
      text += i ? ",\n    {" : "\n    {";
      for (size_t f = 0; f < rows_[i].size(); ++f) {
        if (f)
          text += ", ";
        text += "\"" + json::escape(rows_[i][f].first) +
                "\": " + rows_[i][f].second;
      }
      text += "}";
    }
    text += "\n  ]\n}\n";
    std::string error;
    if (!json::validate(text, &error)) {
      std::fprintf(stderr, "bench json: malformed output: %s\n",
                   error.c_str());
      return 1;
    }
    std::ofstream out(path_, std::ios::binary);
    out << text;
    out.close();
    if (!out) {
      std::fprintf(stderr, "bench json: cannot write %s\n", path_.c_str());
      return 1;
    }
    std::fprintf(stderr, "bench report written to %s\n", path_.c_str());
    return status;
  }

private:
  void addRaw(const char *key, std::string rendered) {
    if (enabled() && !rows_.empty())
      rows_.back().emplace_back(key, std::move(rendered));
  }

  std::string bench_;
  std::string path_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

/// The default experiment configuration used across tables (pipeline II=1,
/// modest partitioning — the "optimized design point" both flows share).
inline flow::KernelConfig defaultConfig() {
  flow::KernelConfig config;
  config.pipelineII = 1;
  config.unrollFactor = 1;
  config.partitionFactor = 2;
  return config;
}

/// Runs a flow and asserts success (aborts the bench with a message).
inline flow::FlowResult mustRun(flow::FlowResult result, const char *what) {
  if (!result.ok) {
    std::fprintf(stderr, "BENCH FAILURE (%s):\n%s\n", what,
                 result.diagnostics.c_str());
    std::exit(1);
  }
  return result;
}

/// Verifies functional equivalence; aborts on mismatch (a bench must never
/// report numbers for wrong results).
inline void mustCosim(const flow::FlowResult &result,
                      const flow::KernelSpec &spec) {
  std::string error;
  if (!flow::cosimAgainstReference(result, spec, error)) {
    std::fprintf(stderr, "BENCH FAILURE (cosim %s): %s\n",
                 spec.name.c_str(), error.c_str());
    std::exit(1);
  }
}

/// Runs the jobs across all cores (BatchRunner) and prints a one-line
/// utilization summary to stderr — stdout stays reserved for the table
/// rows, which must be byte-identical to a serial run.
inline flow::BatchOutcome runBenchBatch(const std::vector<flow::BatchJob> &jobs) {
  flow::BatchOutcome outcome = flow::runBatch(jobs);
  std::fprintf(stderr,
               "[batch] %zu jobs on %u threads: %.0f ms wall, %.0f ms "
               "serial (%.2fx)\n",
               outcome.trace.jobCount, outcome.trace.threads,
               outcome.trace.wallMs, outcome.trace.serialMs,
               outcome.trace.wallMs > 0
                   ? outcome.trace.serialMs / outcome.trace.wallMs
                   : 0.0);
  return outcome;
}

inline void printRule(int width) {
  for (int i = 0; i < width; ++i)
    std::putchar('-');
  std::putchar('\n');
}

} // namespace mha::bench
