// BenchCommon.h - shared helpers for the table/figure reproduction benches.
#pragma once

#include "flow/Flow.h"

#include <cstdio>
#include <string>

namespace mha::bench {

/// The default experiment configuration used across tables (pipeline II=1,
/// modest partitioning — the "optimized design point" both flows share).
inline flow::KernelConfig defaultConfig() {
  flow::KernelConfig config;
  config.pipelineII = 1;
  config.unrollFactor = 1;
  config.partitionFactor = 2;
  return config;
}

/// Runs a flow and asserts success (aborts the bench with a message).
inline flow::FlowResult mustRun(flow::FlowResult result, const char *what) {
  if (!result.ok) {
    std::fprintf(stderr, "BENCH FAILURE (%s):\n%s\n", what,
                 result.diagnostics.c_str());
    std::exit(1);
  }
  return result;
}

/// Verifies functional equivalence; aborts on mismatch (a bench must never
/// report numbers for wrong results).
inline void mustCosim(const flow::FlowResult &result,
                      const flow::KernelSpec &spec) {
  std::string error;
  if (!flow::cosimAgainstReference(result, spec, error)) {
    std::fprintf(stderr, "BENCH FAILURE (cosim %s): %s\n",
                 spec.name.c_str(), error.c_str());
    std::exit(1);
  }
}

inline void printRule(int width) {
  for (int i = 0; i < width; ++i)
    std::putchar('-');
  std::putchar('\n');
}

} // namespace mha::bench
