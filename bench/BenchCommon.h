// BenchCommon.h - shared helpers for the table/figure reproduction benches.
#pragma once

#include "flow/BatchRunner.h"
#include "flow/Flow.h"

#include <cstdio>
#include <string>

namespace mha::bench {

/// The default experiment configuration used across tables (pipeline II=1,
/// modest partitioning — the "optimized design point" both flows share).
inline flow::KernelConfig defaultConfig() {
  flow::KernelConfig config;
  config.pipelineII = 1;
  config.unrollFactor = 1;
  config.partitionFactor = 2;
  return config;
}

/// Runs a flow and asserts success (aborts the bench with a message).
inline flow::FlowResult mustRun(flow::FlowResult result, const char *what) {
  if (!result.ok) {
    std::fprintf(stderr, "BENCH FAILURE (%s):\n%s\n", what,
                 result.diagnostics.c_str());
    std::exit(1);
  }
  return result;
}

/// Verifies functional equivalence; aborts on mismatch (a bench must never
/// report numbers for wrong results).
inline void mustCosim(const flow::FlowResult &result,
                      const flow::KernelSpec &spec) {
  std::string error;
  if (!flow::cosimAgainstReference(result, spec, error)) {
    std::fprintf(stderr, "BENCH FAILURE (cosim %s): %s\n",
                 spec.name.c_str(), error.c_str());
    std::exit(1);
  }
}

/// Runs the jobs across all cores (BatchRunner) and prints a one-line
/// utilization summary to stderr — stdout stays reserved for the table
/// rows, which must be byte-identical to a serial run.
inline flow::BatchOutcome runBenchBatch(const std::vector<flow::BatchJob> &jobs) {
  flow::BatchOutcome outcome = flow::runBatch(jobs);
  std::fprintf(stderr,
               "[batch] %zu jobs on %u threads: %.0f ms wall, %.0f ms "
               "serial (%.2fx)\n",
               outcome.trace.jobCount, outcome.trace.threads,
               outcome.trace.wallMs, outcome.trace.serialMs,
               outcome.trace.wallMs > 0
                   ? outcome.trace.serialMs / outcome.trace.wallMs
                   : 0.0);
  return outcome;
}

inline void printRule(int width) {
  for (int i = 0; i < width; ++i)
    std::putchar('-');
  std::putchar('\n');
}

} // namespace mha::bench
