// Table 1 — post-HLS kernel latency (cycles) for three flows:
//   baseline   : no directives (plain code through the adaptor flow)
//   hls-c++    : MLIR -> HLS C++ -> HLS frontend (ScaleHLS-style baseline)
//   adaptor    : MLIR -> LLVM IR -> HLS adaptor (the paper's flow)
// plus the adaptor/hls-c++ ratio. The paper's claim is ratio ~= 1.0
// ("comparable performance"); the baseline column shows the directive
// speedup both optimized flows deliver.
#include "BenchCommon.h"

using namespace mha;
using namespace mha::bench;

int main(int argc, char **argv) {
  JsonReport report("table1_kernel_latency", argc, argv);
  std::printf("Table 1: kernel latency (cycles) per flow\n");
  std::printf("%-10s %14s %14s %14s %9s %9s\n", "kernel", "baseline",
              "hls-c++", "adaptor", "ratio", "speedup");
  printRule(76);

  // Three jobs per kernel, all dispatched in one parallel batch; results
  // come back in submission order, so the rows below are byte-identical
  // to a serial run.
  flow::KernelConfig plain;
  plain.applyDirectives = false;
  std::vector<flow::BatchJob> jobs;
  for (const flow::KernelSpec &spec : flow::allKernels()) {
    jobs.push_back({&spec, plain, flow::FlowKind::Adaptor, {}, "baseline"});
    jobs.push_back(
        {&spec, defaultConfig(), flow::FlowKind::HlsCpp, {}, "hls-c++"});
    jobs.push_back(
        {&spec, defaultConfig(), flow::FlowKind::Adaptor, {}, "adaptor"});
  }
  flow::BatchOutcome outcome = runBenchBatch(jobs);

  double ratioSum = 0;
  int count = 0;
  size_t job = 0;
  for (const flow::KernelSpec &spec : flow::allKernels()) {
    flow::FlowResult baseline =
        mustRun(std::move(outcome.results[job++]), "baseline");
    mustCosim(baseline, spec);
    flow::FlowResult cpp =
        mustRun(std::move(outcome.results[job++]), "hls-c++");
    mustCosim(cpp, spec);
    flow::FlowResult adaptorFlow =
        mustRun(std::move(outcome.results[job++]), "adaptor");
    mustCosim(adaptorFlow, spec);

    int64_t base = baseline.synth.top()->latencyCycles;
    int64_t c = cpp.synth.top()->latencyCycles;
    int64_t a = adaptorFlow.synth.top()->latencyCycles;
    double ratio = static_cast<double>(a) / static_cast<double>(c);
    double speedup = static_cast<double>(base) / static_cast<double>(a);
    ratioSum += ratio;
    ++count;
    std::printf("%-10s %14lld %14lld %14lld %9.3f %8.2fx\n",
                spec.name.c_str(), static_cast<long long>(base),
                static_cast<long long>(c), static_cast<long long>(a), ratio,
                speedup);
    report.beginRow();
    report.field("kernel", spec.name);
    report.field("baseline_latency", base);
    report.field("hls_cpp_latency", c);
    report.field("adaptor_latency", a);
    report.field("ratio", ratio);
    report.field("speedup", speedup);
  }
  printRule(76);
  std::printf("%-10s %44s %9.3f\n", "geo-ish", "mean adaptor/hls-c++ ratio:",
              ratioSum / count);
  std::printf("\nAll co-simulations passed (outputs bit-exact vs host "
              "reference).\n");
  return report.finish();
}
