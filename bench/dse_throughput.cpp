// DSE throughput — analytical estimation vs synthesis as the search's
// scoring engine, on the fig1–fig3 kernels (gemm, jacobi2d, fir, conv2d).
//
// Three measurements per kernel, each on a fresh evaluator so the QoR
// cache cannot leak work between them:
//
//  * scoring rate — points scored per second through full synthesis
//    (exhaustive sweep) vs through the estimator (two probe runs, then
//    arithmetic). The probe cost is reported separately so the rate
//    reflects the steady state a search actually runs at.
//  * time-to-frontier — wall time for the exhaustive sweep vs the
//    estimator-guided refine strategy to produce their Pareto archives.
//  * frontier containment — every exhaustive-frontier point must appear
//    in the refine frontier (the slack promotion rule's guarantee).
//
// The bench fails (exit 1) when the estimator scores fewer than 50x the
// points per second of synthesis or when containment is violated — the
// claims EXPERIMENTS.md makes are checked, not assumed.
#include "BenchCommon.h"

#include "dse/Dse.h"

#include <chrono>

using namespace mha;
using namespace mha::bench;

namespace {

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

} // namespace

int main(int argc, char **argv) {
  JsonReport report("dse_throughput", argc, argv);
  std::printf("DSE throughput: estimator vs synthesis scoring\n");
  std::printf("%-10s %6s %12s %12s %9s %12s %12s %10s\n", "kernel", "pts",
              "synth pts/s", "est pts/s", "speedup", "exhaust(s)",
              "refine(s)", "contained");
  printRule(90);

  int status = 0;
  for (const char *name : {"gemm", "jacobi2d", "fir", "conv2d"}) {
    const flow::KernelSpec *spec = flow::findKernel(name);
    dse::DesignSpace space(*spec);
    const size_t points = space.size();

    // Exhaustive synthesis: scoring rate and time-to-frontier in one run.
    auto start = std::chrono::steady_clock::now();
    dse::Evaluator synthEval(*spec);
    std::optional<dse::DseResult> exhaustive =
        dse::runDse(space, synthEval, "exhaustive", {});
    double exhaustiveSeconds = secondsSince(start);
    if (!exhaustive) {
      std::fprintf(stderr, "BENCH FAILURE: exhaustive run failed\n");
      return 1;
    }

    // Estimator scoring rate, probe build timed separately.
    dse::Evaluator estEval(*spec);
    start = std::chrono::steady_clock::now();
    if (!estEval.estimator()) {
      std::fprintf(stderr, "BENCH FAILURE (%s): estimator probes failed\n",
                   name);
      return 1;
    }
    double probeSeconds = secondsSince(start);
    start = std::chrono::steady_clock::now();
    std::vector<dse::QoR> estimates = estEval.estimateAll(space.points());
    double estimateSeconds = secondsSince(start);
    for (const dse::QoR &qor : estimates)
      if (!qor.ok) {
        std::fprintf(stderr, "BENCH FAILURE (%s): estimate failed: %s\n",
                     name, qor.error.c_str());
        return 1;
      }

    // Refine time-to-frontier on its own evaluator (probes included).
    start = std::chrono::steady_clock::now();
    dse::Evaluator refineEval(*spec);
    std::optional<dse::DseResult> refine =
        dse::runDse(space, refineEval, "refine", {});
    double refineSeconds = secondsSince(start);
    if (!refine) {
      std::fprintf(stderr, "BENCH FAILURE: refine run failed\n");
      return 1;
    }

    // Containment: the refine frontier must hold every exhaustive-frontier
    // point (same synthesized QoR space, so keys are comparable).
    bool contained = true;
    for (const dse::ArchiveEntry &entry : exhaustive->pareto) {
      bool found = false;
      for (const dse::ArchiveEntry &candidate : refine->pareto)
        if (candidate.key == entry.key)
          found = true;
      if (!found) {
        contained = false;
        std::fprintf(stderr,
                     "BENCH FAILURE (%s): exhaustive-frontier point %s "
                     "missing from refine frontier\n",
                     name, entry.key.c_str());
      }
    }

    double synthRate = double(points) / exhaustiveSeconds;
    double estRate = double(points) / std::max(estimateSeconds, 1e-9);
    double speedup = estRate / synthRate;
    std::printf("%-10s %6zu %12.1f %12.0f %8.0fx %12.3f %12.3f %10s\n",
                name, points, synthRate, estRate, speedup,
                exhaustiveSeconds, refineSeconds, contained ? "yes" : "NO");

    if (speedup < 50.0) {
      std::fprintf(stderr,
                   "BENCH FAILURE (%s): estimator scoring speedup %.1fx "
                   "below the 50x floor\n",
                   name, speedup);
      status = 1;
    }
    if (!contained)
      status = 1;

    report.beginRow();
    report.field("kernel", name);
    report.field("points", static_cast<int64_t>(points));
    report.field("synth_points_per_sec", synthRate);
    report.field("est_points_per_sec", estRate);
    report.field("speedup", speedup);
    report.field("probe_seconds", probeSeconds);
    report.field("exhaustive_seconds", exhaustiveSeconds);
    report.field("refine_seconds", refineSeconds);
    report.field("refine_evaluated", static_cast<int64_t>(refine->evaluated));
    report.field("refine_estimated", static_cast<int64_t>(refine->estimated));
    report.field("frontier_contained", contained);
    report.field("estimator_latency_max_abs_pct",
                 refine->estimator.latencyMaxAbsPct);
  }
  return report.finish(status);
}
