// Table 3 — what the adaptor actually fixes: per kernel, the number of
// HLS-frontend violations in the raw MLIR-lowered IR (by category) and the
// adaptor's rewrite statistics. After the adaptor every kernel is accepted
// with zero violations — the paper's "without the gap of unsupported
// syntax" claim, quantified.
#include "BenchCommon.h"
#include "lir/HlsCompat.h"
#include "lowering/Lowering.h"
#include "mir/MContext.h"
#include "mir/Pass.h"
#include "mir/transforms/MirTransforms.h"

using namespace mha;
using namespace mha::bench;

int main(int argc, char **argv) {
  JsonReport report("table3_adaptor_stats", argc, argv);
  std::printf("Table 3: HLS-frontend violations before the adaptor and "
              "adaptor activity\n");
  std::printf("%-10s %7s %7s %7s %7s %7s | %7s %7s %7s | %s\n", "kernel",
              "opaque", "descr", "intrin", "mdata", "attrs", "flatten",
              "delin", "legal", "after");
  printRule(96);

  // The full adaptor-flow runs (rewrite statistics + final verdict) go
  // through one parallel batch; the pre-adaptor violation count below is
  // a cheap partial pipeline and stays inline in the print loop.
  std::vector<flow::BatchJob> jobs;
  for (const flow::KernelSpec &spec : flow::allKernels())
    jobs.push_back(
        {&spec, defaultConfig(), flow::FlowKind::Adaptor, {}, "adaptor"});
  flow::BatchOutcome outcome = runBenchBatch(jobs);

  size_t job = 0;
  for (const flow::KernelSpec &spec : flow::allKernels()) {
    flow::KernelConfig config = defaultConfig();

    // Raw lowered IR (pre-adaptor): count violations.
    mir::MContext mctx;
    DiagnosticEngine diags;
    mir::OwnedModule mod = spec.build(mctx, config);
    mir::MPassManager pm;
    pm.add(mir::createCanonicalizePass());
    pm.add(mir::createAffineToScfPass());
    pm.add(mir::createCanonicalizePass());
    if (!pm.run(mod.get(), diags))
      return 1;
    lir::LContext lctx;
    auto module = lowering::lowerToLIR(mod.get(), lctx, {}, diags);
    if (!module)
      return 1;
    DiagnosticEngine compatDiags;
    lir::HlsCompatReport before =
        lir::checkHlsCompatibility(*module, compatDiags);

    // Full adaptor flow (from the batch) for the rewrite statistics +
    // final verdict.
    flow::FlowResult result =
        mustRun(std::move(outcome.results[job++]), "adaptor");
    auto stat = [&](const char *key) {
      auto it = result.adaptorStats.find(key);
      return it == result.adaptorStats.end() ? 0 : it->second;
    };
    std::printf(
        "%-10s %7lld %7lld %7lld %7lld %7lld | %7lld %7lld %7lld | %s\n",
        spec.name.c_str(),
        static_cast<long long>(before.violations["opaque-pointers"]),
        static_cast<long long>(before.violations["descriptor-arg"]),
        static_cast<long long>(before.violations["intrinsic-call"]),
        static_cast<long long>(before.violations["modern-metadata"]),
        static_cast<long long>(before.violations["bad-attribute"]),
        static_cast<long long>(stat("adaptor.descriptors-eliminated")),
        static_cast<long long>(stat("adaptor.geps-delinearized")),
        static_cast<long long>(stat("adaptor.fmuladd-expanded") +
                               stat("adaptor.memcpy-expanded") +
                               stat("adaptor.math-calls-retargeted") +
                               stat("adaptor.minmax-expanded")),
        result.synth.accepted && result.synth.compat.warnings == 0
            ? "ACCEPT"
            : "REJECT");
    report.beginRow();
    report.field("kernel", spec.name);
    report.field("opaque_pointers", before.violations["opaque-pointers"]);
    report.field("descriptor_args", before.violations["descriptor-arg"]);
    report.field("intrinsic_calls", before.violations["intrinsic-call"]);
    report.field("modern_metadata", before.violations["modern-metadata"]);
    report.field("bad_attributes", before.violations["bad-attribute"]);
    report.field("descriptors_eliminated",
                 stat("adaptor.descriptors-eliminated"));
    report.field("geps_delinearized", stat("adaptor.geps-delinearized"));
    report.field("intrinsics_legalized",
                 stat("adaptor.fmuladd-expanded") +
                     stat("adaptor.memcpy-expanded") +
                     stat("adaptor.math-calls-retargeted") +
                     stat("adaptor.minmax-expanded"));
    report.field("accepted", result.synth.accepted &&
                                 result.synth.compat.warnings == 0);
  }
  std::printf("\ncolumns: violations in raw MLIR-lowered IR (opaque "
              "pointers, descriptor args,\nintrinsic calls, modern "
              "metadata, modern attributes) | adaptor rewrites\n(descriptor "
              "groups flattened, GEPs delinearized, intrinsics legalized) | "
              "final verdict\n");
  return report.finish();
}
