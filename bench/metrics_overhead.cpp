// Metrics overhead gate — the table4 corpus with the metrics gate off vs
// on, enforcing the ≤2% overhead budget the instrumentation promises.
//
// Both arms run the full corpus (every kernel through both flows, via the
// BatchRunner so the instrumented paths — pool submit/run, stage-cache
// lookups, pass timing — are all exercised). Timing is the per-job serial
// sum (wall time measured *inside* each job), min over --reps interleaved
// repetitions per arm, so scheduler noise and one-time warm-up cannot
// charge the enabled arm. Exits non-zero when the measured overhead
// exceeds the budget — CI turns a regression into a red build, not a
// footnote.
//
//   metrics_overhead [--reps=N] [--max-overhead-pct=P] [--json=FILE]
#include "BenchCommon.h"

#include "support/Metrics.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace mha;
using namespace mha::bench;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: metrics_overhead [--reps=N] [--max-overhead-pct=P]\n"
               "                        [--json=FILE]\n");
  return 2;
}

/// One corpus pass: every kernel through both flows. Returns the serial
/// sum of per-job wall times in milliseconds (aborts on any job failure —
/// an overhead number for a broken run is meaningless).
double corpusSerialMs(ThreadPool &pool) {
  std::vector<flow::BatchJob> jobs;
  for (const flow::KernelSpec &spec : flow::allKernels())
    for (flow::FlowKind kind :
         {flow::FlowKind::Adaptor, flow::FlowKind::HlsCpp})
      jobs.push_back({&spec, defaultConfig(), kind, {}, "metrics-overhead"});
  flow::BatchOptions options;
  options.pool = &pool;
  flow::BatchOutcome out = flow::runBatch(jobs, options);
  if (out.trace.failures != 0) {
    std::fprintf(stderr, "metrics_overhead: corpus batch had failures\n");
    std::exit(1);
  }
  return out.trace.serialMs;
}

} // namespace

int main(int argc, char **argv) {
  JsonReport report("metrics_overhead", argc, argv);
  int64_t reps = 5;
  double maxOverheadPct = 2.0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (startsWith(arg, "--reps=")) {
      std::optional<int64_t> parsed = parseInt(arg.substr(7));
      if (!parsed || *parsed < 1 || *parsed > 100) {
        std::fprintf(stderr, "invalid value for --reps\n");
        return usage();
      }
      reps = *parsed;
    } else if (startsWith(arg, "--max-overhead-pct=")) {
      std::optional<int64_t> parsed = parseInt(arg.substr(19));
      if (!parsed || *parsed < 1 || *parsed > 100) {
        std::fprintf(stderr, "invalid value for --max-overhead-pct\n");
        return usage();
      }
      maxOverheadPct = static_cast<double>(*parsed);
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return usage();
    }
  }

  ThreadPool pool;

  // Warm-up pass: fault in code, fill allocator pools, spin up workers.
  // Not measured in either arm.
  metrics::setEnabled(false);
  corpusSerialMs(pool);

  // Interleave the arms so slow drift (thermal, background load) hits
  // both equally; keep the minimum per arm.
  double minDisabledMs = 0, minEnabledMs = 0;
  for (int64_t rep = 0; rep < reps; ++rep) {
    metrics::setEnabled(false);
    double disabledMs = corpusSerialMs(pool);
    metrics::setEnabled(true);
    double enabledMs = corpusSerialMs(pool);
    metrics::setEnabled(false);
    if (rep == 0 || disabledMs < minDisabledMs)
      minDisabledMs = disabledMs;
    if (rep == 0 || enabledMs < minEnabledMs)
      minEnabledMs = enabledMs;
    std::fprintf(stderr, "[rep %lld/%lld] disabled %.1f ms, enabled %.1f ms\n",
                 static_cast<long long>(rep + 1),
                 static_cast<long long>(reps), disabledMs, enabledMs);
    report.beginRow();
    report.field("rep", rep + 1);
    report.field("disabled_ms", disabledMs);
    report.field("enabled_ms", enabledMs);
  }

  double overheadPct =
      minDisabledMs > 0
          ? 100.0 * (minEnabledMs - minDisabledMs) / minDisabledMs
          : 0.0;
  bool pass = overheadPct <= maxOverheadPct;
  std::printf("metrics overhead: disabled %.1f ms, enabled %.1f ms "
              "(min of %lld) -> %+.2f%% (budget %.1f%%): %s\n",
              minDisabledMs, minEnabledMs, static_cast<long long>(reps),
              overheadPct, maxOverheadPct, pass ? "PASS" : "FAIL");

  report.beginRow();
  report.field("mode", "summary");
  report.field("reps", reps);
  report.field("disabled_ms", minDisabledMs);
  report.field("enabled_ms", minEnabledMs);
  report.field("overhead_pct", overheadPct);
  report.field("budget_pct", maxOverheadPct);
  report.field("pass", pass);
  return report.finish(pass ? 0 : 1);
}
